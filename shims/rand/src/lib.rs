//! Offline shim for the `rand` crate (0.8-style API subset).
//!
//! Provides [`Rng::gen`], [`Rng::gen_range`], [`SeedableRng::seed_from_u64`]
//! and [`rngs::StdRng`] backed by xoshiro256++ (seeded through SplitMix64).
//! Deterministic given the seed, like the real `StdRng`, though the exact
//! stream differs — all in-repo consumers only rely on determinism, not on
//! reproducing upstream `rand`'s stream.

use std::ops::Range;

/// Types that can be sampled uniformly "at standard" (the shim's analogue of
/// `rand::distributions::Standard`).
pub trait StandardSample: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one value from the range using `rng`.
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift rejection-free mapping is fine here: the
                // simulation workloads tolerate the ~2^-64 modulo bias.
                let value = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + value as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// The random-number-generator interface (subset of `rand::Rng`).
pub trait Rng {
    /// The core source: 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Draw a value of type `T` (e.g. `let u: f64 = rng.gen();`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draw a value uniformly from a range (e.g. `rng.gen_range(0..n)`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_in(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }

    /// Fill a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ seeded via
    /// SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            seen_low |= v == 10;
            seen_high |= v == 19;
        }
        assert!(seen_low && seen_high, "range endpoints never sampled");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(3);
        assert!(draw(&mut rng) < 1.0);
    }
}
