//! Offline shim for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a small serde-compatible facade. Unlike real serde's visitor
//! architecture, everything funnels through an owned JSON-like [`Value`]
//! tree: `Serialize` renders to a `Value`, `Deserialize` parses from one,
//! and [`Serializer`]/[`Deserializer`] are thin single-method traits so the
//! common serde idioms compile unchanged:
//!
//! * `#[derive(Serialize, Deserialize)]` on structs (named, tuple, unit) and
//!   enums (unit, tuple and struct variants, externally tagged like serde);
//! * `#[serde(with = "module")]` field attributes whose modules define
//!   `fn serialize<S: Serializer>(&T, S) -> Result<S::Ok, S::Error>` and
//!   `fn deserialize<'de, D: Deserializer<'de>>(D) -> Result<T, D::Error>`;
//! * `serde_json::{to_vec, to_vec_pretty, from_slice, ...}` (see the
//!   `serde_json` shim, which renders/parses this crate's [`Value`]).
//!
//! Only the surface the DINOMO workspace uses is implemented; unsupported
//! attributes fail the build with an explicit error rather than silently
//! misbehaving.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree — the common interchange format of the shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integral number (wide enough for `u64` and `i64` exactly).
    Int(i128),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion order preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error raised by the shim's serialization/deserialization paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from any displayable message (serde's `Error::custom`).
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A data format that can accept a [`Value`] (shim analogue of
/// `serde::Serializer`).
pub trait Serializer: Sized {
    /// What a successful serialization produces.
    type Ok;
    /// The format's error type.
    type Error: From<Error>;

    /// Consume a fully-built value tree.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// A data format that can produce a [`Value`] (shim analogue of
/// `serde::Deserializer`).
pub trait Deserializer<'de>: Sized {
    /// The format's error type.
    type Error: From<Error>;

    /// Produce the value tree to deserialize from.
    fn into_value(self) -> Result<Value, Self::Error>;
}

/// Types that can be serialized.
pub trait Serialize {
    /// Render as a value tree.
    fn to_value(&self) -> Value;

    /// Serialize into any [`Serializer`] (matches serde's signature).
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.to_value())
    }
}

/// Types that can be deserialized.
///
/// The `'de` lifetime exists for signature compatibility; the shim always
/// produces owned data (plus a leak-based escape hatch for `&'static str`).
pub trait Deserialize<'de>: Sized {
    /// Parse from a value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;

    /// Deserialize from any [`Deserializer`] (matches serde's signature).
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.into_value()?;
        Ok(Self::from_value(&value)?)
    }
}

pub mod value {
    //! The identity [`Serializer`]/[`Deserializer`] over [`Value`] trees,
    //! used by derive-generated code to drive `#[serde(with = ...)]`
    //! modules.

    use super::{Deserializer, Error, Serializer, Value};

    /// Serializer whose output *is* the value tree.
    #[derive(Debug, Clone, Copy)]
    pub struct ValueSerializer;

    impl Serializer for ValueSerializer {
        type Ok = Value;
        type Error = Error;

        fn serialize_value(self, value: Value) -> Result<Value, Error> {
            Ok(value)
        }
    }

    /// Deserializer reading from a borrowed value tree.
    #[derive(Debug, Clone, Copy)]
    pub struct ValueDeserializer<'a> {
        value: &'a Value,
    }

    impl<'a> ValueDeserializer<'a> {
        /// Wrap a borrowed value.
        pub fn new(value: &'a Value) -> Self {
            ValueDeserializer { value }
        }
    }

    impl<'de, 'a> Deserializer<'de> for ValueDeserializer<'a> {
        type Error = Error;

        fn into_value(self) -> Result<Value, Error> {
            Ok(self.value.clone())
        }
    }
}

#[doc(hidden)]
pub mod __private {
    //! Helpers referenced by `serde_derive`-generated code. Not public API.

    use super::{Deserialize, Error, Value};

    pub fn as_object<'v>(
        value: &'v Value,
        type_name: &str,
    ) -> Result<&'v [(String, Value)], Error> {
        match value {
            Value::Object(pairs) => Ok(pairs),
            other => Err(Error::custom(format!(
                "expected an object for {type_name}, found {other:?}"
            ))),
        }
    }

    pub fn as_array<'v>(value: &'v Value, type_name: &str) -> Result<&'v [Value], Error> {
        match value {
            Value::Array(items) => Ok(items),
            other => Err(Error::custom(format!(
                "expected an array for {type_name}, found {other:?}"
            ))),
        }
    }

    pub fn raw_field<'v>(obj: &'v [(String, Value)], name: &str) -> Result<&'v Value, Error> {
        obj.iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
    }

    pub fn field<T>(obj: &[(String, Value)], name: &str) -> Result<T, Error>
    where
        T: for<'x> Deserialize<'x>,
    {
        T::from_value(raw_field(obj, name)?)
            .map_err(|e| Error::custom(format!("field `{name}`: {e}")))
    }

    pub fn from_value<T>(value: &Value) -> Result<T, Error>
    where
        T: for<'x> Deserialize<'x>,
    {
        T::from_value(value)
    }

    pub fn element<T>(items: &[Value], index: usize, type_name: &str) -> Result<T, Error>
    where
        T: for<'x> Deserialize<'x>,
    {
        let v = items
            .get(index)
            .ok_or_else(|| Error::custom(format!("missing element {index} for {type_name}")))?;
        T::from_value(v)
    }
}

// ------------------------------------------------------------- primitives

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n: i128 = match value {
                    Value::Int(n) => *n,
                    // Accept integral floats: the JSON writer renders e.g.
                    // `1.0f64` as `1`, so mixed-numeric structs must be
                    // tolerant in both directions.
                    Value::Float(f) if f.fract() == 0.0 => *f as i128,
                    other => {
                        return Err(Error::custom(format!(
                            "expected an integer, found {other:?}"
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::Int(n) => Ok(*n as f64),
            other => Err(Error::custom(format!("expected a number, found {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected a bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected a string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

/// `&'static str` deserialization leaks the parsed string. This supports
/// types like `WorkloadMix { name: &'static str }` whose instances are
/// long-lived configuration; do not round-trip unbounded streams of them.
impl<'de> Deserialize<'de> for &'static str {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(Error::custom(format!("expected a string, found {other:?}"))),
        }
    }
}

impl<T: ?Sized + Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

// ------------------------------------------------------------- sequences

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected an array, found {other:?}"))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident/$idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = match value {
                    Value::Array(items) => items,
                    other => {
                        return Err(Error::custom(format!(
                            "expected a tuple array, found {other:?}"
                        )))
                    }
                };
                let expected = [$($idx,)+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected a tuple of {expected} elements, found {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A/0);
    (A/0, B/1);
    (A/0, B/1, C/2);
    (A/0, B/1, C/2, D/3);
}

// ------------------------------------------------------------------ maps

/// Map keys representable as JSON object keys (strings), mirroring
/// `serde_json`'s behaviour of stringifying integer keys.
pub trait JsonKey: Sized {
    /// Render the key as a JSON object key.
    fn to_key(&self) -> String;
    /// Parse the key back from a JSON object key.
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_string())
    }
}

macro_rules! impl_int_key {
    ($($t:ty),*) => {$(
        impl JsonKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse().map_err(|_| {
                    Error::custom(format!("invalid {} map key: {key:?}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_int_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: JsonKey + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<'de, K: JsonKey + Eq + Hash, V: Deserialize<'de>> Deserialize<'de> for HashMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!(
                "expected an object, found {other:?}"
            ))),
        }
    }
}

impl<K: JsonKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<'de, K: JsonKey + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!(
                "expected an object, found {other:?}"
            ))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        // Integral float tolerance in both directions.
        assert_eq!(f64::from_value(&Value::Int(3)).unwrap(), 3.0);
        assert_eq!(u32::from_value(&Value::Float(3.0)).unwrap(), 3);
        assert!(u8::from_value(&Value::Int(300)).is_err());
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);

        let mut m = HashMap::new();
        m.insert(7u32, vec![1u8, 2]);
        let back: HashMap<u32, Vec<u8>> = HashMap::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);

        let t = (1u8, "x".to_string());
        assert_eq!(<(u8, String)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn option_uses_null() {
        assert_eq!(Option::<u8>::None.to_value(), Value::Null);
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u8>::from_value(&Value::Int(4)).unwrap(), Some(4));
    }

    #[test]
    fn static_str_leaks_on_purpose() {
        let s: &'static str = Deserialize::from_value(&Value::String("hi".into())).unwrap();
        assert_eq!(s, "hi");
    }
}
