//! `#[derive(Serialize, Deserialize)]` for the offline `serde` shim.
//!
//! `syn`/`quote` are unavailable offline, so this crate parses the derive
//! input token stream by hand. It supports exactly the shapes the DINOMO
//! workspace uses — non-generic structs (named, tuple, unit) and enums
//! (unit, tuple and struct variants) with the `#[serde(with = "module")]`
//! field attribute — and fails the build with a clear message on anything
//! else, rather than silently generating wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ------------------------------------------------------------ input model

#[derive(Debug, Clone)]
struct Field {
    name: String,
    with: Option<String>,
}

#[derive(Debug, Clone)]
enum Fields {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

#[derive(Debug)]
enum Input {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

// ----------------------------------------------------------------- parse

fn parse_input(stream: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`, including doc comments) and
    // visibility.
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected a type name, found {other}"),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic type `{name}` is not supported");
    }

    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde shim derive: unsupported struct body: {other:?}"),
            };
            Input::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde shim derive: unsupported enum body: {other:?}"),
            };
            Input::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde shim derive: expected `struct` or `enum`, found `{other}`"),
    }
}

/// Skip attributes, collecting any `#[serde(with = "...")]` path, and skip a
/// `pub` / `pub(...)` visibility if present.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) -> Option<String> {
    let mut with = None;
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                    if let Some(w) = parse_serde_attr(g.stream()) {
                        with = Some(w);
                    }
                    *i += 2;
                } else {
                    panic!("serde shim derive: stray `#`");
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return with,
        }
    }
}

/// Inspect one attribute body (the tokens inside `#[...]`); return the path
/// of a `serde(with = "path")` attribute if that is what it is.
fn parse_serde_attr(stream: TokenStream) -> Option<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None, // doc comment or other tool attribute: ignore
    }
    let inner = match tokens.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => panic!("serde shim derive: malformed #[serde] attribute"),
    };
    let inner: Vec<TokenTree> = inner.into_iter().collect();
    match (inner.first(), inner.get(1), inner.get(2)) {
        (
            Some(TokenTree::Ident(key)),
            Some(TokenTree::Punct(eq)),
            Some(TokenTree::Literal(lit)),
        ) if key.to_string() == "with" && eq.as_char() == '=' => {
            let raw = lit.to_string();
            Some(raw.trim_matches('"').to_string())
        }
        _ => panic!(
            "serde shim derive: unsupported #[serde(...)] attribute \
             (only `with = \"module\"` is implemented): {inner:?}"
        ),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let with = skip_attrs_and_vis(&tokens, &mut i);
        let Some(tok) = tokens.get(i) else { break };
        let name = match tok {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected a field name, found {other}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                panic!("serde shim derive: expected `:` after field `{name}`, found {other:?}")
            }
        }
        skip_type(&tokens, &mut i);
        fields.push(Field { name, with });
    }
    fields
}

/// Skip type tokens up to (and over) the next top-level `,`; commas nested in
/// angle brackets (e.g. `HashMap<K, V>`) belong to the type. Parentheses and
/// brackets arrive pre-grouped, so only `<`/`>` need explicit depth tracking.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        if skip_attrs_and_vis(&tokens, &mut i).is_some() {
            panic!("serde shim derive: #[serde(with)] on tuple fields is not supported");
        }
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(tok) = tokens.get(i) else { break };
        let name = match tok {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected a variant name, found {other}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            other => panic!(
                "serde shim derive: unsupported token after variant `{name}` \
                 (discriminants are not supported): {other:?}"
            ),
        }
        variants.push((name, fields));
    }
    variants
}

// --------------------------------------------------------------- codegen

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let code = match &input {
        Input::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
                Fields::Named(fields) => named_fields_to_value(fields, "&self.", ""),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let mut arms = Vec::new();
            for (variant, fields) in variants {
                let arm = match fields {
                    Fields::Unit => format!(
                        "{name}::{variant} => ::serde::Value::String(\"{variant}\".to_string()),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        format!(
                            "{name}::{variant}({}) => ::serde::Value::Object(vec![\
                               (\"{variant}\".to_string(), {inner})]),",
                            binds.join(", ")
                        )
                    }
                    Fields::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let inner = named_fields_to_value(fields, "", "");
                        format!(
                            "{name}::{variant} {{ {} }} => ::serde::Value::Object(vec![\
                               (\"{variant}\".to_string(), {inner})]),",
                            binds.join(", ")
                        )
                    }
                };
                arms.push(arm);
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    code.parse()
        .expect("serde shim derive: generated invalid Serialize impl")
}

/// `Value::Object(...)` expression for a list of named fields. `prefix` is
/// prepended to the field name to form the access expression (`&self.` for
/// structs, empty for enum-variant bindings which are already references).
fn named_fields_to_value(fields: &[Field], prefix: &str, suffix: &str) -> String {
    let items: Vec<String> = fields
        .iter()
        .map(|f| {
            let access = format!("{prefix}{}{suffix}", f.name);
            let value = match &f.with {
                None => format!("::serde::Serialize::to_value(&{access})"),
                Some(path) => format!(
                    "match {path}::serialize(&{access}, ::serde::value::ValueSerializer) {{\n\
                         Ok(v) => v,\n\
                         Err(e) => ::std::panic!(\"#[serde(with)] serializer failed: {{}}\", e),\n\
                     }}"
                ),
            };
            format!("(\"{}\".to_string(), {value})", f.name)
        })
        .collect();
    format!("::serde::Value::Object(vec![{}])", items.join(", "))
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let code = match &input {
        Input::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::__private::from_value(value)?))"
                ),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::__private::element(items, {i}, \"{name}\")?"))
                        .collect();
                    format!(
                        "let items = ::serde::__private::as_array(value, \"{name}\")?;\n\
                         ::std::result::Result::Ok({name}({}))",
                        items.join(", ")
                    )
                }
                Fields::Named(fields) => format!(
                    "let obj = ::serde::__private::as_object(value, \"{name}\")?;\n\
                     ::std::result::Result::Ok({name} {{ {} }})",
                    named_fields_from_value(fields)
                ),
            };
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let mut unit_arms = Vec::new();
            let mut tagged_arms = Vec::new();
            for (variant, fields) in variants {
                match fields {
                    Fields::Unit => unit_arms.push(format!(
                        "\"{variant}\" => ::std::result::Result::Ok({name}::{variant}),"
                    )),
                    Fields::Tuple(n) => {
                        let body = if *n == 1 {
                            format!(
                                "::std::result::Result::Ok({name}::{variant}(\
                                     ::serde::__private::from_value(inner)?))"
                            )
                        } else {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::__private::element(items, {i}, \"{name}::{variant}\")?"
                                    )
                                })
                                .collect();
                            format!(
                                "let items = ::serde::__private::as_array(inner, \"{name}::{variant}\")?;\n\
                                 ::std::result::Result::Ok({name}::{variant}({}))",
                                items.join(", ")
                            )
                        };
                        tagged_arms.push(format!("\"{variant}\" => {{ {body} }}"));
                    }
                    Fields::Named(fields) => {
                        let body = format!(
                            "let obj = ::serde::__private::as_object(inner, \"{name}::{variant}\")?;\n\
                             ::std::result::Result::Ok({name}::{variant} {{ {} }})",
                            named_fields_from_value(fields)
                        );
                        tagged_arms.push(format!("\"{variant}\" => {{ {body} }}"));
                    }
                }
            }
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match value {{\n\
                             ::serde::Value::String(s) => match s.as_str() {{\n\
                                 {units}\n\
                                 other => ::std::result::Result::Err(::serde::Error::custom(\n\
                                     format!(\"unknown {name} variant {{other:?}}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                                 let (tag, inner) = &pairs[0];\n\
                                 match tag.as_str() {{\n\
                                     {tagged}\n\
                                     other => ::std::result::Result::Err(::serde::Error::custom(\n\
                                         format!(\"unknown {name} variant {{other:?}}\"))),\n\
                                 }}\n\
                             }}\n\
                             other => ::std::result::Result::Err(::serde::Error::custom(\n\
                                 format!(\"expected a {name} variant, found {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                units = unit_arms.join("\n"),
                tagged = tagged_arms.join("\n"),
            )
        }
    };
    code.parse()
        .expect("serde shim derive: generated invalid Deserialize impl")
}

fn named_fields_from_value(fields: &[Field]) -> String {
    fields
        .iter()
        .map(|f| match &f.with {
            None => format!(
                "{name}: ::serde::__private::field(obj, \"{name}\")?",
                name = f.name
            ),
            Some(path) => format!(
                "{name}: {path}::deserialize(::serde::value::ValueDeserializer::new(\
                     ::serde::__private::raw_field(obj, \"{name}\")?))?",
                name = f.name
            ),
        })
        .collect::<Vec<_>>()
        .join(", ")
}
