//! Offline shim for the `proptest` crate.
//!
//! Runs each property as a seeded loop of random cases — no shrinking, no
//! persisted failure corpus — exposing the API subset the workspace uses:
//! the [`proptest!`] macro with `#![proptest_config(...)]`, range and tuple
//! strategies, [`collection::vec`], [`collection::btree_set`], [`any`] and
//! the `prop_assert*` macros. Failures report the case index and the seed so
//! a run can be reproduced with `PROPTEST_SHIM_SEED`.

use std::ops::Range;

/// Per-property configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic RNG driving case generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from `PROPTEST_SHIM_SEED` or a fixed default.
    pub fn from_env() -> (Self, u64) {
        let seed = std::env::var("PROPTEST_SHIM_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0x1234_5678_9abc_def0);
        (TestRng { state: seed }, seed)
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A generator of random values (no shrinking in the shim).
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident/$idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0, B/1);
    (A/0, B/1, C/2);
    (A/0, B/1, C/2, D/3);
}

/// Full-range strategy for a primitive (`any::<u64>()`).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Build the full-range strategy for `T`.
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_any {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy producing `Vec`s of an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(element, min..max)`: a vector with length drawn from the range.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing `BTreeSet`s of an element strategy.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `btree_set(element, min..max)`: a set whose size is drawn from the
    /// range. The element strategy's value space must be comfortably larger
    /// than the maximum size, or generation may spin on duplicates.
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.clone().generate(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target.saturating_mul(100) + 100 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod prelude {
    //! The commonly-imported surface, mirroring `proptest::prelude`.
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Define seeded random property tests (shim of `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let (mut rng, seed) = $crate::TestRng::from_env();
                for case in 0..config.cases {
                    let result = (|| -> ::std::result::Result<(), ::std::string::String> {
                        let ($($pat,)+) =
                            ($($crate::Strategy::generate(&($strategy), &mut rng),)+);
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(msg) = result {
                        panic!(
                            "property {} failed at case {case} (seed {seed}): {msg}",
                            stringify!($name)
                        );
                    }
                }
            }
        )+
    };
}

/// Shim of `prop_assert!`: fails the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Shim of `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {:?} == {:?}", l, r));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Shim of `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {:?} != {:?}",
                l,
                r
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..10, v in crate::collection::vec(0u8..4, 1..20)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn sets_hit_their_target_sizes(s in crate::collection::btree_set(0u32..64, 2..12)) {
            prop_assert!(s.len() >= 2 && s.len() < 12);
        }
    }

    #[test]
    fn failures_report_case_and_seed() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                fn always_fails(_x in 0u8..4) {
                    prop_assert!(false, "expected failure");
                }
            }
            always_fails();
        });
        let err = result.unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("expected failure"), "{msg}");
        assert!(msg.contains("seed"), "{msg}");
    }
}
