//! Offline shim for the `serde_json` crate.
//!
//! Renders and parses the `serde` shim's [`Value`] tree as real JSON text.
//! Covers `to_string`, `to_vec`, their `_pretty` variants, `from_str` and
//! `from_slice` — the surface the DINOMO workspace uses.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

// ----------------------------------------------------------------- write

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serialize to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Serialize to pretty-printed JSON bytes.
pub fn to_vec_pretty<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string_pretty(value).map(String::into_bytes)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) -> Result<()> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::new("cannot serialize a non-finite float as JSON"));
            }
            // Rust's shortest round-trip formatting; integral floats render
            // without a fraction and are re-read as integers, which the
            // serde shim's numeric impls tolerate.
            out.push_str(&f.to_string());
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------- parse

/// Deserialize from JSON text.
pub fn from_str<'a, T: Deserialize<'a>>(text: &'a str) -> Result<T> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::from_value(&value).map_err(Error::from)
}

/// Deserialize from JSON bytes.
pub fn from_slice<'a, T: Deserialize<'a>>(bytes: &'a [u8]) -> Result<T> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(text)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at offset {}, found {:?}",
                byte as char,
                self.pos,
                self.peek().map(|b| b as char)
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at offset {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at offset {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.parse_hex4()?;
                            // Surrogate pairs.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                let combined =
                                    0x10000 + ((code - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape {:?}",
                                other.map(|b| b as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number {text:?}")))
        } else {
            match text.parse::<i128>() {
                Ok(n) => Ok(Value::Int(n)),
                // Out-of-range integers fall back to floating point.
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| Error::new(format!("invalid number {text:?}"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5e3").unwrap(), 1500.0);
        assert_eq!(to_string(&"a\"b\n").unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<String>(r#""a\"b\nA""#).unwrap(), "a\"b\nA");
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![(b"key".to_vec(), vec![1u32, 2])];
        let json = to_string(&v).unwrap();
        let back: Vec<(Vec<u8>, Vec<u32>)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_is_parseable_json() {
        let v = vec![vec![1u8], vec![], vec![2, 3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<Vec<u8>> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<u64>("{").is_err());
        assert!(from_str::<u64>("12 trailing").is_err());
        assert!(from_str::<u64>("\"not a number\"").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }
}
