//! Offline shim of the `crossbeam-epoch` crate: epoch-based reclamation
//! for lock-free readers.
//!
//! The subset mirrored here is what the workspace needs: [`pin`] returns a
//! [`Guard`]; [`Atomic`], [`Owned`] and [`Shared`] manage a lock-free
//! pointer; [`Guard::defer_destroy`] retires an unlinked allocation so it is
//! dropped only once no pinned guard can still hold a reference to it.
//!
//! # Scheme
//!
//! Classic epoch-based reclamation over a monotonically increasing global
//! epoch:
//!
//! * Every thread owns a *participant* record registered in a global list.
//!   [`pin`] publishes `(current global epoch, active)` into the record,
//!   then re-reads the global epoch and retries until the published epoch is
//!   the current one, so a participant is never pinned at a stale epoch.
//! * Retiring garbage ([`Guard::defer_destroy`]) tags it with the global
//!   epoch observed at retirement.
//! * The global epoch advances only when every *active* participant is
//!   pinned at the current epoch; garbage tagged `e` is dropped once the
//!   global epoch reaches `e + 2`.
//!
//! Safety sketch: a reader pinned at epoch `p` can only hold pointers whose
//! retirement happened after its pin, i.e. tagged `e >= p`. While that
//! reader stays pinned the global epoch can advance at most once (to
//! `p + 1`), and freeing its pointers would need `e + 2 <= p + 1` — a
//! contradiction. So nothing a pinned guard can reference is ever freed.
//!
//! Unlike upstream, garbage lives in one global queue behind a mutex and
//! collection is attempted on retirement, on [`Guard::flush`], and on an
//! amortized fraction of pins. That keeps `pin`/unpin itself down to two
//! uncontended atomic stores plus two loads of the global epoch — the
//! property the lock-free read paths built on this module rely on.

use std::cell::Cell;
use std::collections::VecDeque;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Bit 0 of a participant's state word; the epoch lives in the upper bits.
const ACTIVE: u64 = 1;

/// Attempt a collection every this many pins (amortizes the registry scan).
const PINS_BETWEEN_COLLECT: u32 = 128;

// ---------------------------------------------------------------- globals

/// One registered thread. `state` is `(epoch << 1) | ACTIVE` while pinned
/// and `0` while idle.
struct Participant {
    state: AtomicU64,
}

/// A retired allocation's destructor, tagged with its retirement epoch.
///
/// The closure only ever runs once, on whichever thread triggers the
/// collection; `Send` is asserted because the pointee was unlinked before
/// retirement, so no other thread can reach it anymore.
struct Deferred(Box<dyn FnOnce()>);

unsafe impl Send for Deferred {}

struct GlobalState {
    epoch: AtomicU64,
    participants: Mutex<Vec<Arc<Participant>>>,
    garbage: Mutex<VecDeque<(u64, Deferred)>>,
}

fn global() -> &'static GlobalState {
    static GLOBAL: OnceLock<GlobalState> = OnceLock::new();
    GLOBAL.get_or_init(|| GlobalState {
        epoch: AtomicU64::new(0),
        participants: Mutex::new(Vec::new()),
        garbage: Mutex::new(VecDeque::new()),
    })
}

/// Advance the global epoch if every active participant is pinned at it.
fn try_advance(g: &GlobalState) {
    let epoch = g.epoch.load(Ordering::SeqCst);
    {
        let participants = g.participants.lock().unwrap();
        for p in participants.iter() {
            let s = p.state.load(Ordering::SeqCst);
            if s & ACTIVE == ACTIVE && s >> 1 != epoch {
                return;
            }
        }
    }
    let _ = g
        .epoch
        .compare_exchange(epoch, epoch + 1, Ordering::SeqCst, Ordering::SeqCst);
}

/// Attempt an epoch advance, then run every destructor that is now safe
/// (retirement epoch at least two behind the global epoch). Destructors run
/// outside the queue lock so they may themselves pin or retire.
fn collect(g: &GlobalState) {
    try_advance(g);
    let epoch = g.epoch.load(Ordering::SeqCst);
    let mut ready = Vec::new();
    {
        let mut garbage = g.garbage.lock().unwrap();
        while let Some((e, _)) = garbage.front() {
            if e + 2 <= epoch {
                ready.push(garbage.pop_front().unwrap().1);
            } else {
                break;
            }
        }
    }
    for d in ready {
        (d.0)();
    }
}

// ----------------------------------------------------------- thread local

/// Per-thread pin bookkeeping. Only the owning thread touches the cells;
/// other threads read `participant.state` through the registry.
struct Local {
    participant: Arc<Participant>,
    pin_count: Cell<u64>,
    pins_until_collect: Cell<u32>,
}

/// Owns the thread's registry entry; dropping it (thread exit) unregisters.
struct LocalHandle {
    local: Local,
}

impl LocalHandle {
    fn register() -> Self {
        let participant = Arc::new(Participant {
            state: AtomicU64::new(0),
        });
        global()
            .participants
            .lock()
            .unwrap()
            .push(Arc::clone(&participant));
        LocalHandle {
            local: Local {
                participant,
                pin_count: Cell::new(0),
                pins_until_collect: Cell::new(PINS_BETWEEN_COLLECT),
            },
        }
    }
}

impl Drop for LocalHandle {
    fn drop(&mut self) {
        let target = Arc::as_ptr(&self.local.participant);
        global()
            .participants
            .lock()
            .unwrap()
            .retain(|p| Arc::as_ptr(p) != target);
    }
}

thread_local! {
    static LOCAL: LocalHandle = LocalHandle::register();
}

// ------------------------------------------------------------------ guard

/// Keeps the current thread pinned to an epoch.
///
/// While any `Guard` exists on a thread, every allocation retired through
/// [`Guard::defer_destroy`] *after* the pin stays alive, so pointers loaded
/// from an [`Atomic`] under the guard remain valid until the guard drops.
/// Guards nest: only the outermost pin/unpin touches the participant state.
#[repr(transparent)]
pub struct Guard {
    /// Null for the [`unprotected`] guard.
    local: *const Local,
}

/// Pin the current thread and return the guard keeping it pinned.
pub fn pin() -> Guard {
    LOCAL.with(|handle| {
        let local = &handle.local;
        let g = global();
        if local.pin_count.get() == 0 {
            loop {
                let epoch = g.epoch.load(Ordering::SeqCst);
                local
                    .participant
                    .state
                    .store((epoch << 1) | ACTIVE, Ordering::SeqCst);
                if g.epoch.load(Ordering::SeqCst) == epoch {
                    break;
                }
                // The epoch moved between publish and re-check: unpin and
                // retry so we never stay pinned at a stale epoch.
                local.participant.state.store(0, Ordering::SeqCst);
            }
        }
        local.pin_count.set(local.pin_count.get() + 1);
        let left = local.pins_until_collect.get();
        if left == 0 {
            local.pins_until_collect.set(PINS_BETWEEN_COLLECT);
            collect(g);
        } else {
            local.pins_until_collect.set(left - 1);
        }
        Guard {
            local: local as *const Local,
        }
    })
}

/// A guard that does not actually pin the thread.
///
/// # Safety
///
/// Only sound where no concurrent access is possible (e.g. inside `Drop` of
/// the structure owning the [`Atomic`]s, with `&mut self`). Deferred
/// destruction through it runs immediately.
pub unsafe fn unprotected() -> &'static Guard {
    static UNPROTECTED: usize = 0;
    // SAFETY: `Guard` is `repr(transparent)` over `*const Local` and the
    // all-zero pattern is the null (unprotected) guard.
    &*(ptr::addr_of!(UNPROTECTED) as *const Guard)
}

impl Guard {
    /// Retire the allocation behind `ptr`: its destructor runs once every
    /// guard pinned at (or before) this call has dropped.
    ///
    /// # Safety
    ///
    /// `ptr` must have come from [`Owned::into_shared`] / [`Atomic`] and
    /// must already be unlinked (no new reader can load it), and it must not
    /// be retired twice.
    pub unsafe fn defer_destroy<T: 'static>(&self, ptr: Shared<'_, T>) {
        if ptr.is_null() {
            return;
        }
        let raw = ptr.raw as *mut T;
        self.defer_unchecked(move || drop(Box::from_raw(raw)));
    }

    /// Defer an arbitrary closure until the retirement epoch is safely past.
    ///
    /// # Safety
    ///
    /// Same unlinked-before-retire contract as [`Guard::defer_destroy`];
    /// the closure runs on an arbitrary thread.
    pub unsafe fn defer_unchecked<F: FnOnce() + 'static>(&self, f: F) {
        if self.local.is_null() {
            // Unprotected guard: the caller asserts exclusive access, so
            // nothing can still reference the value. Run it now.
            f();
            return;
        }
        let g = global();
        {
            // Read the epoch *under* the queue lock so the queue stays
            // monotone in retirement epoch — `collect`'s front-only scan
            // would otherwise strand an already-reclaimable entry behind a
            // later-tagged one pushed by a faster thread.
            let mut garbage = g.garbage.lock().unwrap();
            let epoch = g.epoch.load(Ordering::SeqCst);
            garbage.push_back((epoch, Deferred(Box::new(f))));
        }
        collect(g);
    }

    /// Attempt an epoch advance and run any destructors that became safe.
    pub fn flush(&self) {
        collect(global());
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        if self.local.is_null() {
            return;
        }
        // SAFETY: a non-null guard is created only by `pin()` on this
        // thread and `Guard` is `!Send`, so the `Local` is still alive.
        let local = unsafe { &*self.local };
        let count = local.pin_count.get() - 1;
        local.pin_count.set(count);
        if count == 0 {
            local.participant.state.store(0, Ordering::SeqCst);
        }
    }
}

impl fmt::Debug for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.local.is_null() {
            "Guard { unprotected }"
        } else {
            "Guard { .. }"
        })
    }
}

// --------------------------------------------------------------- pointers

/// An owned, heap-allocated value destined for an [`Atomic`].
pub struct Owned<T> {
    value: Box<T>,
}

impl<T> Owned<T> {
    /// Allocate `value` on the heap.
    pub fn new(value: T) -> Self {
        Owned {
            value: Box::new(value),
        }
    }

    /// Convert into a [`Shared`], giving up ownership to the epoch scheme.
    pub fn into_shared(self, _guard: &Guard) -> Shared<'_, T> {
        Shared {
            raw: Box::into_raw(self.value),
            _marker: PhantomData,
        }
    }

    /// Convert back into a plain box.
    pub fn into_box(self) -> Box<T> {
        self.value
    }
}

impl<T> Deref for Owned<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for Owned<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for Owned<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.value.fmt(f)
    }
}

/// A pointer loaded from an [`Atomic`], valid for the guard's lifetime.
pub struct Shared<'g, T> {
    raw: *const T,
    _marker: PhantomData<&'g T>,
}

impl<T> Clone for Shared<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Shared<'_, T> {}

impl<'g, T> Shared<'g, T> {
    /// The null pointer.
    pub fn null() -> Self {
        Shared {
            raw: ptr::null(),
            _marker: PhantomData,
        }
    }

    /// `true` if this is the null pointer.
    pub fn is_null(&self) -> bool {
        self.raw.is_null()
    }

    /// The raw pointer.
    pub fn as_raw(&self) -> *const T {
        self.raw
    }

    /// Dereference for the guard's lifetime.
    ///
    /// # Safety
    ///
    /// The pointer must be non-null and loaded under the guard `'g` from an
    /// [`Atomic`] whose retirements go through [`Guard::defer_destroy`].
    pub unsafe fn deref(&self) -> &'g T {
        &*self.raw
    }

    /// Like [`Shared::deref`] but returns `None` for null.
    ///
    /// # Safety
    ///
    /// Same contract as [`Shared::deref`].
    pub unsafe fn as_ref(&self) -> Option<&'g T> {
        self.raw.as_ref()
    }

    /// Take back ownership of the allocation.
    ///
    /// # Safety
    ///
    /// The caller must have exclusive access to the pointee (it is unlinked
    /// and no guard can still reach it), and it must not also be retired.
    pub unsafe fn into_owned(self) -> Owned<T> {
        Owned {
            value: Box::from_raw(self.raw as *mut T),
        }
    }
}

impl<T> fmt::Debug for Shared<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shared({:p})", self.raw)
    }
}

/// An atomic pointer whose retired values are reclaimed through the epoch
/// scheme instead of being freed eagerly.
pub struct Atomic<T> {
    ptr: AtomicPtr<T>,
}

unsafe impl<T: Send + Sync> Send for Atomic<T> {}
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

impl<T> Atomic<T> {
    /// Allocate `value` and point at it.
    pub fn new(value: T) -> Self {
        Atomic {
            ptr: AtomicPtr::new(Box::into_raw(Box::new(value))),
        }
    }

    /// The null pointer.
    pub fn null() -> Self {
        Atomic {
            ptr: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// Load the current pointer; the result is valid while `guard` lives.
    pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        Shared {
            raw: self.ptr.load(ord),
            _marker: PhantomData,
        }
    }

    /// Store a new value, returning nothing. The previous value is leaked
    /// unless the caller separately loaded and retires it; prefer
    /// [`Atomic::swap`].
    pub fn store(&self, new: Owned<T>, ord: Ordering) {
        self.ptr.store(Box::into_raw(new.value), ord);
    }

    /// Swap in a new value, returning the previous pointer for retirement.
    pub fn swap<'g>(&self, new: Owned<T>, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        Shared {
            raw: self.ptr.swap(Box::into_raw(new.value), ord),
            _marker: PhantomData,
        }
    }
}

impl<T> From<Owned<T>> for Atomic<T> {
    fn from(owned: Owned<T>) -> Self {
        Atomic {
            ptr: AtomicPtr::new(Box::into_raw(owned.value)),
        }
    }
}

impl<T> fmt::Debug for Atomic<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Atomic({:p})", self.ptr.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    /// Bumps a shared counter when dropped.
    struct DropCounter(Arc<AtomicU64>);

    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Pin a fresh guard per flush so each attempt can advance the epoch
    /// (a single long-lived pin caps the advance at one step).
    fn drain() {
        for _ in 0..16 {
            pin().flush();
        }
    }

    /// Flush until `cond` holds; tolerates other tests in this binary
    /// transiently pinning the shared global epoch.
    fn drain_until(cond: impl Fn() -> bool) {
        for _ in 0..10_000 {
            if cond() {
                return;
            }
            pin().flush();
            std::thread::yield_now();
        }
    }

    #[test]
    fn deferred_drop_runs_after_unpin() {
        let drops = Arc::new(AtomicU64::new(0));
        let slot = Atomic::new(DropCounter(Arc::clone(&drops)));

        let reader = pin();
        let old = {
            let writer = pin();
            let old = slot.swap(
                Owned::new(DropCounter(Arc::clone(&drops))),
                Ordering::SeqCst,
                &writer,
            );
            unsafe { writer.defer_destroy(old) };
            drops.load(Ordering::SeqCst)
        };
        // The reader guard pinned before the swap keeps the old value alive
        // no matter how hard we try to collect.
        drain();
        assert_eq!(drops.load(Ordering::SeqCst), old);
        drop(reader);
        drain_until(|| drops.load(Ordering::SeqCst) == 1);
        assert_eq!(drops.load(Ordering::SeqCst), 1);

        // Drop the final value still inside the Atomic.
        let unprotected = unsafe { unprotected() };
        let last = slot.load(Ordering::SeqCst, unprotected);
        drop(unsafe { last.into_owned() });
        assert_eq!(drops.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn nested_pins_share_one_epoch_slot() {
        let outer = pin();
        let inner = pin();
        drop(outer);
        // Still pinned: retiring through a fresh guard and flushing must not
        // run the destructor while `inner` lives.
        let drops = Arc::new(AtomicU64::new(0));
        let slot = Atomic::new(DropCounter(Arc::clone(&drops)));
        let old = slot.swap(
            Owned::new(DropCounter(Arc::clone(&drops))),
            Ordering::SeqCst,
            &inner,
        );
        unsafe { inner.defer_destroy(old) };
        drain();
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        drop(inner);
        drain_until(|| drops.load(Ordering::SeqCst) == 1);
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        // Drop the live value still inside the Atomic.
        let unprotected = unsafe { unprotected() };
        let last = slot.load(Ordering::SeqCst, unprotected);
        drop(unsafe { last.into_owned() });
        assert_eq!(drops.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn many_threads_retire_and_everything_drops() {
        let drops = Arc::new(AtomicU64::new(0));
        let slot = Arc::new(Atomic::new(DropCounter(Arc::clone(&drops))));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let slot = Arc::clone(&slot);
                let drops = Arc::clone(&drops);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        let g = pin();
                        let old = slot.swap(
                            Owned::new(DropCounter(Arc::clone(&drops))),
                            Ordering::SeqCst,
                            &g,
                        );
                        unsafe { g.defer_destroy(old) };
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        drain_until(|| drops.load(Ordering::SeqCst) == 400);
        // 400 swaps retired 400 values; the one left in the slot is live.
        assert_eq!(drops.load(Ordering::SeqCst), 400);
        let unprotected = unsafe { unprotected() };
        let last = slot.load(Ordering::SeqCst, unprotected);
        drop(unsafe { last.into_owned() });
        assert_eq!(drops.load(Ordering::SeqCst), 401);
    }
}
