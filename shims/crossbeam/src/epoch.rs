//! Offline shim of the `crossbeam-epoch` crate: epoch-based reclamation
//! for lock-free readers.
//!
//! The subset mirrored here is what the workspace needs: [`pin`] returns a
//! [`Guard`]; [`Atomic`], [`Owned`] and [`Shared`] manage a lock-free
//! pointer; [`Guard::defer_destroy`] retires an unlinked allocation so it is
//! dropped only once no pinned guard can still hold a reference to it.
//!
//! # Scheme
//!
//! Classic epoch-based reclamation over a monotonically increasing global
//! epoch:
//!
//! * Every thread owns a *participant* record registered in a global list.
//!   [`pin`] publishes `(current global epoch, active)` into the record,
//!   then re-reads the global epoch and retries until the published epoch is
//!   the current one, so a participant is never pinned at a stale epoch.
//! * Retiring garbage ([`Guard::defer_destroy`]) pushes the destructor into
//!   the retiring thread's *local bag* — no lock, no shared cache line.
//! * When a bag fills up (or on [`Guard::flush`], an amortized fraction of
//!   pins, or thread exit) it is *sealed* with the global epoch observed at
//!   that moment and pushed into one of a small array of global epoch
//!   buckets. Only this seal step takes a lock.
//! * The global epoch advances only when every *active* participant is
//!   pinned at the current epoch; a sealed bag tagged `e` is dropped once
//!   the global epoch reaches `e + 2`.
//!
//! Safety sketch: a reader pinned at epoch `p` can only hold pointers whose
//! retirement happened after its pin. A bag's seal epoch is read *after*
//! every retirement it contains (the epoch is monotone), so each item's
//! retirement epoch is `<=` the bag's seal epoch and every such pointer is
//! tagged `e >= p` or later. While that reader stays pinned the global epoch
//! can advance at most once (to `p + 1`), and freeing its pointers would
//! need `e + 2 <= p + 1` — a contradiction. So nothing a pinned guard can
//! reference is ever freed. Tagging at seal time instead of retirement time
//! only ever *delays* a free, never accelerates one.
//!
//! This is the real crossbeam-epoch design (thread-local bags, tag-based
//! epoch buckets) rather than the single mutex-guarded global queue the
//! first version of this shim used: the retire path is now lock-free until
//! a bag seals, so concurrent writers retiring bucket arrays — or the DPM
//! compactor retiring whole log segments on every pass — no longer
//! serialize on one global mutex. `pin`/unpin itself stays at two
//! uncontended atomic stores plus two loads of the global epoch — the
//! property the lock-free read paths built on this module rely on.
//!
//! # What a pin protects (and what it does not)
//!
//! A [`Guard`] keeps every allocation retired *after* the pin alive for the
//! guard's lifetime. It does **not** freeze logical state: a reader holding
//! a guard can still observe a bucket array that has been superseded or a
//! log segment whose freed-bit has been set — the guard only guarantees the
//! *memory* stays mapped and valid to read. Validity checks (generation
//! counters, freed-bits, seal words) remain the reader's job:
//!
//! ```
//! use crossbeam::epoch::{self, Atomic, Owned};
//! use std::sync::atomic::Ordering;
//!
//! let slot = Atomic::new(vec![1u8, 2, 3]);
//!
//! let guard = epoch::pin();
//! let snapshot = slot.load(Ordering::SeqCst, &guard);
//!
//! // A writer replaces the value and retires the old allocation...
//! let old = slot.swap(Owned::new(vec![4u8, 5]), Ordering::SeqCst, &guard);
//! unsafe { guard.defer_destroy(old) };
//!
//! // ...but our snapshot, loaded under the guard, is still safe to read:
//! // the destructor cannot run while this guard is live.
//! assert_eq!(unsafe { snapshot.deref() }, &[1, 2, 3]);
//! drop(guard);
//!
//! // After the guard drops and the epoch advances twice, collection frees
//! // the retired value (drop the live one explicitly at the end).
//! for _ in 0..16 {
//!     epoch::pin().flush();
//! }
//! let unprotected = unsafe { epoch::unprotected() };
//! let last = slot.load(Ordering::SeqCst, unprotected);
//! drop(unsafe { last.into_owned() });
//! ```

use std::cell::{Cell, RefCell};
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Bit 0 of a participant's state word; the epoch lives in the upper bits.
const ACTIVE: u64 = 1;

/// Attempt a collection every this many pins (amortizes the registry scan).
const PINS_BETWEEN_COLLECT: u32 = 128;

/// A thread's local bag seals into a global bucket at this many items.
///
/// Kept small: a bag can hold closures that own large resources (the DPM
/// defers whole-segment frees through this module), and an unsealed bag is
/// invisible to every other thread's collection attempts.
const MAX_BAG_LEN: usize = 32;

/// Number of global epoch buckets sealed bags are distributed over
/// (indexed by `seal_epoch % BUCKETS`), so concurrent sealers and the
/// collector do not all contend on a single queue lock.
const BUCKETS: usize = 4;

// ---------------------------------------------------------------- globals

/// One registered thread. `state` is `(epoch << 1) | ACTIVE` while pinned
/// and `0` while idle.
struct Participant {
    state: AtomicU64,
}

/// A retired allocation's destructor.
///
/// The closure only ever runs once, on whichever thread triggers the
/// collection; `Send` is asserted because the pointee was unlinked before
/// retirement, so no other thread can reach it anymore.
struct Deferred(Box<dyn FnOnce()>);

unsafe impl Send for Deferred {}

/// A thread-local garbage bag sealed with the global epoch observed at the
/// moment it was pushed into a global bucket. Every destructor inside was
/// retired at an epoch `<=` the seal epoch, so the bag as a whole is safe
/// to drop once the global epoch reaches `epoch + 2`.
struct SealedBag {
    epoch: u64,
    items: Vec<Deferred>,
}

struct GlobalState {
    epoch: AtomicU64,
    participants: Mutex<Vec<Arc<Participant>>>,
    /// Sealed bags, spread over a few buckets by seal epoch. Each bag
    /// carries its own epoch tag, so collection never depends on any
    /// ordering invariant within a bucket.
    buckets: [Mutex<Vec<SealedBag>>; BUCKETS],
    /// Cumulative count of bags sealed into the global buckets — the only
    /// lock acquisitions on the retire path. Exposed through [`stats`] so
    /// contention trends are visible to the cluster timeline.
    bag_flushes: AtomicU64,
    /// Cumulative count of destructors actually run by collection.
    items_collected: AtomicU64,
}

fn global() -> &'static GlobalState {
    static GLOBAL: OnceLock<GlobalState> = OnceLock::new();
    GLOBAL.get_or_init(|| GlobalState {
        epoch: AtomicU64::new(0),
        participants: Mutex::new(Vec::new()),
        buckets: [
            Mutex::new(Vec::new()),
            Mutex::new(Vec::new()),
            Mutex::new(Vec::new()),
            Mutex::new(Vec::new()),
        ],
        bag_flushes: AtomicU64::new(0),
        items_collected: AtomicU64::new(0),
    })
}

/// Counters exposed by the reclamation scheme, cumulative for the process.
///
/// `bag_flushes` counts sealed bags pushed into the global buckets (the
/// only mutex acquisitions retirement ever takes); `items_collected` counts
/// destructors run. A `bag_flushes` rate that approaches the retirement
/// rate means bags are sealing near-empty (e.g. explicit flushes on every
/// operation) and the lock-free buffering is being defeated.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EpochStats {
    /// Sealed bags pushed into the global epoch buckets.
    pub bag_flushes: u64,
    /// Deferred destructors run by collection.
    pub items_collected: u64,
    /// Current global epoch.
    pub global_epoch: u64,
}

/// Snapshot the shim's reclamation counters (see [`EpochStats`]).
pub fn stats() -> EpochStats {
    let g = global();
    EpochStats {
        bag_flushes: g.bag_flushes.load(Ordering::Relaxed),
        items_collected: g.items_collected.load(Ordering::Relaxed),
        global_epoch: g.epoch.load(Ordering::Relaxed),
    }
}

/// Advance the global epoch if every active participant is pinned at it.
fn try_advance(g: &GlobalState) {
    let epoch = g.epoch.load(Ordering::SeqCst);
    {
        let participants = g.participants.lock().unwrap();
        for p in participants.iter() {
            let s = p.state.load(Ordering::SeqCst);
            if s & ACTIVE == ACTIVE && s >> 1 != epoch {
                return;
            }
        }
    }
    let _ = g
        .epoch
        .compare_exchange(epoch, epoch + 1, Ordering::SeqCst, Ordering::SeqCst);
}

/// Attempt an epoch advance, then run the destructors of every sealed bag
/// that is now safe (seal epoch at least two behind the global epoch).
/// Destructors run outside the bucket locks so they may themselves pin or
/// retire.
fn collect(g: &GlobalState) {
    try_advance(g);
    let epoch = g.epoch.load(Ordering::SeqCst);
    let mut ready = Vec::new();
    for bucket in &g.buckets {
        let mut bags = bucket.lock().unwrap();
        let mut i = 0;
        while i < bags.len() {
            if bags[i].epoch + 2 <= epoch {
                ready.push(bags.swap_remove(i));
            } else {
                i += 1;
            }
        }
    }
    let mut ran = 0u64;
    for bag in ready {
        for d in bag.items {
            (d.0)();
            ran += 1;
        }
    }
    if ran > 0 {
        g.items_collected.fetch_add(ran, Ordering::Relaxed);
    }
}

// ----------------------------------------------------------- thread local

/// Per-thread pin bookkeeping. Only the owning thread touches the cells;
/// other threads read `participant.state` through the registry.
struct Local {
    participant: Arc<Participant>,
    pin_count: Cell<u64>,
    pins_until_collect: Cell<u32>,
    /// This thread's unsealed garbage. Pushed to without any lock; sealed
    /// into a global bucket on overflow, flush, amortized pins, and thread
    /// exit. The `RefCell` borrow is never held across a destructor or a
    /// collection (both may re-enter `defer_unchecked` on this thread).
    bag: RefCell<Vec<Deferred>>,
}

impl Local {
    /// Seal this thread's bag into a global epoch bucket. Returns `true` if
    /// there was anything to seal.
    fn seal_bag(&self, g: &GlobalState) -> bool {
        let items = std::mem::take(&mut *self.bag.borrow_mut());
        if items.is_empty() {
            return false;
        }
        // Read the seal epoch *after* taking the items: the epoch is
        // monotone, so it is `>=` every item's retirement epoch and the
        // two-epoch rule applied to the seal epoch is conservative.
        let epoch = g.epoch.load(Ordering::SeqCst);
        g.buckets[(epoch as usize) % BUCKETS]
            .lock()
            .unwrap()
            .push(SealedBag { epoch, items });
        g.bag_flushes.fetch_add(1, Ordering::Relaxed);
        true
    }
}

/// Owns the thread's registry entry; dropping it (thread exit) unregisters
/// the participant and seals any garbage left in the local bag, so a worker
/// that retires and exits mid-epoch never strands its garbage.
struct LocalHandle {
    local: Local,
}

impl LocalHandle {
    fn register() -> Self {
        let participant = Arc::new(Participant {
            state: AtomicU64::new(0),
        });
        global()
            .participants
            .lock()
            .unwrap()
            .push(Arc::clone(&participant));
        LocalHandle {
            local: Local {
                participant,
                pin_count: Cell::new(0),
                pins_until_collect: Cell::new(PINS_BETWEEN_COLLECT),
                bag: RefCell::new(Vec::new()),
            },
        }
    }
}

impl Drop for LocalHandle {
    fn drop(&mut self) {
        // Unregister first so a collection triggered below (or by anyone
        // else) no longer waits on this thread to advance the epoch.
        let target = Arc::as_ptr(&self.local.participant);
        let g = global();
        g.participants
            .lock()
            .unwrap()
            .retain(|p| Arc::as_ptr(p) != target);
        // Hand the exiting thread's garbage to the global buckets and give
        // collection a chance to run it if it is already safe.
        if self.local.seal_bag(g) {
            collect(g);
        }
    }
}

thread_local! {
    static LOCAL: LocalHandle = LocalHandle::register();
}

// ------------------------------------------------------------------ guard

/// Keeps the current thread pinned to an epoch.
///
/// While any `Guard` exists on a thread, every allocation retired through
/// [`Guard::defer_destroy`] *after* the pin stays alive, so pointers loaded
/// from an [`Atomic`] under the guard remain valid until the guard drops.
/// Guards nest: only the outermost pin/unpin touches the participant state.
#[repr(transparent)]
pub struct Guard {
    /// Null for the [`unprotected`] guard.
    local: *const Local,
}

/// Pin the current thread and return the guard keeping it pinned.
pub fn pin() -> Guard {
    LOCAL.with(|handle| {
        let local = &handle.local;
        let g = global();
        if local.pin_count.get() == 0 {
            loop {
                let epoch = g.epoch.load(Ordering::SeqCst);
                local
                    .participant
                    .state
                    .store((epoch << 1) | ACTIVE, Ordering::SeqCst);
                if g.epoch.load(Ordering::SeqCst) == epoch {
                    break;
                }
                // The epoch moved between publish and re-check: unpin and
                // retry so we never stay pinned at a stale epoch.
                local.participant.state.store(0, Ordering::SeqCst);
            }
        }
        local.pin_count.set(local.pin_count.get() + 1);
        let left = local.pins_until_collect.get();
        if left == 0 {
            local.pins_until_collect.set(PINS_BETWEEN_COLLECT);
            local.seal_bag(g);
            collect(g);
        } else {
            local.pins_until_collect.set(left - 1);
        }
        Guard {
            local: local as *const Local,
        }
    })
}

/// A guard that does not actually pin the thread.
///
/// # Safety
///
/// Only sound where no concurrent access is possible (e.g. inside `Drop` of
/// the structure owning the [`Atomic`]s, with `&mut self`). Deferred
/// destruction through it runs immediately.
pub unsafe fn unprotected() -> &'static Guard {
    static UNPROTECTED: usize = 0;
    // SAFETY: `Guard` is `repr(transparent)` over `*const Local` and the
    // all-zero pattern is the null (unprotected) guard.
    &*(ptr::addr_of!(UNPROTECTED) as *const Guard)
}

impl Guard {
    /// Retire the allocation behind `ptr`: its destructor runs once every
    /// guard pinned at (or before) this call has dropped.
    ///
    /// # Safety
    ///
    /// `ptr` must have come from [`Owned::into_shared`] / [`Atomic`] and
    /// must already be unlinked (no new reader can load it), and it must not
    /// be retired twice.
    pub unsafe fn defer_destroy<T: 'static>(&self, ptr: Shared<'_, T>) {
        if ptr.is_null() {
            return;
        }
        let raw = ptr.raw as *mut T;
        self.defer_unchecked(move || drop(Box::from_raw(raw)));
    }

    /// Defer an arbitrary closure until the retirement epoch is safely past.
    ///
    /// The closure goes into the calling thread's local bag without taking
    /// any lock; the bag seals into a global epoch bucket on overflow, on
    /// [`Guard::flush`], on an amortized fraction of pins, or when the
    /// thread exits. Callers retiring large resources (the DPM's deferred
    /// segment frees) should [`Guard::flush`] afterwards so reclamation is
    /// not at the mercy of this thread's future pin cadence.
    ///
    /// # Safety
    ///
    /// Same unlinked-before-retire contract as [`Guard::defer_destroy`];
    /// the closure runs on an arbitrary thread.
    pub unsafe fn defer_unchecked<F: FnOnce() + 'static>(&self, f: F) {
        if self.local.is_null() {
            // Unprotected guard: the caller asserts exclusive access, so
            // nothing can still reference the value. Run it now.
            f();
            return;
        }
        let local = &*self.local;
        let overflow = {
            let mut bag = local.bag.borrow_mut();
            bag.push(Deferred(Box::new(f)));
            bag.len() >= MAX_BAG_LEN
        };
        if overflow {
            let g = global();
            local.seal_bag(g);
            collect(g);
        }
    }

    /// Seal the calling thread's garbage bag into the global buckets, then
    /// attempt an epoch advance and run any destructors that became safe.
    pub fn flush(&self) {
        let g = global();
        if !self.local.is_null() {
            // SAFETY: a non-null guard was created by `pin()` on this
            // thread and `Guard` is `!Send`, so the `Local` is alive.
            unsafe { (*self.local).seal_bag(g) };
        }
        collect(g);
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        if self.local.is_null() {
            return;
        }
        // SAFETY: a non-null guard is created only by `pin()` on this
        // thread and `Guard` is `!Send`, so the `Local` is still alive.
        let local = unsafe { &*self.local };
        let count = local.pin_count.get() - 1;
        local.pin_count.set(count);
        if count == 0 {
            local.participant.state.store(0, Ordering::SeqCst);
        }
    }
}

impl fmt::Debug for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.local.is_null() {
            "Guard { unprotected }"
        } else {
            "Guard { .. }"
        })
    }
}

// --------------------------------------------------------------- pointers

/// An owned, heap-allocated value destined for an [`Atomic`].
pub struct Owned<T> {
    value: Box<T>,
}

impl<T> Owned<T> {
    /// Allocate `value` on the heap.
    pub fn new(value: T) -> Self {
        Owned {
            value: Box::new(value),
        }
    }

    /// Convert into a [`Shared`], giving up ownership to the epoch scheme.
    pub fn into_shared(self, _guard: &Guard) -> Shared<'_, T> {
        Shared {
            raw: Box::into_raw(self.value),
            _marker: PhantomData,
        }
    }

    /// Convert back into a plain box.
    pub fn into_box(self) -> Box<T> {
        self.value
    }
}

impl<T> Deref for Owned<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for Owned<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for Owned<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.value.fmt(f)
    }
}

/// A pointer loaded from an [`Atomic`], valid for the guard's lifetime.
pub struct Shared<'g, T> {
    raw: *const T,
    _marker: PhantomData<&'g T>,
}

impl<T> Clone for Shared<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Shared<'_, T> {}

impl<'g, T> Shared<'g, T> {
    /// The null pointer.
    pub fn null() -> Self {
        Shared {
            raw: ptr::null(),
            _marker: PhantomData,
        }
    }

    /// `true` if this is the null pointer.
    pub fn is_null(&self) -> bool {
        self.raw.is_null()
    }

    /// The raw pointer.
    pub fn as_raw(&self) -> *const T {
        self.raw
    }

    /// Dereference for the guard's lifetime.
    ///
    /// # Safety
    ///
    /// The pointer must be non-null and loaded under the guard `'g` from an
    /// [`Atomic`] whose retirements go through [`Guard::defer_destroy`].
    pub unsafe fn deref(&self) -> &'g T {
        &*self.raw
    }

    /// Like [`Shared::deref`] but returns `None` for null.
    ///
    /// # Safety
    ///
    /// Same contract as [`Shared::deref`].
    pub unsafe fn as_ref(&self) -> Option<&'g T> {
        self.raw.as_ref()
    }

    /// Take back ownership of the allocation.
    ///
    /// # Safety
    ///
    /// The caller must have exclusive access to the pointee (it is unlinked
    /// and no guard can still reach it), and it must not also be retired.
    pub unsafe fn into_owned(self) -> Owned<T> {
        Owned {
            value: Box::from_raw(self.raw as *mut T),
        }
    }
}

impl<T> fmt::Debug for Shared<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shared({:p})", self.raw)
    }
}

/// An atomic pointer whose retired values are reclaimed through the epoch
/// scheme instead of being freed eagerly.
pub struct Atomic<T> {
    ptr: AtomicPtr<T>,
}

unsafe impl<T: Send + Sync> Send for Atomic<T> {}
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

impl<T> Atomic<T> {
    /// Allocate `value` and point at it.
    pub fn new(value: T) -> Self {
        Atomic {
            ptr: AtomicPtr::new(Box::into_raw(Box::new(value))),
        }
    }

    /// The null pointer.
    pub fn null() -> Self {
        Atomic {
            ptr: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// Load the current pointer; the result is valid while `guard` lives.
    pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        Shared {
            raw: self.ptr.load(ord),
            _marker: PhantomData,
        }
    }

    /// Store a new value, returning nothing. The previous value is leaked
    /// unless the caller separately loaded and retires it; prefer
    /// [`Atomic::swap`].
    pub fn store(&self, new: Owned<T>, ord: Ordering) {
        self.ptr.store(Box::into_raw(new.value), ord);
    }

    /// Swap in a new value, returning the previous pointer for retirement.
    pub fn swap<'g>(&self, new: Owned<T>, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        Shared {
            raw: self.ptr.swap(Box::into_raw(new.value), ord),
            _marker: PhantomData,
        }
    }
}

impl<T> From<Owned<T>> for Atomic<T> {
    fn from(owned: Owned<T>) -> Self {
        Atomic {
            ptr: AtomicPtr::new(Box::into_raw(owned.value)),
        }
    }
}

impl<T> fmt::Debug for Atomic<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Atomic({:p})", self.ptr.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    /// Bumps a shared counter when dropped.
    struct DropCounter(Arc<AtomicU64>);

    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Pin a fresh guard per flush so each attempt can advance the epoch
    /// (a single long-lived pin caps the advance at one step).
    fn drain() {
        for _ in 0..16 {
            pin().flush();
        }
    }

    /// Flush until `cond` holds; tolerates other tests in this binary
    /// transiently pinning the shared global epoch.
    fn drain_until(cond: impl Fn() -> bool) {
        for _ in 0..10_000 {
            if cond() {
                return;
            }
            pin().flush();
            std::thread::yield_now();
        }
    }

    #[test]
    fn deferred_drop_runs_after_unpin() {
        let drops = Arc::new(AtomicU64::new(0));
        let slot = Atomic::new(DropCounter(Arc::clone(&drops)));

        let reader = pin();
        let old = {
            let writer = pin();
            let old = slot.swap(
                Owned::new(DropCounter(Arc::clone(&drops))),
                Ordering::SeqCst,
                &writer,
            );
            unsafe { writer.defer_destroy(old) };
            drops.load(Ordering::SeqCst)
        };
        // The reader guard pinned before the swap keeps the old value alive
        // no matter how hard we try to collect.
        drain();
        assert_eq!(drops.load(Ordering::SeqCst), old);
        drop(reader);
        drain_until(|| drops.load(Ordering::SeqCst) == 1);
        assert_eq!(drops.load(Ordering::SeqCst), 1);

        // Drop the final value still inside the Atomic.
        let unprotected = unsafe { unprotected() };
        let last = slot.load(Ordering::SeqCst, unprotected);
        drop(unsafe { last.into_owned() });
        assert_eq!(drops.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn nested_pins_share_one_epoch_slot() {
        let outer = pin();
        let inner = pin();
        drop(outer);
        // Still pinned: retiring through a fresh guard and flushing must not
        // run the destructor while `inner` lives.
        let drops = Arc::new(AtomicU64::new(0));
        let slot = Atomic::new(DropCounter(Arc::clone(&drops)));
        let old = slot.swap(
            Owned::new(DropCounter(Arc::clone(&drops))),
            Ordering::SeqCst,
            &inner,
        );
        unsafe { inner.defer_destroy(old) };
        drain();
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        drop(inner);
        drain_until(|| drops.load(Ordering::SeqCst) == 1);
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        // Drop the live value still inside the Atomic.
        let unprotected = unsafe { unprotected() };
        let last = slot.load(Ordering::SeqCst, unprotected);
        drop(unsafe { last.into_owned() });
        assert_eq!(drops.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn many_threads_retire_and_everything_drops() {
        let drops = Arc::new(AtomicU64::new(0));
        let slot = Arc::new(Atomic::new(DropCounter(Arc::clone(&drops))));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let slot = Arc::clone(&slot);
                let drops = Arc::clone(&drops);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        let g = pin();
                        let old = slot.swap(
                            Owned::new(DropCounter(Arc::clone(&drops))),
                            Ordering::SeqCst,
                            &g,
                        );
                        unsafe { g.defer_destroy(old) };
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        drain_until(|| drops.load(Ordering::SeqCst) == 400);
        // 400 swaps retired 400 values; the one left in the slot is live.
        assert_eq!(drops.load(Ordering::SeqCst), 400);
        let unprotected = unsafe { unprotected() };
        let last = slot.load(Ordering::SeqCst, unprotected);
        drop(unsafe { last.into_owned() });
        assert_eq!(drops.load(Ordering::SeqCst), 401);
    }

    #[test]
    fn exiting_thread_seals_its_bag_and_strands_nothing() {
        // A worker that retires garbage — including closures standing in
        // for deferred segment frees — and exits *without ever flushing*
        // must not strand anything: `LocalHandle::drop` seals the bag into
        // the global buckets where any other thread's collection finds it.
        let drops = Arc::new(AtomicU64::new(0));
        const RETIRED: u64 = 7; // deliberately < MAX_BAG_LEN: no overflow seal
        assert!((RETIRED as usize) < MAX_BAG_LEN);
        {
            let drops = Arc::clone(&drops);
            std::thread::spawn(move || {
                let g = pin();
                for _ in 0..RETIRED {
                    let counter = DropCounter(Arc::clone(&drops));
                    unsafe { g.defer_unchecked(move || drop(counter)) };
                }
                // Exit while still mid-epoch: no flush, no overflow.
            })
            .join()
            .unwrap();
        }
        assert_eq!(
            drops.load(Ordering::SeqCst),
            0,
            "nothing may free before the epoch advances twice"
        );
        drain_until(|| drops.load(Ordering::SeqCst) == RETIRED);
        assert_eq!(
            drops.load(Ordering::SeqCst),
            RETIRED,
            "retired == freed after drain: exit seal must not strand garbage"
        );
    }

    #[test]
    fn bag_overflow_seals_without_explicit_flush() {
        // Retiring past MAX_BAG_LEN on a live thread seals the bag into
        // the global buckets even though the thread never calls flush().
        let drops = Arc::new(AtomicU64::new(0));
        let n = (MAX_BAG_LEN * 3) as u64;
        {
            let g = pin();
            for _ in 0..n {
                let counter = DropCounter(Arc::clone(&drops));
                unsafe { g.defer_unchecked(move || drop(counter)) };
            }
        }
        let flushed_before = stats().bag_flushes;
        assert!(flushed_before > 0, "overflow must have sealed bags");
        drain_until(|| drops.load(Ordering::SeqCst) >= n - MAX_BAG_LEN as u64);
        // The unsealed remainder (< MAX_BAG_LEN items) seals on flush.
        pin().flush();
        drain_until(|| drops.load(Ordering::SeqCst) == n);
        assert_eq!(drops.load(Ordering::SeqCst), n);
    }
}
