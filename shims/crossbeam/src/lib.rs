//! Offline shim for the `crossbeam` crate.
//!
//! Two subsets are provided:
//!
//! * `crossbeam::channel`'s unbounded MPSC subset, backed by
//!   `std::sync::mpsc` (whose `Sender` is `Sync` since Rust 1.72, so the
//!   usual crossbeam sharing patterns work unchanged), and
//! * `crossbeam::epoch`, a from-scratch epoch-based-reclamation scheme
//!   mirroring the `crossbeam-epoch` API surface the workspace's lock-free
//!   read paths need (see the module docs).

pub mod epoch;

pub mod channel {
    //! Unbounded channels (API subset of `crossbeam-channel`).

    use std::fmt;
    use std::sync::mpsc;

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders are gone and the channel is drained.
        Disconnected,
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    impl<T> Sender<T> {
        /// Send a message; fails only if every receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives; fails once the channel is closed
        /// and drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError};

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = unbounded();
        let sender = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let received: Vec<i32> = (0..100).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(received, (0..100).collect::<Vec<_>>());
        sender.join().unwrap();
        // All senders gone → recv errors out instead of blocking forever.
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn dropping_receiver_fails_sends() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
