//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal, API-compatible implementation of the subset of `parking_lot`
//! the DINOMO codebase uses: [`Mutex`], [`RwLock`] and [`Condvar`] with
//! non-poisoning guards. It is implemented on top of `std::sync`; a panic
//! while a lock is held simply clears the poison flag, matching
//! `parking_lot`'s semantics of never poisoning.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual-exclusion primitive (non-poisoning `std::sync::Mutex` wrapper).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(
                self.inner
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
            ),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner `Option` exists so [`Condvar::wait_for`] can temporarily hand
/// the underlying std guard to `std::sync::Condvar`; it is `Some` at every
/// other moment.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A reader-writer lock (non-poisoning `std::sync::RwLock` wrapper).
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self
                .inner
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self
                .inner
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with the shim [`Mutex`].
///
/// A notify that lands while no thread is blocked in `wait`/`wait_for` is
/// lost, as with `std::sync::Condvar` — callers must re-check their
/// predicate under the mutex (every in-repo caller waits on a bounded
/// timeout and re-checks).
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard already taken");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Block until notified or until `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard already taken");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        let g = m.lock();
        // A second lock attempt from the same thread must fail, not deadlock.
        assert!(m.try_lock().is_none());
        drop(g);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wait_for_times_out_and_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        // Timeout path.
        {
            let mut guard = pair.0.lock();
            let res = pair.1.wait_for(&mut guard, Duration::from_millis(10));
            assert!(res.timed_out());
        }
        // Notification path.
        let pair2 = Arc::clone(&pair);
        let waker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            *pair2.0.lock() = true;
            pair2.1.notify_all();
        });
        let mut guard = pair.0.lock();
        while !*guard {
            pair.1.wait_for(&mut guard, Duration::from_millis(100));
        }
        assert!(*guard);
        drop(guard);
        waker.join().unwrap();
    }

    #[test]
    fn locks_do_not_poison_after_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is usable afterwards.
        assert_eq!(*m.lock(), 0);
    }
}
