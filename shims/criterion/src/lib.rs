//! Offline shim for the `criterion` crate.
//!
//! A deliberately small timing harness exposing the Criterion API subset the
//! workspace's benches use: `Criterion::benchmark_group`, `bench_function`,
//! `Bencher::{iter, iter_batched}`, `BatchSize`, `black_box` and the
//! `criterion_group!`/`criterion_main!` macros. Results are printed as
//! `<name> ... time: <median> ns/iter` lines; there is no HTML report,
//! statistical regression analysis, or command-line filtering.
//!
//! Set `CRITERION_SHIM_SAMPLE_MS` to change the per-sample time budget
//! (default 20 ms) — smaller values make `cargo bench` fast smoke runs.

use std::time::{Duration, Instant};

/// Re-export of the standard black box (Criterion's moved here long ago).
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The shim runs one setup per
/// routine call regardless, so the variants only exist for API parity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Timing driver handed to the benchmark closure.
pub struct Bencher {
    /// Nanoseconds per iteration measured by the last `iter*` call.
    sample_ns: Vec<f64>,
    sample_count: usize,
    sample_budget: Duration,
}

impl Bencher {
    fn new(sample_count: usize, sample_budget: Duration) -> Self {
        Bencher {
            sample_ns: Vec::new(),
            sample_count,
            sample_budget,
        }
    }

    /// Time a routine: `b.iter(|| work())`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate how many iterations fit in the per-sample budget.
        let calibration_start = Instant::now();
        black_box(routine());
        let once = calibration_start.elapsed().max(Duration::from_nanos(1));
        let iters_per_sample =
            (self.sample_budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.sample_ns
                .push(elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
    }

    /// Time a routine with per-call setup excluded from the measurement:
    /// `b.iter_batched(setup, routine, BatchSize::SmallInput)`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_count {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.sample_ns.push(start.elapsed().as_nanos() as f64);
        }
    }

    /// Like [`Bencher::iter_batched`] but the routine takes the input by
    /// reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        for _ in 0..self.sample_count {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.sample_ns.push(start.elapsed().as_nanos() as f64);
        }
    }

    fn report(&mut self, name: &str) {
        if self.sample_ns.is_empty() {
            println!("{name:<50} ... no samples");
            return;
        }
        self.sample_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = self.sample_ns[self.sample_ns.len() / 2];
        let min = self.sample_ns.first().copied().unwrap_or(0.0);
        let max = self.sample_ns.last().copied().unwrap_or(0.0);
        println!("{name:<50} time: [{min:>12.1} {median:>12.1} {max:>12.1}] ns/iter");
    }
}

fn default_sample_budget() -> Duration {
    let ms = std::env::var("CRITERION_SHIM_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20u64);
    Duration::from_millis(ms.max(1))
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_count: usize,
    sample_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_count: 15,
            sample_budget: default_sample_budget(),
        }
    }
}

impl Criterion {
    /// Number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(3);
        self
    }

    /// Parse command-line arguments (no-op in the shim, for API parity).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            prefix: name,
            sample_count: self.sample_count,
            sample_budget: self.sample_budget,
            _criterion: self,
        }
    }

    /// Run one benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_count, self.sample_budget);
        f(&mut bencher);
        bencher.report(&id);
        self
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    prefix: String,
    sample_count: usize,
    sample_budget: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of samples collected per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(3);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.prefix, id.into());
        let mut bencher = Bencher::new(self.sample_count, self.sample_budget);
        f(&mut bencher);
        bencher.report(&id);
        self
    }

    /// Finish the group (no-op beyond API parity).
    pub fn finish(self) {}
}

/// Define a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` from one or more `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_reasonable_medians() {
        std::env::set_var("CRITERION_SHIM_SAMPLE_MS", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(5);
        let mut counter = 0u64;
        group.bench_function("add", |b| {
            b.iter(|| {
                counter = counter.wrapping_add(1);
                counter
            })
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
        assert!(counter > 0);
    }
}
