//! Selective replication of hot keys: a highly-skewed workload overloads the
//! owner of a handful of keys; sharing their ownership across KNs (via
//! indirect pointers in DPM) spreads the load — the mechanism behind the
//! paper's Figure 7.
//!
//! ```bash
//! cargo run --release --example hot_key_replication
//! ```

use dinomo::workload::key_for;
use dinomo::{Kvs, KvsConfig, Variant};

fn main() {
    let config = KvsConfig {
        variant: Variant::Dinomo,
        initial_kns: 4,
        threads_per_kn: 2,
        cache_bytes_per_kn: 2 << 20,
        ..KvsConfig::small_for_tests()
    };
    let kvs = Kvs::new(config).expect("cluster");
    let client = kvs.client();

    for i in 0..2_000u64 {
        client.insert(&key_for(i, 8), &[0u8; 128]).unwrap();
    }

    // A highly skewed phase: 4 hot keys receive most of the traffic.
    let hot_keys: Vec<Vec<u8>> = (0..4u64).map(|i| key_for(i, 8)).collect();
    let skewed_round = |label: &str| {
        let before: Vec<(u32, u64)> = kvs.stats().kns.iter().map(|k| (k.id, k.ops)).collect();
        for _ in 0..2_000 {
            for key in &hot_keys {
                client.lookup(key).unwrap();
            }
        }
        let after = kvs.stats();
        println!("\n{label}: per-KN operations for the hot-key phase");
        for kn in &after.kns {
            let prev = before
                .iter()
                .find(|(id, _)| *id == kn.id)
                .map_or(0, |(_, o)| *o);
            println!("  KN {} served {} ops", kn.id, kn.ops - prev);
        }
        println!(
            "  load imbalance (normalised std): {:.2}",
            after.load_imbalance()
        );
    };

    skewed_round("before replication");

    // The M-node decides the 4 keys are hot and shares their ownership
    // across all 4 KNs (factor = cluster size).
    for key in &hot_keys {
        let owners = kvs.replicate_key(key, 4).unwrap();
        println!("replicated {:?} across KNs {:?}", key, owners);
    }
    skewed_round("after replication");

    // Writes to a shared key stay linearizable: the owners race through a
    // CAS on the key's indirect pointer in DPM.
    client.update(&hot_keys[0], b"new-value").unwrap();
    assert_eq!(
        client.lookup(&hot_keys[0]).unwrap(),
        Some(b"new-value".to_vec())
    );

    // When the skew subsides the keys are de-replicated again.
    for key in &hot_keys {
        kvs.dereplicate_key(key).unwrap();
    }
    println!(
        "\nde-replicated all hot keys; replication factor of key 0 is now {}",
        kvs.ownership().read().replication_factor(&hot_keys[0])
    );
}
