//! Fault tolerance: kill a KVS node and watch the cluster recover without
//! losing committed data — the mechanism behind the paper's Figure 8.
//!
//! ```bash
//! cargo run --release --example fault_tolerance
//! ```

use dinomo::workload::key_for;
use dinomo::{Kvs, KvsConfig, Variant};
use std::time::Instant;

fn main() {
    let config = KvsConfig {
        variant: Variant::Dinomo,
        initial_kns: 4,
        threads_per_kn: 2,
        cache_bytes_per_kn: 2 << 20,
        ..KvsConfig::small_for_tests()
    };
    let kvs = Kvs::new(config).expect("cluster");
    let client = kvs.client();

    println!("loading 5,000 keys across {} KNs ...", kvs.num_kns());
    for i in 0..5_000u64 {
        client
            .insert(&key_for(i, 8), &vec![(i % 251) as u8; 256])
            .unwrap();
    }
    // Make every write durable in the DPM log before the failure.
    kvs.flush_all().unwrap();

    let victim = kvs.kn_ids()[0];
    println!("failing KN {victim} ...");
    let start = Instant::now();
    kvs.fail_kn(victim).unwrap();
    let recovery = start.elapsed();
    println!(
        "recovery (merge pending logs + repartition ownership) took {:.1} ms; cluster now has {} KNs",
        recovery.as_secs_f64() * 1e3,
        kvs.num_kns()
    );

    println!("verifying that every committed key is still readable ...");
    let mut checked = 0;
    for i in 0..5_000u64 {
        let value = client
            .lookup(&key_for(i, 8))
            .expect("lookup failed")
            .unwrap_or_else(|| panic!("key {i} lost after the failure"));
        assert_eq!(value[0], (i % 251) as u8);
        checked += 1;
    }
    println!("all {checked} keys survived the KN failure");

    // The ownership metadata persisted in DPM lets a restarted routing tier
    // rebuild its soft state.
    let recovered = kvs
        .recover_policy_metadata()
        .expect("policy metadata in DPM");
    println!(
        "policy metadata recovered from DPM: {} (version {})",
        recovered.describe(),
        recovered.version()
    );
}
