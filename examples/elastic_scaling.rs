//! Elastic scaling: the M-node policy engine reacts to a load burst by adding
//! KVS nodes and releases one when the burst subsides — a miniature version
//! of the paper's Figure 6 experiment.
//!
//! ```bash
//! cargo run --release --example elastic_scaling
//! ```

use dinomo::cluster::{
    DriverConfig, EventKind, PolicyEngine, ScriptedEvent, SimulationDriver, SloConfig,
};
use dinomo::{ElasticKvs, KeyDistribution, Kvs, KvsConfig, Variant, WorkloadConfig, WorkloadMix};
use std::sync::Arc;

fn main() {
    let config = KvsConfig {
        variant: Variant::Dinomo,
        initial_kns: 1,
        threads_per_kn: 2,
        cache_bytes_per_kn: 2 << 20,
        ..KvsConfig::small_for_tests()
    };
    let kvs: Arc<dyn ElasticKvs> = Arc::new(Kvs::new(config).expect("cluster"));

    let workload = WorkloadConfig {
        num_keys: 2_000,
        key_len: 8,
        value_len: 128,
        mix: WorkloadMix::WRITE_HEAVY_UPDATE,
        distribution: KeyDistribution::LOW_SKEW,
        seed: 11,
        max_scan_len: 16,
    };
    // SLO thresholds calibrated to the simulated fabric (see DESIGN.md §6).
    let slo = SloConfig {
        avg_latency_ms: 0.05,
        tail_latency_ms: 0.5,
        overutil_lower_bound: 0.10,
        underutil_upper_bound: 0.05,
        grace_epochs: 3,
        max_nodes: 4,
        min_nodes: 1,
        ..SloConfig::default()
    };
    let driver = SimulationDriver::new(
        kvs,
        DriverConfig {
            epoch_ms: 120,
            total_epochs: 24,
            max_clients: 6,
            initial_clients: 1,
            workload,
            preload: true,
            key_sample_every: 8,
            batch_size: 1,
            ..DriverConfig::default()
        },
    )
    .with_policy(PolicyEngine::new(slo));

    let events = vec![
        ScriptedEvent {
            at_epoch: 4,
            event: EventKind::SetClients(6),
        },
        ScriptedEvent {
            at_epoch: 18,
            event: EventKind::SetClients(1),
        },
    ];
    println!("epoch  kops/s   avg(ms)  p99(ms)  KNs  clients  actions");
    for row in driver.run(&events) {
        println!(
            "{:>5}  {:>7.1}  {:>7.3}  {:>7.3}  {:>3}  {:>7}  {}",
            row.epoch,
            row.throughput / 1e3,
            row.avg_latency_ms,
            row.p99_latency_ms,
            row.num_nodes,
            row.active_clients,
            row.actions.join("; ")
        );
    }
}
