//! Batched ingest: load a workload through `KvsClient::execute` and compare
//! against the per-key path.
//!
//! Demonstrates the batched request API end to end — fluent cluster
//! construction with `Kvs::builder()`, `WorkloadGenerator::next_batch`
//! feeding owner-grouped `execute` batches, and `multi_get` verification —
//! and prints the measured per-key vs batched ingest throughput.
//!
//! Run with `cargo run --release --example batched_ingest`.

use dinomo::{Kvs, Op, Reply, Variant, WorkloadConfig, WorkloadGenerator, WorkloadMix};
use std::time::Instant;

const BATCH: usize = 32;

fn main() {
    let kvs = Kvs::builder()
        .initial_kns(4)
        .threads_per_kn(2)
        .variant(Variant::Dinomo)
        .build()
        .expect("building the cluster failed");
    let client = kvs.client();

    // An insert-heavy stream, as in the paper's load phase.
    let workload = WorkloadConfig {
        num_keys: 20_000,
        value_len: 256,
        mix: WorkloadMix::INSERT_ONLY,
        ..WorkloadConfig::default()
    };

    // Phase 1: ingest the load phase in owner-grouped batches.
    let mut generator = WorkloadGenerator::new(workload);
    let load: Vec<(Vec<u8>, Vec<u8>)> = generator.load_phase().collect();
    let start = Instant::now();
    let mut failures = 0usize;
    for chunk in load.chunks(BATCH) {
        let replies = client.multi_put(chunk.iter().map(|(k, v)| (k, v)));
        failures += replies.iter().filter(|r| !r.is_ok()).count();
    }
    let batched_secs = start.elapsed().as_secs_f64();
    assert_eq!(failures, 0, "batched ingest reported failures");
    println!(
        "batched ingest : {} keys in {:.3}s ({:.0} ops/s)",
        load.len(),
        batched_secs,
        load.len() as f64 / batched_secs
    );

    // Phase 2: the same number of fresh inserts per key, for comparison.
    let start = Instant::now();
    let mut ops_done = 0u64;
    for _ in 0..load.len() / BATCH {
        for op in generator.next_batch(BATCH) {
            if let dinomo::workload::Operation::Insert(k, v) = op {
                client.insert(&k, &v).expect("per-key insert failed");
                ops_done += 1;
            }
        }
    }
    let per_key_secs = start.elapsed().as_secs_f64();
    println!(
        "per-key ingest : {} keys in {:.3}s ({:.0} ops/s)",
        ops_done,
        per_key_secs,
        ops_done as f64 / per_key_secs
    );

    // Verify a sample of the loaded data through the batched read path.
    let sample: Vec<&Vec<u8>> = load.iter().step_by(97).map(|(k, _)| k).collect();
    let replies = client.multi_get(sample.iter().copied());
    for ((key, expected), reply) in load.iter().step_by(97).zip(&replies) {
        match reply {
            Reply::Value(Some(v)) => assert_eq!(v, expected, "mismatch at {key:?}"),
            other => panic!("lookup of {key:?} returned {other:?}"),
        }
    }
    println!(
        "verified       : {} sampled keys readable via multi_get",
        sample.len()
    );

    // Mixed batches work too: read-modify-write in one round trip per group.
    let replies = client.execute(vec![
        Op::lookup(&load[0].0),
        Op::update(&load[0].0, b"updated"),
        Op::lookup(&load[0].0),
    ]);
    assert!(replies.iter().all(Reply::is_ok));
    assert_eq!(replies[2].value(), Some(&b"updated"[..]));
    println!("mixed batch    : lookup/update/lookup round-tripped in one execute call");
}
