//! Quickstart: build a small Dinomo cluster, run the basic API, and look at
//! the statistics the paper's evaluation is built on.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use dinomo::workload::key_for;
use dinomo::{Kvs, KvsConfig, Variant};

fn main() {
    // A 2-KN cluster with DAC caching (the full Dinomo design).
    let config = KvsConfig {
        variant: Variant::Dinomo,
        initial_kns: 2,
        threads_per_kn: 4,
        cache_bytes_per_kn: 4 << 20,
        ..KvsConfig::small_for_tests()
    };
    let kvs = Kvs::new(config).expect("failed to build the cluster");
    let client = kvs.client();

    // The paper's API: insert / update / lookup / delete on variable-sized
    // keys and values.
    client.insert(b"user:1", b"alice").unwrap();
    client.insert(b"user:2", b"bob").unwrap();
    client.update(b"user:1", b"alice-v2").unwrap();
    println!(
        "user:1 = {:?}",
        String::from_utf8(client.lookup(b"user:1").unwrap().unwrap())
    );
    client.delete(b"user:2").unwrap();
    assert_eq!(client.lookup(b"user:2").unwrap(), None);

    // Load a few thousand keys and read them back with a skewed pattern to
    // watch the adaptive cache at work.
    for i in 0..5_000u64 {
        client
            .insert(&key_for(i, 8), &vec![(i % 251) as u8; 256])
            .unwrap();
    }
    for round in 0..3 {
        for i in 0..5_000u64 {
            let hot = i % 500; // a hot subset
            let value = client.lookup(&key_for(hot, 8)).unwrap().unwrap();
            assert_eq!(value[0], (hot % 251) as u8);
        }
        let stats = kvs.stats();
        println!(
            "round {round}: {} ops, cache hit ratio {:.1}% ({:.1}% from values), {:.2} RTs/op",
            stats.total_ops(),
            stats.cache_hit_ratio() * 100.0,
            stats.value_hit_ratio() * 100.0,
            stats.rts_per_op()
        );
    }

    // Elasticity: add a KVS node — only ownership moves, no data is copied.
    let new_kn = kvs.add_kn().unwrap();
    println!(
        "added KN {new_kn}; cluster now has {} KNs, reshuffled bytes = {}",
        kvs.num_kns(),
        kvs.bytes_reshuffled()
    );
    assert_eq!(kvs.bytes_reshuffled(), 0);
    let value = client.lookup(&key_for(42, 8)).unwrap().unwrap();
    println!(
        "key 42 still readable after reconfiguration ({} bytes)",
        value.len()
    );
}
