//! The key hash shared by the index tag, the hash rings and the caches.

/// Hash an application key to the 64-bit value used everywhere in the system
/// (index tag, ring position, thread selection).
///
/// FNV-1a is used for its simplicity and good avalanche behaviour on short
/// keys (the paper's workloads use 8-byte keys); it is deterministic across
/// runs, which keeps experiments reproducible.
pub fn key_hash(key: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in key {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    // A final mix (xorshift-multiply) spreads low-entropy keys across the
    // whole 64-bit space, which matters for ring placement.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h
}

/// Hash an already-hashed position with a virtual-node replica index, used to
/// place virtual nodes on the ring.
pub fn vnode_hash(node_seed: u64, replica: u32) -> u64 {
    let mut h = node_seed ^ (u64::from(replica).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    h ^= h >> 31;
    h = h.wrapping_mul(0x7fb5_d329_728e_a185);
    h ^= h >> 27;
    h = h.wrapping_mul(0x81da_f14b_a0b2_4b27);
    h ^= h >> 33;
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic_and_distinct() {
        assert_eq!(key_hash(b"user0001"), key_hash(b"user0001"));
        assert_ne!(key_hash(b"user0001"), key_hash(b"user0002"));
        assert_ne!(key_hash(b""), key_hash(b"\0"));
    }

    #[test]
    fn sequential_keys_spread_widely() {
        // Keys like "user0000001" differ only in a couple of bytes; their
        // hashes should still land all over the 64-bit space.
        let hashes: Vec<u64> = (0..1000)
            .map(|i| key_hash(format!("user{i:07}").as_bytes()))
            .collect();
        let distinct: HashSet<_> = hashes.iter().collect();
        assert_eq!(distinct.len(), 1000);
        let top_half = hashes.iter().filter(|&&h| h > u64::MAX / 2).count();
        assert!(
            top_half > 350 && top_half < 650,
            "poorly spread: {top_half}"
        );
    }

    #[test]
    fn vnode_hashes_differ_per_replica() {
        let a = vnode_hash(42, 0);
        let b = vnode_hash(42, 1);
        let c = vnode_hash(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
