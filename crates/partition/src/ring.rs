//! Consistent-hashing ring with virtual nodes.

use crate::hash::vnode_hash;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A consistent-hashing ring mapping 64-bit positions to node identifiers.
///
/// Each node is placed at `vnodes` pseudo-random positions; a key is owned by
/// the first virtual node clockwise from the key's hash.  Adding or removing
/// one node therefore moves only ~`1/n` of the key space — the property that
/// makes Dinomo's reconfiguration lightweight.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HashRing {
    vnodes: u32,
    ring: BTreeMap<u64, u32>,
    members: Vec<u32>,
}

/// A contiguous range of ring positions whose owner changed between two ring
/// configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OwnershipChange {
    /// First position of the range (inclusive).
    pub start: u64,
    /// Last position of the range (inclusive).
    pub end: u64,
    /// Owner before the change (`None` if the ring was empty).
    pub from: Option<u32>,
    /// Owner after the change (`None` if the ring became empty).
    pub to: Option<u32>,
}

impl HashRing {
    /// Create an empty ring placing each node at `vnodes` positions.
    pub fn new(vnodes: u32) -> Self {
        HashRing {
            vnodes: vnodes.max(1),
            ring: BTreeMap::new(),
            members: Vec::new(),
        }
    }

    /// Number of distinct member nodes.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` if the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The member node identifiers, in insertion order.
    pub fn members(&self) -> &[u32] {
        &self.members
    }

    /// `true` if `node` is a member.
    pub fn contains(&self, node: u32) -> bool {
        self.members.contains(&node)
    }

    /// Add a node. No-op if already present.
    pub fn add_node(&mut self, node: u32) {
        if self.contains(node) {
            return;
        }
        self.members.push(node);
        let seed = u64::from(node).wrapping_mul(0xD6E8_FEB8_6659_FD93) ^ 0xA5A5;
        for r in 0..self.vnodes {
            self.ring.insert(vnode_hash(seed, r), node);
        }
    }

    /// Remove a node. No-op if absent.
    pub fn remove_node(&mut self, node: u32) {
        if !self.contains(node) {
            return;
        }
        self.members.retain(|&n| n != node);
        self.ring.retain(|_, &mut n| n != node);
    }

    /// Owner of the given hash position, or `None` if the ring is empty.
    pub fn owner(&self, hash: u64) -> Option<u32> {
        if self.ring.is_empty() {
            return None;
        }
        self.ring
            .range(hash..)
            .next()
            .or_else(|| self.ring.iter().next())
            .map(|(_, &n)| n)
    }

    /// The first `count` *distinct* nodes clockwise from `hash` (primary
    /// first).  Used to pick secondary owners for selective replication.
    pub fn successors(&self, hash: u64, count: usize) -> Vec<u32> {
        let mut out = Vec::with_capacity(count.min(self.members.len()));
        if self.ring.is_empty() || count == 0 {
            return out;
        }
        for (_, &n) in self.ring.range(hash..).chain(self.ring.range(..hash)) {
            if !out.contains(&n) {
                out.push(n);
                if out.len() == count || out.len() == self.members.len() {
                    break;
                }
            }
        }
        out
    }

    /// Fraction of 4096 probe positions owned by each member — a cheap proxy
    /// for how balanced the ring is (used in tests and by the policy engine).
    pub fn load_distribution(&self) -> Vec<(u32, f64)> {
        const PROBES: u64 = 4096;
        let mut counts: BTreeMap<u32, u64> = self.members.iter().map(|&m| (m, 0)).collect();
        for i in 0..PROBES {
            let h = i.wrapping_mul(u64::MAX / PROBES);
            if let Some(owner) = self.owner(h) {
                *counts.entry(owner).or_insert(0) += 1;
            }
        }
        counts
            .into_iter()
            .map(|(n, c)| (n, c as f64 / PROBES as f64))
            .collect()
    }

    /// Describe which ranges of the hash space changed owner between `self`
    /// (before) and `after`.  Used to verify that only `~1/n` of the space
    /// moves on membership changes and to drive Dinomo-N's data reshuffling.
    pub fn changes_to(&self, after: &HashRing) -> Vec<OwnershipChange> {
        // Collect all boundary points from both rings.
        let mut points: Vec<u64> = self.ring.keys().chain(after.ring.keys()).copied().collect();
        points.sort_unstable();
        points.dedup();
        if points.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (i, &start) in points.iter().enumerate() {
            let end = if i + 1 < points.len() {
                points[i + 1] - 1
            } else {
                u64::MAX
            };
            let from = self.owner(start);
            let to = after.owner(start);
            if from != to {
                out.push(OwnershipChange {
                    start,
                    end,
                    from,
                    to,
                });
            }
        }
        // Also the wrap-around range [0, first_point).
        if points[0] > 0 {
            let from = self.owner(0);
            let to = after.owner(0);
            if from != to {
                out.push(OwnershipChange {
                    start: 0,
                    end: points[0] - 1,
                    from,
                    to,
                });
            }
        }
        out
    }

    /// Fraction of the hash space (approximated over the changed ranges) that
    /// changed owner between `self` and `after`.
    pub fn moved_fraction(&self, after: &HashRing) -> f64 {
        let changes = self.changes_to(after);
        let moved: u128 = changes
            .iter()
            .map(|c| u128::from(c.end - c.start) + 1)
            .sum();
        moved as f64 / (u128::from(u64::MAX) + 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::key_hash;

    #[test]
    fn empty_ring_owns_nothing() {
        let r = HashRing::new(16);
        assert!(r.is_empty());
        assert_eq!(r.owner(123), None);
        assert!(r.successors(0, 3).is_empty());
    }

    #[test]
    fn single_node_owns_everything() {
        let mut r = HashRing::new(16);
        r.add_node(7);
        for i in 0..100u64 {
            assert_eq!(r.owner(key_hash(&i.to_le_bytes())), Some(7));
        }
    }

    #[test]
    fn add_remove_is_idempotent() {
        let mut r = HashRing::new(8);
        r.add_node(1);
        r.add_node(1);
        assert_eq!(r.len(), 1);
        r.remove_node(1);
        r.remove_node(1);
        assert!(r.is_empty());
    }

    #[test]
    fn ownership_is_reasonably_balanced() {
        let mut r = HashRing::new(64);
        for n in 0..8 {
            r.add_node(n);
        }
        let dist = r.load_distribution();
        assert_eq!(dist.len(), 8);
        for (_, frac) in dist {
            assert!(frac > 0.04 && frac < 0.25, "imbalanced: {frac}");
        }
    }

    #[test]
    fn adding_a_node_moves_only_a_fraction_of_the_space() {
        let mut before = HashRing::new(64);
        for n in 0..8 {
            before.add_node(n);
        }
        let mut after = before.clone();
        after.add_node(8);
        let moved = before.moved_fraction(&after);
        // Ideally 1/9 ≈ 0.11; allow generous slack for vnode variance.
        assert!(moved > 0.02 && moved < 0.30, "moved fraction {moved}");
        // All moved ranges must move *to* the new node.
        for c in before.changes_to(&after) {
            assert_eq!(c.to, Some(8));
        }
    }

    #[test]
    fn removing_a_node_reassigns_only_its_ranges() {
        let mut before = HashRing::new(64);
        for n in 0..4 {
            before.add_node(n);
        }
        let mut after = before.clone();
        after.remove_node(2);
        for c in before.changes_to(&after) {
            assert_eq!(c.from, Some(2));
            assert_ne!(c.to, Some(2));
        }
        // Keys not owned by node 2 keep their owner.
        for i in 0..1000u64 {
            let h = key_hash(&i.to_le_bytes());
            if before.owner(h) != Some(2) {
                assert_eq!(before.owner(h), after.owner(h));
            }
        }
    }

    #[test]
    fn successors_are_distinct_and_start_with_owner() {
        let mut r = HashRing::new(32);
        for n in 0..6 {
            r.add_node(n);
        }
        let h = key_hash(b"hotkey");
        let succ = r.successors(h, 4);
        assert_eq!(succ.len(), 4);
        assert_eq!(succ[0], r.owner(h).unwrap());
        let mut dedup = succ.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), succ.len());
        // Asking for more than the membership returns all members.
        assert_eq!(r.successors(h, 100).len(), 6);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Every hash is owned by exactly one member and that member is in
        /// the membership list.
        #[test]
        fn owner_is_always_a_member(nodes in proptest::collection::btree_set(0u32..64, 1..12),
                                    hashes in proptest::collection::vec(any::<u64>(), 1..50)) {
            let mut r = HashRing::new(32);
            for &n in &nodes {
                r.add_node(n);
            }
            for h in hashes {
                let owner = r.owner(h).unwrap();
                prop_assert!(nodes.contains(&owner));
            }
        }

        /// Removing a node never changes the owner of keys it did not own.
        #[test]
        fn removal_only_affects_the_removed_node(
            nodes in proptest::collection::btree_set(0u32..32, 2..10),
            hashes in proptest::collection::vec(any::<u64>(), 1..100),
        ) {
            let nodes: Vec<u32> = nodes.into_iter().collect();
            let mut before = HashRing::new(32);
            for &n in &nodes {
                before.add_node(n);
            }
            let victim = nodes[0];
            let mut after = before.clone();
            after.remove_node(victim);
            for h in hashes {
                if before.owner(h) != Some(victim) {
                    prop_assert_eq!(before.owner(h), after.owner(h));
                }
            }
        }
    }
}
