//! Cluster-wide ownership and selective-replication metadata.

use crate::hash::key_hash;
use crate::ring::HashRing;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a KVS node.
pub type KnId = u32;
/// Identifier of a worker thread within a KVS node.
pub type ThreadId = u32;

/// The ownership metadata shared (by value, versioned) between routing nodes,
/// KVS nodes, clients and the M-node.
///
/// * The **global hash ring** maps a key to its primary-owner KN.
/// * Each KN's **local hash ring** maps a key to one of the KN's worker
///   threads.
/// * The **replication table** lists the hot keys whose ownership is
///   currently shared, and the set of KNs (primary + secondaries) serving
///   them.
///
/// Every mutation bumps `version`; components cache the table and use the
/// version to detect staleness (clients refresh from a routing node when a KN
/// rejects a request for a key range it no longer owns).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OwnershipTable {
    global: HashRing,
    locals: HashMap<KnId, HashRing>,
    threads_per_kn: u32,
    #[serde(with = "replica_map_serde")]
    replicas: HashMap<Vec<u8>, Vec<KnId>>,
    version: u64,
}

/// JSON-friendly encoding for the replica map (JSON object keys must be
/// strings, but our keys are arbitrary byte strings).
mod replica_map_serde {
    use super::KnId;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::collections::HashMap;

    pub fn serialize<S: Serializer>(
        map: &HashMap<Vec<u8>, Vec<KnId>>,
        ser: S,
    ) -> Result<S::Ok, S::Error> {
        let pairs: Vec<(&Vec<u8>, &Vec<KnId>)> = map.iter().collect();
        pairs.serialize(ser)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        de: D,
    ) -> Result<HashMap<Vec<u8>, Vec<KnId>>, D::Error> {
        let pairs: Vec<(Vec<u8>, Vec<KnId>)> = Vec::deserialize(de)?;
        Ok(pairs.into_iter().collect())
    }
}

impl OwnershipTable {
    /// Create an empty table. `vnodes` controls ring balance, and
    /// `threads_per_kn` sizes each KN's local ring.
    pub fn new(vnodes: u32, threads_per_kn: u32) -> Self {
        OwnershipTable {
            global: HashRing::new(vnodes),
            locals: HashMap::new(),
            threads_per_kn: threads_per_kn.max(1),
            replicas: HashMap::new(),
            version: 0,
        }
    }

    /// Current metadata version (bumped on every mutation).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of member KNs.
    pub fn num_kns(&self) -> usize {
        self.global.len()
    }

    /// Member KN identifiers.
    pub fn kns(&self) -> &[KnId] {
        self.global.members()
    }

    /// The global ring (read-only view).
    pub fn global_ring(&self) -> &HashRing {
        &self.global
    }

    /// Threads per KN used for local rings.
    pub fn threads_per_kn(&self) -> u32 {
        self.threads_per_kn
    }

    /// Add a KN to the cluster.
    pub fn add_kn(&mut self, kn: KnId) {
        if self.global.contains(kn) {
            return;
        }
        self.global.add_node(kn);
        let mut local = HashRing::new(16);
        for t in 0..self.threads_per_kn {
            local.add_node(t);
        }
        self.locals.insert(kn, local);
        self.version += 1;
    }

    /// Remove a KN from the cluster.  Any replica sets referencing it are
    /// re-filled from the ring's successors so each key keeps its
    /// replication factor (capped by the shrunken cluster size); keys whose
    /// primary owner disappears are re-homed by the ring.
    ///
    /// A membership change must never *silently* collapse a key back to
    /// single ownership: the storage layer keys its write protocol (owned
    /// log-merge vs. shared indirection-cell) off `is_replicated`, and a
    /// silent flip would leave the key's indirection cell installed while
    /// new writes take the owned path — the merge engine then discards
    /// those acknowledged writes as stale shared puts (caught by the
    /// `dinomo-check` history checker under combined membership +
    /// replication churn). Only a cluster shrunk below two nodes can drop
    /// a replica set here, and [`crate::OwnershipTable`]'s consumer (the
    /// KVS control plane) treats that as an explicit dereplication,
    /// dismantling the cell under the same quiescent hand-off it uses for
    /// every other protocol flip.
    pub fn remove_kn(&mut self, kn: KnId) {
        if !self.global.contains(kn) {
            return;
        }
        self.global.remove_node(kn);
        self.locals.remove(&kn);
        let keys: Vec<Vec<u8>> = self.replicas.keys().cloned().collect();
        for key in keys {
            let hash = key_hash(&key);
            let owners = self.replicas.get_mut(&key).expect("key just listed");
            let factor = owners.len();
            owners.retain(|&o| o != kn);
            let want = factor.min(self.global.len());
            if owners.len() < want {
                for candidate in self.global.successors(hash, self.global.len()) {
                    if owners.len() >= want {
                        break;
                    }
                    if !owners.contains(&candidate) {
                        owners.push(candidate);
                    }
                }
            }
        }
        self.replicas.retain(|_, owners| owners.len() > 1);
        self.version += 1;
    }

    /// The primary owner of `key`, if the cluster has any KNs.
    pub fn primary_owner(&self, key: &[u8]) -> Option<KnId> {
        self.global.owner(key_hash(key))
    }

    /// All owners of `key`: just the primary for normal keys, the replica set
    /// for selectively-replicated hot keys.
    pub fn owners(&self, key: &[u8]) -> Vec<KnId> {
        if !self.replicas.is_empty() {
            if let Some(set) = self.replicas.get(key) {
                if !set.is_empty() {
                    return set.clone();
                }
            }
        }
        self.primary_owner(key).into_iter().collect()
    }

    /// `true` if `kn` currently owns `key` (primary or replica).
    pub fn is_owner(&self, kn: KnId, key: &[u8]) -> bool {
        self.owners(key).contains(&kn)
    }

    /// The worker thread responsible for `key` within `kn`.
    pub fn thread_of(&self, kn: KnId, key: &[u8]) -> Option<ThreadId> {
        self.locals
            .get(&kn)
            .and_then(|ring| ring.owner(key_hash(key)))
    }

    /// `kn`'s local (thread) ring. Batched request paths hoist this lookup
    /// out of their per-op loop and resolve threads via
    /// [`HashRing::owner`] on a pre-computed key hash.
    pub fn local_ring(&self, kn: KnId) -> Option<&HashRing> {
        self.locals.get(&kn)
    }

    /// Replication factor of `key` (1 for normal keys).
    pub fn replication_factor(&self, key: &[u8]) -> usize {
        self.replicas.get(key).map_or(1, |s| s.len().max(1))
    }

    /// `true` if `key` is currently selectively replicated.
    ///
    /// The empty-table fast path keeps this off the per-op hashing cost for
    /// the (overwhelmingly common) case of no replicated keys at all.
    pub fn is_replicated(&self, key: &[u8]) -> bool {
        !self.replicas.is_empty() && self.replicas.contains_key(key)
    }

    /// The set of currently replicated keys.
    pub fn replicated_keys(&self) -> impl Iterator<Item = &Vec<u8>> {
        self.replicas.keys()
    }

    /// Share the ownership of `key` across `factor` KNs (primary plus
    /// `factor - 1` secondaries chosen clockwise on the ring).  Returns the
    /// new owner set.  A factor of 1 (or an empty cluster) de-replicates.
    pub fn replicate(&mut self, key: &[u8], factor: usize) -> Vec<KnId> {
        if factor <= 1 || self.global.is_empty() {
            self.dereplicate(key);
            return self.owners(key);
        }
        let owners = self
            .global
            .successors(key_hash(key), factor.min(self.global.len()));
        self.replicas.insert(key.to_vec(), owners.clone());
        self.version += 1;
        owners
    }

    /// Remove selective replication for `key` (its primary keeps ownership).
    pub fn dereplicate(&mut self, key: &[u8]) {
        if self.replicas.remove(key).is_some() {
            self.version += 1;
        }
    }

    /// Pretty name used in logs.
    pub fn describe(&self) -> String {
        format!(
            "{} KNs, {} replicated keys, version {}",
            self.num_kns(),
            self.replicas.len(),
            self.version
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with(kns: u32) -> OwnershipTable {
        let mut t = OwnershipTable::new(64, 8);
        for k in 0..kns {
            t.add_kn(k);
        }
        t
    }

    #[test]
    fn add_remove_kns_bumps_version() {
        let mut t = OwnershipTable::new(64, 4);
        assert_eq!(t.version(), 0);
        t.add_kn(0);
        t.add_kn(1);
        assert_eq!(t.version(), 2);
        assert_eq!(t.num_kns(), 2);
        t.add_kn(1); // idempotent, no bump
        assert_eq!(t.version(), 2);
        t.remove_kn(0);
        assert_eq!(t.num_kns(), 1);
        assert_eq!(t.version(), 3);
    }

    #[test]
    fn every_key_has_exactly_one_primary_owner() {
        let t = table_with(5);
        for i in 0..1000u32 {
            let key = format!("user{i:06}").into_bytes();
            let owner = t.primary_owner(&key).unwrap();
            assert!(t.kns().contains(&owner));
            assert_eq!(t.owners(&key), vec![owner]);
            assert!(t.is_owner(owner, &key));
        }
    }

    #[test]
    fn thread_assignment_is_stable_and_in_range() {
        let t = table_with(3);
        for i in 0..200u32 {
            let key = format!("user{i:06}").into_bytes();
            let kn = t.primary_owner(&key).unwrap();
            let th = t.thread_of(kn, &key).unwrap();
            assert!(th < 8);
            assert_eq!(t.thread_of(kn, &key), Some(th));
        }
    }

    #[test]
    fn replication_shares_ownership_across_kns() {
        let mut t = table_with(6);
        let key = b"hotkey".to_vec();
        assert_eq!(t.replication_factor(&key), 1);
        let owners = t.replicate(&key, 4);
        assert_eq!(owners.len(), 4);
        assert_eq!(t.replication_factor(&key), 4);
        assert!(t.is_replicated(&key));
        assert_eq!(owners[0], t.primary_owner(&key).unwrap());
        for o in &owners {
            assert!(t.is_owner(*o, &key));
        }
        // Other keys are unaffected.
        assert_eq!(
            t.owners(b"coldkey"),
            vec![t.primary_owner(b"coldkey").unwrap()]
        );
        t.dereplicate(&key);
        assert!(!t.is_replicated(&key));
        assert_eq!(t.owners(&key).len(), 1);
    }

    #[test]
    fn replication_factor_is_capped_at_cluster_size() {
        let mut t = table_with(3);
        let owners = t.replicate(b"hot", 16);
        assert_eq!(owners.len(), 3);
    }

    #[test]
    fn removing_a_kn_refills_replica_sets_to_their_factor() {
        let mut t = table_with(4);
        let owners = t.replicate(b"hot", 3);
        let victim = owners[1];
        t.remove_kn(victim);
        let new_owners = t.owners(b"hot");
        assert!(!new_owners.contains(&victim));
        // The factor survives the shrink: a successor refills the set, so
        // the key's shared-path protocol is uninterrupted.
        assert_eq!(new_owners.len(), 3);
        assert!(t.is_replicated(b"hot"));
        let distinct: std::collections::BTreeSet<_> = new_owners.iter().collect();
        assert_eq!(distinct.len(), 3, "refill must not duplicate owners");
    }

    #[test]
    fn replication_survives_repeated_shrinks_until_one_node_remains() {
        let mut t = table_with(5);
        t.replicate(b"hot", 3);
        // Shrink 5 → 2: the set tracks the survivors (capped at cluster
        // size) and the key stays replicated.
        for victim in [0u32, 1, 2] {
            t.remove_kn(victim);
            assert!(t.is_replicated(b"hot"), "lost replication at {victim}");
            let owners = t.owners(b"hot");
            assert!(owners.len() >= 2);
            assert!(owners.iter().all(|o| t.kns().contains(o)));
        }
        // Only the final shrink to a single node may collapse the set —
        // the explicit dereplication case the KVS handles with a
        // quiescent hand-off.
        t.remove_kn(3);
        assert!(!t.is_replicated(b"hot"));
        assert_eq!(t.owners(b"hot"), vec![4]);
    }

    #[test]
    fn replicate_factor_one_dereplicates() {
        let mut t = table_with(4);
        t.replicate(b"hot", 3);
        t.replicate(b"hot", 1);
        assert!(!t.is_replicated(b"hot"));
    }

    #[test]
    fn reconfiguration_moves_limited_ownership() {
        let mut t = table_with(8);
        let before: Vec<Option<KnId>> = (0..2000u32)
            .map(|i| t.primary_owner(format!("user{i:06}").as_bytes()))
            .collect();
        t.add_kn(8);
        let mut moved = 0;
        for (i, owner_before) in before.iter().enumerate() {
            let owner_after = t.primary_owner(format!("user{i:06}").as_bytes());
            if owner_after != *owner_before {
                assert_eq!(owner_after, Some(8), "keys may only move to the new KN");
                moved += 1;
            }
        }
        let frac = f64::from(moved) / 2000.0;
        assert!(frac > 0.02 && frac < 0.30, "moved fraction {frac}");
    }

    #[test]
    fn describe_mentions_cluster_shape() {
        let mut t = table_with(2);
        t.replicate(b"h", 2);
        let d = t.describe();
        assert!(d.contains("2 KNs"));
        assert!(d.contains("1 replicated"));
    }
}
