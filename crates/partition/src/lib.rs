//! # dinomo-partition — ownership partitioning metadata
//!
//! Dinomo partitions the *ownership* of keys across KVS nodes (KNs) while the
//! data itself stays shared in DPM (§3.4).  This crate implements the
//! metadata that makes that work:
//!
//! * a stable 64-bit key hash ([`key_hash`]) shared by every component,
//! * a consistent-hashing ring with virtual nodes ([`HashRing`]) used both as
//!   the **global hash ring** (key → KN) and, per KN, as the **local hash
//!   ring** (key → worker thread),
//! * the cluster-wide [`OwnershipTable`] combining both rings with the
//!   **selective-replication** metadata (which hot keys are owned by several
//!   KNs, and by whom), and
//! * [`OwnershipChange`] descriptions of what moved when the ring changes, so
//!   callers can verify that reconfiguration moves only ownership — never
//!   data.
//!
//! Routing nodes, KNs and clients all hold (cached) copies of this metadata;
//! a version counter lets stale clients detect that they must refresh.

#![warn(missing_docs)]

pub mod hash;
pub mod ownership;
pub mod ring;

pub use hash::key_hash;
pub use ownership::{KnId, OwnershipTable, ThreadId};
pub use ring::{HashRing, OwnershipChange};
