//! The `DINOMO_CHECK_SEED` override, in a file of its own: each
//! integration-test file is a separate process, and this is its **only**
//! test, so the `set_var` below cannot race a `getenv` on another thread
//! (undefined behavior on glibc). Keep it that way.

use dinomo_check::driver::CheckConfig;

#[test]
fn dinomo_check_seed_env_var_overrides_the_seed() {
    std::env::set_var("DINOMO_CHECK_SEED", "123456789");
    assert_eq!(CheckConfig::env_seed(), Some(123456789));
    std::env::set_var("DINOMO_CHECK_SEED", "not-a-number");
    assert_eq!(CheckConfig::env_seed(), None);
    std::env::remove_var("DINOMO_CHECK_SEED");
    assert_eq!(CheckConfig::env_seed(), None);
}
