//! The determinism acceptance test: two runs with the same seed produce
//! identical op sequences and churn schedules. Histories differ only in
//! thread timing (stamps, interleavings, read results), which the checker
//! tolerates by construction — so what must be bit-identical is *what was
//! issued*: each client's ordered stream of (key, action) and the
//! scenario's churn script.

use dinomo_check::driver::{churn_script, client_ops, run_scenario, CheckConfig};
use dinomo_core::trace::{Action, OpRecord};
use std::collections::BTreeMap;

/// Project a recorded history onto the per-client *issued* streams:
/// ordered (key, action-kind, written-value) triples. Read results are
/// deliberately excluded — they legitimately vary with timing.
fn issued_streams(history: &[OpRecord]) -> BTreeMap<u64, Vec<(Vec<u8>, String)>> {
    let mut streams: BTreeMap<u64, Vec<(Vec<u8>, String)>> = BTreeMap::new();
    for r in history {
        let issued = match &r.action {
            Action::Write(v) => format!("write:{}", String::from_utf8_lossy(v)),
            Action::Delete => "delete".to_string(),
            Action::Read(_) => "read".to_string(),
            // A scan's issued part is its start key (the record key) and
            // budget; the returned pairs legitimately vary with timing.
            Action::Scan { n, .. } => format!("scan:{n}"),
        };
        streams
            .entry(r.client)
            .or_default()
            .push((r.key.clone(), issued));
    }
    streams
}

#[test]
fn same_seed_runs_issue_identical_op_sequences_and_schedules() {
    // Fixed seed, deliberately NOT read from DINOMO_CHECK_SEED: nothing
    // in this process may touch the environment (getenv racing a setenv
    // elsewhere in the process is undefined behavior on glibc); the env
    // override has its own single-test process in tests/env_seed.rs.
    let mut config = CheckConfig::from_seed(77);
    config.total_ops = 600;
    config.churn_steps = 24;

    // The schedules are pure functions of the seed…
    assert_eq!(churn_script(&config), churn_script(&config));
    for client in 0..config.clients {
        assert_eq!(client_ops(&config, client), client_ops(&config, client));
    }

    // …and two *end-to-end* runs issue exactly the same per-client
    // streams, whatever the cluster did in between.
    let run_a = run_scenario(&config);
    let run_b = run_scenario(&config);
    let streams_a = issued_streams(&run_a.history);
    let streams_b = issued_streams(&run_b.history);
    assert_eq!(
        streams_a.keys().collect::<Vec<_>>(),
        streams_b.keys().collect::<Vec<_>>(),
        "same clients must record in both runs"
    );
    for (client, stream_a) in &streams_a {
        assert_eq!(
            stream_a, &streams_b[client],
            "client {client} issued a different op sequence on the second run"
        );
    }

    // The attempted churn schedules match action-for-action. Each log
    // line is "[from-to] action: outcome"; the logical-clock window and
    // the outcome (e.g. "skipped (at floor)") legitimately vary with
    // timing, so compare only the action word.
    let kinds = |log: &[String]| -> Vec<String> {
        log.iter()
            .map(|l| {
                let after_stamp = l.split_once("] ").map_or(l.as_str(), |(_, rest)| rest);
                after_stamp.split(':').next().unwrap_or("").to_string()
            })
            .collect()
    };
    assert_eq!(kinds(&run_a.churn_log), kinds(&run_b.churn_log));
}
