//! The checker's mutation acceptance test: record a history from a real
//! churning cluster run (reconfiguration + backpressure + replicated
//! keys), assert the checker accepts it, then inject violations into that
//! same history — swapped read values, a dropped acknowledged write — and
//! assert the checker rejects each mutant. A checker that cannot fail is
//! not a checker.

use dinomo_check::checker::{check_history, CheckError};
use dinomo_check::driver::{run_scenario, CheckConfig};
use dinomo_core::trace::{Action, OpRecord};

/// One recorded churn scenario, shared by every mutation below (recording
/// is the expensive part; mutations are cheap).
fn recorded_history() -> (Vec<OpRecord>, Vec<String>) {
    let mut config = CheckConfig::from_seed(CheckConfig::env_seed().unwrap_or(20260728));
    config.total_ops = 1_200;
    let run = run_scenario(&config);
    assert!(
        run.history.len() >= 1_200,
        "scenario recorded too little: {} ops",
        run.history.len()
    );
    (run.history, run.churn_log)
}

fn find_observed_read(history: &[OpRecord]) -> usize {
    history
        .iter()
        .position(|r| r.ok && matches!(&r.action, Action::Read(Some(_))))
        .expect(
            "a preloaded CRUD run must contain at least one successful read \
             of an existing value",
        )
}

#[test]
fn checker_accepts_the_real_history_and_rejects_injected_violations() {
    let (history, churn_log) = recorded_history();

    // The genuine history — concurrent clients, membership and
    // replication churn, Busy retries — must linearize.
    let stats = check_history(&history).unwrap_or_else(|e| {
        panic!("real cluster history failed the checker: {e}\nchurn: {churn_log:?}")
    });
    assert!(stats.ops > 0 && stats.keys > 1);

    // Sanity: the scenario actually churned (otherwise this test guards
    // far less than it claims). Log lines are "[from-to] action: outcome".
    let action = |l: &String| -> String {
        l.split_once("] ")
            .map_or(l.as_str(), |(_, rest)| rest)
            .to_string()
    };
    assert!(
        churn_log.iter().any(|l| action(l).starts_with("add: kn"))
            || churn_log.iter().any(|l| action(l).starts_with("fail: kn"))
            || churn_log
                .iter()
                .any(|l| action(l).starts_with("remove: kn")),
        "no membership churn ran: {churn_log:?}"
    );
    assert!(
        churn_log
            .iter()
            .any(|l| action(l).starts_with("replicate: key")),
        "no replication churn ran: {churn_log:?}"
    );

    // --- Mutation 1: a read observes a value nobody ever wrote.
    let mut mutant = history.clone();
    let read_idx = find_observed_read(&mutant);
    mutant[read_idx].action = Action::Read(Some(b"<injected-never-written>".to_vec()));
    match check_history(&mutant) {
        Err(CheckError::Violation(v)) => assert_eq!(v.key, mutant[read_idx].key),
        other => panic!("unobserved-value mutant must be rejected, got {other:?}"),
    }

    // --- Mutation 2: drop an acknowledged write that a read observed
    // (an acked-write loss the hand-rolled probes could miss).
    let mut mutant = history.clone();
    let read_idx = find_observed_read(&mutant);
    let (key, observed) = match &mutant[read_idx].action {
        Action::Read(Some(v)) => (mutant[read_idx].key.clone(), v.clone()),
        _ => unreachable!(),
    };
    let write_idx = mutant
        .iter()
        .position(|r| {
            r.ok && r.key == key && matches!(&r.action, Action::Write(v) if *v == observed)
        })
        .expect("the observed value must come from a recorded write");
    mutant.remove(write_idx);
    match check_history(&mutant) {
        Err(CheckError::Violation(v)) => assert_eq!(v.key, key),
        other => panic!("dropped-acked-write mutant must be rejected, got {other:?}"),
    }

    // --- Mutation 3: swap the observed values of two reads of different
    // keys (a positional reply mix-up in the batched path).
    let mut mutant = history.clone();
    let first = find_observed_read(&mutant);
    let second = mutant
        .iter()
        .enumerate()
        .skip(first + 1)
        .find(|(_, r)| {
            r.ok && r.key != mutant[first].key && matches!(&r.action, Action::Read(Some(_)))
        })
        .map(|(i, _)| i)
        .expect("a CRUD run reads more than one key");
    let tmp = mutant[first].action.clone();
    mutant[first].action = mutant[second].action.clone();
    mutant[second].action = tmp;
    assert!(
        check_history(&mutant).is_err(),
        "cross-key swapped read values must be rejected"
    );
}
