//! The seeded generative stress driver.
//!
//! A scenario is a **pure function of its seed**: the op stream of every
//! client ([`client_ops`]) and the churn schedule ([`churn_script`]) are
//! derived deterministically from `CheckConfig::seed`, so a failure found
//! by a nightly random sweep reproduces locally from
//! `DINOMO_CHECK_SEED=<n>` alone — only thread *timing* differs between
//! runs, and the linearizability checker tolerates timing by construction
//! (it checks the recorded real-time partial order, not a total order).
//!
//! One scenario run:
//!
//! * builds a real cluster with per-op write flushing (`write_batch_ops =
//!   1`, so an acknowledged write is durable — the guarantee the checker
//!   verifies across fail-stop churn) and deliberately tiny shard-worker
//!   queues, so `Busy` backpressure and its client retries are part of
//!   every history;
//! * optionally preloads the key space through a recording client;
//! * runs `clients` concurrent threads, each executing its deterministic
//!   CRUD batches (skewed keys via [`dinomo_workload::WorkloadGenerator`],
//!   globally-unique write values so the checker can pin every read to its
//!   write) through the batched `execute` path with history recording on;
//! * replays a deterministic churn script concurrently:
//!   `add_kn`/`remove_kn`/`fail_kn` plus selective-replication flips on
//!   the hottest keys;
//! * drains the merged history and hands it to the checker.
//!
//! Shrinking is built into replay: rerun the same seed with a reduced
//! `total_ops` budget (see the `lincheck` binary's `--replay`), which
//! preserves the op-stream *prefix* — the generators are streams, so a
//! smaller budget is a prefix of the same schedule.

use crate::checker::{check_history_with, CheckError, CheckStats, CheckerConfig};
use dinomo_core::trace::{Action, HistoryRecorder, OpRecord};
use dinomo_core::{GcConfig, Kvs, KvsConfig, KvsError, Op, Reply};
use dinomo_workload::{
    key_for, KeyDistribution, Operation, WorkloadConfig, WorkloadGenerator, WorkloadMix,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Configuration of one generative check scenario. Everything except
/// `seed` has a sensible default via [`CheckConfig::from_seed`].
#[derive(Debug, Clone, Copy)]
pub struct CheckConfig {
    /// The master seed every deterministic choice derives from.
    pub seed: u64,
    /// Concurrent client threads.
    pub clients: usize,
    /// Total operation budget, split evenly across clients. Replaying a
    /// failing seed with a smaller budget shrinks the scenario (the op
    /// streams are prefixes of the larger run's).
    pub total_ops: usize,
    /// Ops per `execute` call (the batched client path).
    pub batch_size: usize,
    /// Loaded key-space size (small, so keys are contended).
    pub keys: u64,
    /// KVS nodes at start-up.
    pub initial_kns: usize,
    /// Replay `add_kn`/`remove_kn`/`fail_kn` churn during the run.
    pub membership_churn: bool,
    /// Flip selective replication on/off on hot keys during the run.
    pub replication_churn: bool,
    /// Length of the churn script (actions, including pauses).
    pub churn_steps: usize,
    /// Shard-worker queue depth; tiny values force `Busy` retries into
    /// every history.
    pub executor_queue_depth: usize,
    /// Insert the whole key space (recorded) before the clients start.
    pub preload: bool,
    /// Run the DPM log-cleaning compactor (background thread, aggressive
    /// knobs) during the scenario, so entry relocation races the clients
    /// *and* the replicate/dereplicate/membership churn.
    pub compactor: bool,
    /// Mix scans into the client streams (the `CRUD_SCAN` mix instead of
    /// `CRUD`), so range reads race every write, delete, hand-off and
    /// relocation. The checker decomposes each scan into per-key reads.
    pub scans: bool,
    /// Mix crash injection into the churn script: KN fail-stop +
    /// re-admission, and whole-DPM power failures aimed (via failpoints)
    /// at the nastiest windows — mid-compaction, mid-hand-off,
    /// mid-cell-swing — each followed by the full
    /// `recover()`/ordered-rebuild/invariant-walk sequence
    /// ([`Kvs::crash_dpm_and_recover`]). Turns the pool's
    /// persistence tracking on so `simulate_crash` actually drops
    /// unpersisted lines.
    pub crashes: bool,
    /// Checker budget.
    pub checker: CheckerConfig,
}

impl CheckConfig {
    /// The default scenario for a seed: 3 clients, 3 000 ops of CRUD over
    /// 48 skewed keys in batches of 8, depth-2 worker queues, membership
    /// and replication churn on.
    pub fn from_seed(seed: u64) -> Self {
        CheckConfig {
            seed,
            clients: 3,
            total_ops: 3_000,
            batch_size: 8,
            keys: 48,
            initial_kns: 2,
            membership_churn: true,
            replication_churn: true,
            churn_steps: 80,
            executor_queue_depth: 2,
            preload: true,
            compactor: false,
            scans: false,
            crashes: false,
            checker: CheckerConfig::default(),
        }
    }

    /// The seed override from `DINOMO_CHECK_SEED`, if set — the reproduce
    /// knob printed by failing sweeps.
    pub fn env_seed() -> Option<u64> {
        std::env::var("DINOMO_CHECK_SEED").ok()?.parse().ok()
    }
}

/// One step of the churn schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnAction {
    /// `add_kn` (skipped above 5 live nodes).
    AddKn,
    /// Planned scale-in of the oldest node (skipped at ≤ 2 nodes).
    RemoveOldestKn,
    /// Fail-stop the newest node (skipped at ≤ 2 nodes).
    FailNewestKn,
    /// Replicate loaded key `key_id` across `factor` owners.
    ReplicateKey(u64, usize),
    /// Collapse loaded key `key_id` back to one owner.
    DereplicateKey(u64),
    /// Sleep for the given milliseconds, letting client traffic run
    /// against the current configuration.
    Pause(u64),
    /// Fail-stop the newest node and immediately re-admit a replacement
    /// (skipped at ≤ 2 nodes): the failure-recovery protocol plus a
    /// hand-off, back to back, under live traffic.
    CrashKn,
    /// Simulate a DPM power failure inside the given window, then run the
    /// full crash/recover sequence ([`Kvs::crash_dpm_and_recover`]).
    CrashDpm(CrashWindow),
}

/// Where a [`ChurnAction::CrashDpm`] lands, driven by the DPM failpoints
/// (see `dinomo_dpm::failpoint`). Each non-quiescent window arms its
/// point, drives the matching control-plane operation until it fires, and
/// crashes with the operation abandoned half-way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashWindow {
    /// Mid-compaction: at least one entry relocated and swung, the rest
    /// of the victim untouched (`gc.after-relocate`).
    MidCompaction,
    /// Mid-hand-off: the §3.5 protocol aborted after close/drain/flush/
    /// merge but before the table flip (`handoff.before-flip`), leaving
    /// the moving ranges closed.
    MidHandoff,
    /// Between publishing loaded key `key_id`'s indirection cell and
    /// swinging the index onto it (`cell.before-swing`).
    MidCellSwing(u64),
    /// No failpoint: the crash lands between operations (still drops any
    /// unpersisted pool lines and the ordered index).
    Quiescent,
}

/// SplitMix64 — decorrelates the per-purpose seeds derived from the
/// master seed.
fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The deterministic churn schedule for a scenario — a pure function of
/// the configuration (no clocks, no entropy). Replication actions favour
/// low key ids, which are the hottest ranks of the scrambled-Zipf key
/// chooser's head.
pub fn churn_script(config: &CheckConfig) -> Vec<ChurnAction> {
    let mut rng = StdRng::seed_from_u64(mix(config.seed, 0xc4a6));
    let mut script = Vec::with_capacity(config.churn_steps);
    let mut replicated: Vec<u64> = Vec::new();
    // Widening the roll range only when crashes are on keeps every
    // pre-existing seed's script bit-for-bit identical with crashes off.
    let roll_range = if config.crashes { 13 } else { 10 };
    let mut crash_counter = 0u64;
    for _ in 0..config.churn_steps {
        let roll = rng.gen_range(0u32..roll_range);
        let action = match roll {
            0 | 1 if config.membership_churn => ChurnAction::AddKn,
            2 if config.membership_churn => ChurnAction::RemoveOldestKn,
            3 if config.membership_churn => ChurnAction::FailNewestKn,
            4 | 5 if config.replication_churn => {
                let key_id = rng.gen_range(0..config.keys.clamp(1, 8));
                let factor = rng.gen_range(2usize..4);
                if !replicated.contains(&key_id) {
                    replicated.push(key_id);
                }
                ChurnAction::ReplicateKey(key_id, factor)
            }
            6 if config.replication_churn && !replicated.is_empty() => {
                let idx = rng.gen_range(0..replicated.len());
                ChurnAction::DereplicateKey(replicated.swap_remove(idx))
            }
            10 => ChurnAction::CrashKn,
            11 | 12 => {
                // Cycle through the windows so every script with a few
                // DPM crashes visits all of them (a uniform draw could
                // miss one at small churn-step counts).
                let window = match crash_counter % 4 {
                    0 => CrashWindow::MidCompaction,
                    1 => CrashWindow::MidHandoff,
                    2 => CrashWindow::MidCellSwing(rng.gen_range(0..config.keys.clamp(1, 8))),
                    _ => CrashWindow::Quiescent,
                };
                crash_counter += 1;
                ChurnAction::CrashDpm(window)
            }
            _ => ChurnAction::Pause(rng.gen_range(1u64..4)),
        };
        script.push(action);
    }
    script
}

/// The deterministic op stream of one client — a pure function of
/// `(config.seed, client)`. Keys and op kinds come from a CRUD
/// [`WorkloadGenerator`] (skewed, delete/re-insert churn included); write
/// values are replaced with globally-unique `c<client>-<index>` payloads
/// so the checker can attribute every observed value to exactly one
/// write.
pub fn client_ops(config: &CheckConfig, client: usize) -> Vec<Op> {
    let per_client = (config.total_ops / config.clients.max(1)).max(1);
    let mut generator = WorkloadGenerator::new(WorkloadConfig {
        num_keys: config.keys.max(1),
        key_len: 8,
        value_len: 8,
        mix: if config.scans {
            WorkloadMix::CRUD_SCAN
        } else {
            WorkloadMix::CRUD
        },
        distribution: KeyDistribution::MODERATE_SKEW,
        seed: mix(config.seed, client as u64 + 1),
        // Short ranges keep the per-scan read expansion (and thus the
        // checker's per-key projections) small while still spanning
        // multiple owners on every scan.
        max_scan_len: 4,
    });
    (0..per_client)
        .map(|i| match generator.next_op() {
            Operation::Read(key) => Op::lookup(key),
            Operation::Update(key, _) => Op::update(key, format!("c{client}-{i}")),
            Operation::Insert(key, _) => Op::insert(key, format!("c{client}-{i}")),
            Operation::Delete(key) => Op::delete(key),
            Operation::Scan(start, n) => Op::scan(start, n),
        })
        .collect()
}

/// What a scenario run produced, before/after checking.
#[derive(Debug)]
pub struct ScenarioRun {
    /// The merged, invocation-sorted history.
    pub history: Vec<OpRecord>,
    /// Churn actions actually applied (with skip notes), in order.
    pub churn_log: Vec<String>,
    /// Error replies the clients saw (retries exhausted under churn —
    /// recorded as failed ops, tolerated by the checker).
    pub error_replies: usize,
    /// `Busy` sub-batch rejections the tiny queues produced cluster-wide.
    pub busy_rejections: u64,
    /// Victim segments the compactor emptied and freed during the run (0
    /// unless `CheckConfig::compactor` is set).
    pub segments_compacted: u64,
    /// Live entries the compactor relocated during the run.
    pub entries_relocated: u64,
    /// Successful scans in the history (0 unless `CheckConfig::scans`).
    pub scan_ops: usize,
    /// Live KVS nodes at the end.
    pub final_kns: usize,
    /// KN fail-stop + re-admit crashes applied (0 unless
    /// `CheckConfig::crashes`).
    pub kn_crashes: usize,
    /// DPM power-failure + recovery sequences applied.
    pub dpm_crashes: usize,
    /// DPM crashes that landed inside a compaction pass (the
    /// `gc.after-relocate` failpoint fired).
    pub crashes_in_compaction: u64,
    /// DPM crashes that landed mid-hand-off (`handoff.before-flip`).
    pub crashes_in_handoff: u64,
    /// DPM crashes that landed between a cell publish and its index swing
    /// (`cell.before-swing`).
    pub crashes_in_cell_swing: u64,
}

/// A failed check, with everything needed to reproduce and report it.
#[derive(Debug)]
pub struct CheckFailure {
    /// The scenario seed (reproduce with `DINOMO_CHECK_SEED=<seed>`).
    pub seed: u64,
    /// What the checker found.
    pub error: CheckError,
    /// The full history, for artifact dumps.
    pub history: Vec<OpRecord>,
    /// The applied churn actions with their logical-clock windows.
    pub churn_log: Vec<String>,
}

impl std::fmt::Display for CheckFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} — reproduce with DINOMO_CHECK_SEED={}",
            self.error, self.seed
        )
    }
}

/// Run one scenario and return its recorded history (unchecked).
pub fn run_scenario(config: &CheckConfig) -> ScenarioRun {
    let mut kvs_config = KvsConfig {
        initial_kns: config.initial_kns.max(1),
        // Ack ⇒ flushed: the acknowledged-write guarantee the checker
        // verifies must hold across fail-stop churn, which loses DRAM.
        write_batch_ops: 1,
        threads_per_kn: 2,
        executor_queue_depth: config.executor_queue_depth,
        // Small sub-batches still take the worker queues, so backpressure
        // and handoff are part of every scenario.
        executor_min_sub_batch: 2,
        ..KvsConfig::small_for_tests()
    };
    if config.compactor {
        // Aggressive compaction on tiny segments: relocations race every
        // client read/write and every control-plane hand-off, so the
        // checker verifies the compactor's index-CAS/cell-pin protocol
        // under the worst interleavings. Small segments make victims
        // plentiful within a short scenario.
        kvs_config.dpm.segment_bytes = 4 << 10;
        kvs_config.dpm.gc = GcConfig::aggressive();
    }
    if config.crashes {
        // `simulate_crash` is a no-op unless the pool tracks persistence.
        kvs_config.dpm.pool.track_persistence = true;
        // Small segments keep compaction victims plentiful for the
        // mid-compaction crash window...
        kvs_config.dpm.segment_bytes = 4 << 10;
        if !config.compactor {
            // ...and without the background compactor, aggressive victim
            // selection lets the crash arm drive passes synchronously
            // through `compact_once`.
            kvs_config.dpm.gc = GcConfig {
                background: false,
                ..GcConfig::aggressive()
            };
        }
    }
    let kvs = Kvs::new(kvs_config).expect("cluster construction");
    let recorder = HistoryRecorder::new();

    if config.preload {
        let loader = kvs.client().with_recorder(recorder.handle(u64::MAX));
        let pairs: Vec<(Vec<u8>, String)> = (0..config.keys)
            .map(|id| (key_for(id, 8), format!("p{id}")))
            .collect();
        for chunk in pairs.chunks(32) {
            let replies = loader.execute(
                chunk
                    .iter()
                    .map(|(k, v)| Op::insert(k.clone(), v.as_str()))
                    .collect(),
            );
            assert!(
                replies.iter().all(Reply::is_ok),
                "preload failed: {replies:?}"
            );
        }
    }

    // The churn thread always replays the *entire* script — the applied
    // action sequence is identical on every run of a seed (only the guard
    // skips, which depend on live node counts, can differ with thread
    // timing). Clients that finish early just leave the tail of the
    // script churning an idle cluster. Each log line carries the
    // logical-clock window the action spanned, so failure artifacts line
    // churn up against op timestamps.
    let churn_thread = {
        let kvs = kvs.clone();
        let script = churn_script(config);
        let clock = recorder.handle(u64::MAX - 1);
        std::thread::spawn(move || {
            script
                .into_iter()
                .map(|action| {
                    let from = clock.invoke();
                    let outcome = apply_churn(&kvs, action);
                    let to = clock.invoke();
                    format!("[{from}-{to}] {outcome}")
                })
                .collect::<Vec<String>>()
        })
    };

    let clients: Vec<_> = (0..config.clients.max(1))
        .map(|c| {
            let kvs = kvs.clone();
            let handle = recorder.handle(c as u64);
            let ops = client_ops(config, c);
            let batch = config.batch_size.max(1);
            std::thread::spawn(move || {
                let client = kvs.client().with_recorder(handle);
                let mut errors = 0usize;
                for chunk in ops.chunks(batch) {
                    let replies = client.execute(chunk.to_vec());
                    errors += replies.iter().filter(|r| !r.is_ok()).count();
                }
                errors
            })
        })
        .collect();

    let error_replies = clients.into_iter().map(|h| h.join().unwrap()).sum();
    let churn_log = churn_thread.join().unwrap();

    // Whatever the scenario did to it, the ordered index must satisfy its
    // structural invariants once the cluster quiesces (the walker needs a
    // quiescent point; clients and churn have joined).
    let _ = kvs.flush_all();
    if let Err(e) = kvs.dpm().check_ordered() {
        panic!("ordered-index invariants violated after scenario: {e}");
    }

    let stats = kvs.stats();
    let history = recorder.drain();
    let scan_ops = history
        .iter()
        .filter(|r| r.ok && matches!(r.action, Action::Scan { .. }))
        .count();
    let failpoints = kvs.dpm().failpoints();
    ScenarioRun {
        history,
        error_replies,
        busy_rejections: stats.kns.iter().map(|k| k.busy_rejections).sum(),
        segments_compacted: stats.dpm.segments_compacted,
        entries_relocated: stats.dpm.entries_relocated,
        scan_ops,
        final_kns: kvs.num_kns(),
        kn_crashes: churn_log
            .iter()
            .filter(|l| l.contains("crash-kn: kn"))
            .count(),
        dpm_crashes: churn_log
            .iter()
            .filter(|l| l.contains("crash-dpm") && l.contains("recovered="))
            .count(),
        crashes_in_compaction: failpoints.fired("gc.after-relocate"),
        crashes_in_handoff: failpoints.fired("handoff.before-flip"),
        crashes_in_cell_swing: failpoints.fired("cell.before-swing"),
        churn_log,
    }
}

/// Apply one churn action against a live cluster, with the safety guards
/// (never below 2 nodes, never above 5) that keep random scripts from
/// starving or flooding the cluster.
fn apply_churn(kvs: &Kvs, action: ChurnAction) -> String {
    match action {
        ChurnAction::AddKn => {
            if kvs.num_kns() >= 5 {
                return "add: skipped (at cap)".into();
            }
            match kvs.add_kn() {
                Ok(id) => format!("add: kn {id}"),
                Err(e) => format!("add: failed ({e})"),
            }
        }
        ChurnAction::RemoveOldestKn => {
            if kvs.num_kns() <= 2 {
                return "remove: skipped (at floor)".into();
            }
            let victim = kvs.kn_ids()[0];
            match kvs.remove_kn(victim) {
                Ok(()) => format!("remove: kn {victim}"),
                Err(e) => format!("remove: kn {victim} failed ({e})"),
            }
        }
        ChurnAction::FailNewestKn => {
            if kvs.num_kns() <= 2 {
                return "fail: skipped (at floor)".into();
            }
            let Some(&victim) = kvs.kn_ids().last() else {
                return "fail: skipped (no nodes)".into();
            };
            match kvs.fail_kn(victim) {
                Ok(()) => format!("fail: kn {victim}"),
                Err(e) => format!("fail: kn {victim} failed ({e})"),
            }
        }
        ChurnAction::ReplicateKey(key_id, factor) => {
            let key = key_for(key_id, 8);
            match kvs.replicate_key(&key, factor) {
                Ok(owners) => format!("replicate: key {key_id} x{}", owners.len()),
                Err(e) => format!("replicate: key {key_id} failed ({e})"),
            }
        }
        ChurnAction::DereplicateKey(key_id) => {
            let key = key_for(key_id, 8);
            match kvs.dereplicate_key(&key) {
                Ok(()) => format!("dereplicate: key {key_id}"),
                Err(e) => format!("dereplicate: key {key_id} failed ({e})"),
            }
        }
        ChurnAction::Pause(ms) => {
            std::thread::sleep(Duration::from_millis(ms));
            format!("pause: {ms}ms")
        }
        ChurnAction::CrashKn => {
            if kvs.num_kns() <= 2 {
                return "crash-kn: skipped (at floor)".into();
            }
            let Some(&victim) = kvs.kn_ids().last() else {
                return "crash-kn: skipped (no nodes)".into();
            };
            if let Err(e) = kvs.fail_kn(victim) {
                return format!("crash-kn: kn {victim} fail failed ({e})");
            }
            // Re-admit a replacement immediately: failure recovery and a
            // §3.5 hand-off back to back, under live traffic.
            match kvs.add_kn() {
                Ok(id) => format!("crash-kn: kn {victim} crashed, kn {id} admitted"),
                Err(e) => format!("crash-kn: kn {victim} crashed, re-admit failed ({e})"),
            }
        }
        ChurnAction::CrashDpm(window) => {
            let fp = kvs.dpm().failpoints();
            // Arm the window's failpoint, drive the operation that hits
            // it, then always disarm: the trigger can miss (no compaction
            // victim, key already replicated, ...) and a stale armed
            // point must not fire at some unrelated later instant. A
            // missed window degrades to a quiescent crash — the crash
            // still happens, just between operations.
            let note = match window {
                CrashWindow::MidCompaction => {
                    // Fire-detection by counter delta, not by our own
                    // pass's report: with the background compactor on,
                    // *its* pass may trip the armed point instead of the
                    // synchronous one, and that crash lands mid-compaction
                    // all the same. Retry a few passes — a victim with a
                    // relocatable live entry may only appear once the
                    // clients overwrite a bit more — but never spin long.
                    let before = fp.fired("gc.after-relocate");
                    fp.arm("gc.after-relocate", 1);
                    for _ in 0..8 {
                        if fp.fired("gc.after-relocate") > before {
                            break;
                        }
                        let _ = kvs.dpm().compact_once();
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    fp.disarm("gc.after-relocate");
                    if fp.fired("gc.after-relocate") > before {
                        "mid-compaction".to_string()
                    } else {
                        "mid-compaction missed (no victim), quiescent".to_string()
                    }
                }
                CrashWindow::MidHandoff => {
                    let before = fp.fired("handoff.before-flip");
                    fp.arm("handoff.before-flip", 1);
                    let result = kvs.add_kn();
                    fp.disarm("handoff.before-flip");
                    if fp.fired("handoff.before-flip") > before {
                        debug_assert!(matches!(result, Err(KvsError::Pmem(_))));
                        "mid-handoff".to_string()
                    } else {
                        "mid-handoff missed, quiescent".to_string()
                    }
                }
                CrashWindow::MidCellSwing(key_id) => {
                    let key = key_for(key_id, 8);
                    // An already-replicated key has its cell installed and
                    // publishes no new one — collapse it first so
                    // `replicate_key` must run the publish-then-swing
                    // sequence the armed point interrupts. (Harmless error
                    // if the key was not replicated.)
                    let _ = kvs.dereplicate_key(&key);
                    let before = fp.fired("cell.before-swing");
                    fp.arm("cell.before-swing", 1);
                    let result = kvs.replicate_key(&key, 2);
                    fp.disarm("cell.before-swing");
                    if fp.fired("cell.before-swing") > before {
                        debug_assert!(matches!(result, Err(KvsError::Pmem(_))));
                        format!("mid-cell-swing key {key_id}")
                    } else {
                        format!("mid-cell-swing key {key_id} missed, quiescent")
                    }
                }
                CrashWindow::Quiescent => "quiescent".to_string(),
            };
            // The crash/recover sequence itself. A failed recovery —
            // including the quiescent post-recovery invariant walk — is a
            // correctness bug, not a tolerated outcome: panic, which
            // propagates through the churn-thread join and fails the run.
            match kvs.crash_dpm_and_recover() {
                Ok(r) => format!(
                    "crash-dpm({note}): recovered={} torn={} rebuilt={} dropped={}",
                    r.recovery.entries_recovered,
                    r.recovery.torn_entries,
                    r.ordered_rebuilt,
                    r.buffered_discarded,
                ),
                Err(e) => panic!("crash-dpm({note}): recovery failed: {e}"),
            }
        }
    }
}

/// Aggregate report of a passed scenario.
#[derive(Debug)]
pub struct ScenarioReport {
    /// Checker statistics.
    pub stats: CheckStats,
    /// The run the history came from.
    pub run: ScenarioRun,
}

/// Run a scenario and check its history. `Err` carries the seed, the
/// violation and the full history for reporting/artifacts.
pub fn run_and_check(config: &CheckConfig) -> Result<ScenarioReport, Box<CheckFailure>> {
    let run = run_scenario(config);
    match check_history_with(&run.history, &config.checker) {
        Ok(stats) => Ok(ScenarioReport { stats, run }),
        Err(error) => Err(Box::new(CheckFailure {
            seed: config.seed,
            error,
            history: run.history,
            churn_log: run.churn_log,
        })),
    }
}

/// Render a history as the line format the sweep writes into failure
/// artifacts: `client inv ret ok kind key [value]`, one op per line.
pub fn render_history(history: &[OpRecord]) -> String {
    let mut out = String::with_capacity(history.len() * 48);
    for r in history {
        let (kind, value) = match &r.action {
            Action::Write(v) => ("write", Some(v)),
            Action::Delete => ("delete", None),
            Action::Read(Some(v)) => ("read", Some(v)),
            Action::Read(None) => ("read-none", None),
            Action::Scan { .. } => ("scan", None),
        };
        out.push_str(&format!(
            "client={} inv={} ret={} ok={} {} key={:?}",
            r.client,
            r.invoked_at,
            r.returned_at,
            r.ok,
            kind,
            String::from_utf8_lossy(&r.key),
        ));
        if let Some(v) = value {
            out.push_str(&format!(" value={:?}", String::from_utf8_lossy(v)));
        }
        if let Action::Scan { n, pairs } = &r.action {
            out.push_str(&format!(" n={n} pairs=["));
            for (i, (k, _)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{:?}", String::from_utf8_lossy(k)));
            }
            out.push(']');
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_pure_functions_of_the_seed() {
        let config = CheckConfig::from_seed(7);
        assert_eq!(churn_script(&config), churn_script(&config));
        assert_eq!(client_ops(&config, 0), client_ops(&config, 0));
        assert_ne!(
            client_ops(&config, 0),
            client_ops(&config, 1),
            "clients must have decorrelated streams"
        );
        let other = CheckConfig::from_seed(8);
        assert_ne!(churn_script(&config), churn_script(&other));
        assert_ne!(client_ops(&config, 0), client_ops(&other, 0));
    }

    #[test]
    fn shrinking_budget_is_a_prefix_of_the_full_stream() {
        let full = CheckConfig::from_seed(11);
        let mut small = full;
        small.total_ops = full.total_ops / 4;
        let full_ops = client_ops(&full, 2);
        let small_ops = client_ops(&small, 2);
        assert_eq!(&full_ops[..small_ops.len()], &small_ops[..]);
    }

    #[test]
    fn churn_script_respects_feature_flags() {
        let mut config = CheckConfig::from_seed(3);
        config.membership_churn = false;
        config.replication_churn = false;
        for action in churn_script(&config) {
            assert!(
                matches!(action, ChurnAction::Pause(_)),
                "churn disabled but script contains {action:?}"
            );
        }
        config.replication_churn = true;
        assert!(churn_script(&config)
            .iter()
            .any(|a| matches!(a, ChurnAction::ReplicateKey(..))));
    }

    #[test]
    fn compactor_churn_scenario_passes_the_checker() {
        // The compactor's background thread relocates entries while three
        // clients run CRUD batches and the churn thread flips replication
        // and membership — the full race surface of the relocation CAS,
        // the cell-pin rule and the shortcut-cache invalidation. The
        // recorded history must stay linearizable, and the compactor must
        // actually have reclaimed something (small segments + skewed CRUD
        // guarantee victims).
        let mut config = CheckConfig::from_seed(CheckConfig::env_seed().unwrap_or(17));
        config.total_ops = 2_000;
        config.compactor = true;
        let report = run_and_check(&config).unwrap_or_else(|f| panic!("{f}"));
        assert!(
            report.run.segments_compacted > 0,
            "scenario must exercise the compactor: {:?} segments compacted, \
             {:?} entries relocated",
            report.run.segments_compacted,
            report.run.entries_relocated
        );
    }

    #[test]
    fn scan_churn_gc_scenario_passes_the_checker() {
        // Scans race CRUD writes, membership/replication churn and the
        // compactor's relocations; every successful scan decomposes into
        // snapshot-claims the checker verifies per key, and the ordered
        // index must come out of it structurally intact (run_scenario
        // walks it at the end).
        let mut config = CheckConfig::from_seed(CheckConfig::env_seed().unwrap_or(29));
        config.total_ops = 2_000;
        config.scans = true;
        config.compactor = true;
        let report = run_and_check(&config).unwrap_or_else(|f| panic!("{f}"));
        assert!(
            report.run.scan_ops > 0,
            "scenario must exercise scans: {} in history",
            report.run.scan_ops
        );
    }

    #[test]
    fn scan_streams_are_deterministic() {
        let mut config = CheckConfig::from_seed(19);
        config.scans = true;
        assert_eq!(client_ops(&config, 0), client_ops(&config, 0));
        let has_scan = client_ops(&config, 0).iter().any(dinomo_core::Op::is_scan);
        assert!(has_scan, "CRUD_SCAN streams must contain scans");
    }

    #[test]
    fn crash_script_is_deterministic_and_flag_gated() {
        let mut config = CheckConfig::from_seed(23);
        assert!(
            !churn_script(&config)
                .iter()
                .any(|a| matches!(a, ChurnAction::CrashKn | ChurnAction::CrashDpm(_))),
            "crashes off must keep the script crash-free"
        );
        config.crashes = true;
        let script = churn_script(&config);
        assert_eq!(script, churn_script(&config), "crash schedule must replay");
        assert!(script.iter().any(|a| matches!(a, ChurnAction::CrashKn)));
        let windows: Vec<CrashWindow> = script
            .iter()
            .filter_map(|a| match a {
                ChurnAction::CrashDpm(w) => Some(*w),
                _ => None,
            })
            .collect();
        // The window cycle guarantees full coverage once a script draws
        // four DPM crashes.
        assert!(
            windows.len() >= 4,
            "script drew {} DPM crashes",
            windows.len()
        );
        assert!(windows.contains(&CrashWindow::MidCompaction));
        assert!(windows.contains(&CrashWindow::MidHandoff));
        assert!(windows
            .iter()
            .any(|w| matches!(w, CrashWindow::MidCellSwing(_))));
        assert!(windows.contains(&CrashWindow::Quiescent));
    }

    #[test]
    fn crash_churn_scenario_passes_the_checker() {
        // The full campaign: KN fail-stop + re-admission and whole-DPM
        // power failures (aimed at compaction, hand-off and cell-swing
        // windows via failpoints) interleave with three clients' CRUD
        // batches and replication churn. Acked writes must survive every
        // crash — the per-key checker rejects any history where a
        // recovered read misses one — and every recovery ends with the
        // quiescent ordered-index invariant walk inside
        // `crash_dpm_and_recover`.
        let mut config = CheckConfig::from_seed(CheckConfig::env_seed().unwrap_or(41));
        config.total_ops = 2_000;
        config.crashes = true;
        config.compactor = true;
        let report = run_and_check(&config).unwrap_or_else(|f| panic!("{f}"));
        assert!(
            report.run.dpm_crashes > 0,
            "scenario must exercise DPM crashes: churn log {:?}",
            report.run.churn_log
        );
        assert!(
            report.run.kn_crashes > 0,
            "scenario must exercise KN crashes: churn log {:?}",
            report.run.churn_log
        );
    }

    #[test]
    fn quiet_scenario_records_and_passes() {
        // No churn, tiny budget: a fast end-to-end sanity pass of
        // recorder + driver + checker.
        let mut config = CheckConfig::from_seed(CheckConfig::env_seed().unwrap_or(5));
        config.total_ops = 300;
        config.membership_churn = false;
        config.replication_churn = false;
        config.churn_steps = 0;
        let report = run_and_check(&config).unwrap_or_else(|f| panic!("{f}"));
        assert!(report.run.history.len() >= 300 + config.keys as usize);
        assert!(report.stats.keys as u64 >= config.keys);
    }
}
