//! `lincheck` — run seeded linearizability-check scenarios from the
//! command line (the CI entry point of the `dinomo-check` crate).
//!
//! ```text
//! lincheck --seed 42 --ops 10000            # one fixed-seed scenario
//! lincheck --sweep 6 --ops 20000            # N random seeds (nightly)
//! lincheck --replay 1234567                 # reproduce + shrink a seed
//! DINOMO_CHECK_SEED=1234567 lincheck        # same, via the env knob
//! ```
//!
//! Options: `--ops N` (total op budget), `--clients N`, `--no-churn`
//! (disable membership + replication churn), `--queue-depth N`, `--gc`
//! (run the DPM log-cleaning compactor — aggressive knobs on tiny
//! segments — underneath the scenario), `--scan` (mix range scans into
//! the client streams; the checker decomposes each scan into per-key
//! snapshot reads), `--crash` (mix seeded crash injection into the
//! churn: KN fail-stop + re-admission and whole-DPM power failures
//! aimed at the mid-compaction / mid-hand-off / mid-cell-swing windows,
//! each followed by full recovery; the crash schedule is a pure
//! function of the seed, so `DINOMO_CHECK_SEED=<seed>` reproduces the
//! exact same crash instants).
//!
//! On failure the process exits non-zero after writing the failing seed
//! and the full history to `target/check-results/` (uploaded as a CI
//! artifact by the nightly job) and printing the one-line reproduce
//! command.

use dinomo_check::driver::{render_history, run_and_check, CheckConfig, CheckFailure};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    seed: Option<u64>,
    sweep: Option<usize>,
    replay: Option<u64>,
    ops: usize,
    clients: usize,
    membership_churn: bool,
    replication_churn: bool,
    queue_depth: usize,
    compactor: bool,
    scans: bool,
    crashes: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: None,
        sweep: None,
        replay: None,
        ops: 10_000,
        clients: 3,
        membership_churn: true,
        replication_churn: true,
        queue_depth: 2,
        compactor: false,
        scans: false,
        crashes: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--seed" => args.seed = Some(parse(&value("--seed")?)?),
            "--sweep" => args.sweep = Some(parse(&value("--sweep")?)?),
            "--replay" => args.replay = Some(parse(&value("--replay")?)?),
            "--ops" => args.ops = parse(&value("--ops")?)?,
            "--clients" => args.clients = parse(&value("--clients")?)?,
            "--queue-depth" => args.queue_depth = parse(&value("--queue-depth")?)?,
            "--gc" => args.compactor = true,
            "--scan" => args.scans = true,
            "--crash" => args.crashes = true,
            "--no-churn" => {
                args.membership_churn = false;
                args.replication_churn = false;
            }
            "--no-membership-churn" => args.membership_churn = false,
            "--no-replication-churn" => args.replication_churn = false,
            "--help" | "-h" => {
                println!(
                    "lincheck [--seed N | --sweep N | --replay N] \
                     [--ops N] [--clients N] [--queue-depth N] [--gc] [--scan] [--crash] \
                     [--no-churn | --no-membership-churn | --no-replication-churn]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad numeric value {s:?}"))
}

fn config_for(args: &Args, seed: u64) -> CheckConfig {
    let mut config = CheckConfig::from_seed(seed);
    config.total_ops = args.ops;
    config.clients = args.clients.max(1);
    config.membership_churn = args.membership_churn;
    config.replication_churn = args.replication_churn;
    config.executor_queue_depth = args.queue_depth.max(1);
    config.compactor = args.compactor;
    config.scans = args.scans;
    config.crashes = args.crashes;
    config
}

/// `target/check-results/`, anchored at the workspace root when invoked
/// via cargo, the current directory otherwise.
fn results_dir() -> PathBuf {
    let target = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(|root| root.join("target"))
        .unwrap_or_else(|| PathBuf::from("target"));
    target.join("check-results")
}

fn write_failure_artifacts(failure: &CheckFailure) {
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("could not create {}: {e}", dir.display());
        return;
    }
    let seed_path = dir.join("failing-seed.txt");
    let history_path = dir.join(format!("failing-history-{}.txt", failure.seed));
    let _ = std::fs::write(&seed_path, format!("{}\n", failure.seed));
    let mut dump = format!("# seed {}\n# {}\n", failure.seed, failure.error);
    for line in &failure.churn_log {
        dump.push_str(&format!("# churn {line}\n"));
    }
    dump.push_str(&render_history(&failure.history));
    match std::fs::write(&history_path, dump) {
        Ok(()) => eprintln!(
            "wrote failure artifacts: {} and {}",
            seed_path.display(),
            history_path.display()
        ),
        Err(e) => eprintln!("could not write {}: {e}", history_path.display()),
    }
}

/// Run one scenario; print its outcome; return the failure, if any.
fn run_once(config: &CheckConfig) -> Option<Box<CheckFailure>> {
    let start = Instant::now();
    match run_and_check(config) {
        Ok(report) => {
            println!(
                "seed {} ok: {} ops over {} keys checked in {:.2}s \
                 ({} states, {} churn actions, {} busy rejections, {} error \
                 replies, {} scans, {} segments compacted / {} entries \
                 relocated, {} kn crashes, {} dpm crashes \
                 [compaction {}, handoff {}, cell-swing {}])",
                config.seed,
                report.stats.ops,
                report.stats.keys,
                start.elapsed().as_secs_f64(),
                report.stats.states_explored,
                report.run.churn_log.len(),
                report.run.busy_rejections,
                report.run.error_replies,
                report.run.scan_ops,
                report.run.segments_compacted,
                report.run.entries_relocated,
                report.run.kn_crashes,
                report.run.dpm_crashes,
                report.run.crashes_in_compaction,
                report.run.crashes_in_handoff,
                report.run.crashes_in_cell_swing,
            );
            None
        }
        Err(failure) => {
            eprintln!("seed {} FAILED: {}", config.seed, failure.error);
            Some(failure)
        }
    }
}

/// Reproduce a failing seed, then shrink it by halving the op budget
/// while the failure persists. Prints the smallest failing budget and
/// writes artifacts for the smallest failure.
fn replay_and_shrink(args: &Args, seed: u64) -> ExitCode {
    let config = config_for(args, seed);
    println!("replaying seed {seed} with {} ops…", config.total_ops);
    let Some(mut failure) = run_once(&config) else {
        println!(
            "seed {seed} did not fail at this budget — if the failure came from the \
             nightly sweep, rerun with its --ops value"
        );
        return ExitCode::SUCCESS;
    };
    let mut budget = config.total_ops;
    let mut smallest = budget;
    while budget >= 200 {
        let half = budget / 2;
        let mut shrunk = config;
        shrunk.total_ops = half;
        println!("shrinking: retrying with {half} ops…");
        match run_once(&shrunk) {
            Some(f) => {
                failure = f;
                smallest = half;
                budget = half;
            }
            None => break,
        }
    }
    println!(
        "smallest failing budget: {smallest} ops \
         (DINOMO_CHECK_SEED={seed} lincheck --replay {seed} --ops {smallest})"
    );
    write_failure_artifacts(&failure);
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("lincheck: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(seed) = args.replay.or(CheckConfig::env_seed()) {
        return replay_and_shrink(&args, seed);
    }

    if let Some(count) = args.sweep {
        // Entropy from the OS clock: the sweep's whole point is fresh
        // seeds; each printed seed reproduces deterministically.
        let base = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0xdead_beef);
        for i in 0..count {
            let seed = base
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(i as u64);
            let config = config_for(&args, seed);
            if let Some(failure) = run_once(&config) {
                eprintln!(
                    "reproduce locally: DINOMO_CHECK_SEED={seed} cargo run -p dinomo-check \
                     --bin lincheck -- --replay {seed} --ops {}",
                    args.ops
                );
                write_failure_artifacts(&failure);
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }

    let seed = args.seed.unwrap_or(42);
    let config = config_for(&args, seed);
    match run_once(&config) {
        None => ExitCode::SUCCESS,
        Some(failure) => {
            write_failure_artifacts(&failure);
            ExitCode::FAILURE
        }
    }
}
