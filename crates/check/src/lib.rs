//! # dinomo-check — machine-checked consistency for the Dinomo cluster
//!
//! The paper claims single-key linearizability (§3.2), including for
//! selectively-replicated keys served by several KVS nodes at once. Until
//! this crate, that claim was tested by hand-rolled invariants (monotonic
//! register probes, acked-write accounting) that can only catch the bug
//! shapes they encode. This crate turns the claim into a machine-checked
//! property over *arbitrary* concurrent executions:
//!
//! * [`checker`] — a per-key linearizability checker for the register
//!   model (`get`/`put`/`delete`, with `insert`/`update` as upserts and
//!   batched `execute` calls decomposed per op). Keys are independent
//!   registers, so the history is partitioned per key
//!   (P-compositionality) and each key is checked with a Wing–Gong style
//!   search, memoized on `(linearized-set, register-value)` and bounded by
//!   a state budget, so nightly-scale histories check in seconds.
//! * [`driver`] — a seeded generative stress driver: concurrent clients
//!   run a deterministic CRUD op stream (skewed keys, unique write
//!   values) against a real cluster while a churn thread replays a
//!   deterministic script of `add_kn`/`remove_kn`/`fail_kn` and
//!   replicate/dereplicate actions, with tiny executor queues forcing
//!   `Busy` retries. Every client records through the
//!   [`dinomo_core::trace`] hook; the merged history is checked at the
//!   end. Any failure reproduces from `DINOMO_CHECK_SEED=<n>` alone and
//!   shrinks by replaying with a reduced op budget.
//!
//! The `lincheck` binary wraps the driver for CI: a short fixed-seed
//! smoke on merges, a long random-seed sweep nightly (failing seeds and
//! histories are written to `target/check-results/` and uploaded as
//! artifacts), and `--replay <seed>` to reproduce and shrink a failure
//! locally.
//!
//! ```
//! use dinomo_check::checker::check_history;
//! use dinomo_core::trace::HistoryRecorder;
//! use dinomo_core::{Kvs, Op};
//!
//! let kvs = Kvs::builder().small_for_tests().build().unwrap();
//! let recorder = HistoryRecorder::new();
//! let client = kvs.client().with_recorder(recorder.handle(0));
//! client.execute(vec![Op::insert("k", "a"), Op::lookup("k"), Op::delete("k")]);
//! assert!(client.lookup(b"k").unwrap().is_none());
//! let stats = check_history(&recorder.drain()).expect("history must linearize");
//! assert_eq!(stats.ops, 4);
//! ```

#![warn(missing_docs)]

pub mod checker;
pub mod driver;

pub use checker::{check_history, CheckError, CheckStats, CheckerConfig, Violation};
pub use driver::{churn_script, client_ops, run_and_check, run_scenario, CheckConfig, ChurnAction};
