//! Per-key linearizability checking for the register model.
//!
//! ## Model
//!
//! Every key is an independent register: `Write(v)` (insert/update — both
//! upserts) sets it, `Delete` clears it, `Read` observes its current value
//! (`None` = absent, the initial state). Because keys never interact,
//! linearizability is *compositional per key* (P-compositionality): a
//! history is linearizable iff its per-key projections are, so the checker
//! partitions the history by key and checks each projection independently
//! — which is also what keeps checking tractable.
//!
//! ## Algorithm
//!
//! Each per-key projection is checked with a Wing–Gong style search in the
//! entry-list formulation (as in Lowe's and Porcupine's checkers): the
//! operations' invocation/response events are laid out in timestamp order,
//! and the search repeatedly picks, among the operations whose invocation
//! precedes the first pending response, one that the register's current
//! value permits, linearizes it (removing both its events), and recurses,
//! backtracking when it gets stuck. Two bounds keep this fast at nightly
//! scale:
//!
//! * **Memoization** — a visited set of `(linearized-operation-set,
//!   register-value)` configurations prunes re-exploration; with the
//!   driver's globally-unique write values the search is near-linear.
//! * **State budget** — a hard cap on explored configurations turns a
//!   pathological search into an explicit [`CheckError::StateLimit`]
//!   instead of an unbounded burn.
//!
//! ## Failed operations
//!
//! A *failed read* carries no information and is dropped. A *failed write
//! or delete* may or may not have taken effect (e.g. a durability error
//! after the value was buffered, or a reply lost to a crashed node), so it
//! is treated as **optional**: the search may linearize it at any point
//! after its invocation, or never. As a sound optimization, failed
//! mutations whose effect no successful read could have observed (a write
//! whose value is never read; a delete when no read of the key returned
//! `None`) are pruned outright — removing them from any witness leaves the
//! witness valid.
//!
//! ## Scans
//!
//! A scan is decomposed into per-key reads by [`expand_scans`] before the
//! partition: for every key of the history inside the range the scan
//! covered, the scan claims either the value it returned for that key or
//! — if the key is missing from its pairs — that the key was *absent*.
//! Each claim must linearize somewhere inside the scan's window,
//! independently per key (the KN snapshots are per-node, so a cluster
//! scan is a union of per-node snapshots taken at possibly different
//! instants within the window — per-key atomicity is exactly the
//! guarantee the store makes). This is what catches a scan that skips a
//! committed key, resurrects a deleted one, or returns a value from
//! outside its real-time window.

use dinomo_core::trace::{Action, OpRecord};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

/// Tuning knobs for the checker.
#[derive(Debug, Clone, Copy)]
pub struct CheckerConfig {
    /// Maximum search configurations explored per key before the check
    /// aborts with [`CheckError::StateLimit`].
    pub max_states_per_key: u64,
}

impl Default for CheckerConfig {
    fn default() -> Self {
        CheckerConfig {
            max_states_per_key: 2_000_000,
        }
    }
}

/// Summary of a successful check.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Operations checked (after dropping failed reads and unobservable
    /// failed mutations).
    pub ops: usize,
    /// Distinct keys in the history.
    pub keys: usize,
    /// Search configurations explored across all keys.
    pub states_explored: u64,
    /// Size of the largest per-key projection.
    pub max_key_ops: usize,
}

/// A linearizability violation: no witness order exists for this key's
/// projection.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The offending key.
    pub key: Vec<u8>,
    /// Human-readable diagnosis of where the search got stuck.
    pub reason: String,
    /// The key's full projection (timestamp-sorted), for artifacts/replay.
    pub records: Vec<OpRecord>,
}

/// Why a check did not pass.
#[derive(Debug, Clone)]
pub enum CheckError {
    /// The history is not linearizable.
    Violation(Violation),
    /// The search exceeded its per-key state budget (inconclusive — raise
    /// [`CheckerConfig::max_states_per_key`] or reduce the op budget).
    StateLimit {
        /// The key whose search blew the budget.
        key: Vec<u8>,
        /// Configurations explored when the budget tripped.
        states: u64,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Violation(v) => write!(
                f,
                "linearizability violation on key {:?} ({} ops): {}",
                String::from_utf8_lossy(&v.key),
                v.records.len(),
                v.reason
            ),
            CheckError::StateLimit { key, states } => write!(
                f,
                "state budget exhausted on key {:?} after {states} configurations \
                 (inconclusive)",
                String::from_utf8_lossy(key)
            ),
        }
    }
}

impl std::error::Error for CheckError {}

/// Check a recorded history against the per-key register model with the
/// default [`CheckerConfig`]. See [`check_history_with`].
pub fn check_history(history: &[OpRecord]) -> Result<CheckStats, CheckError> {
    check_history_with(history, &CheckerConfig::default())
}

/// Check a recorded history against the per-key register model.
///
/// Returns the aggregate [`CheckStats`] if every key's projection is
/// linearizable, the first [`CheckError::Violation`] otherwise. Scans are
/// decomposed into per-key reads first (see [`expand_scans`]).
pub fn check_history_with(
    history: &[OpRecord],
    config: &CheckerConfig,
) -> Result<CheckStats, CheckError> {
    // Expansion clones the history, so only pay for it when scans exist.
    let expanded: Vec<OpRecord>;
    let history: &[OpRecord] = if history
        .iter()
        .any(|r| matches!(r.action, Action::Scan { .. }))
    {
        expanded = expand_scans(history);
        &expanded
    } else {
        history
    };
    let mut by_key: HashMap<&[u8], Vec<&OpRecord>> = HashMap::new();
    for record in history {
        by_key.entry(&record.key).or_default().push(record);
    }
    let mut stats = CheckStats {
        keys: by_key.len(),
        ..CheckStats::default()
    };
    // Deterministic key order, so a multi-violation history always reports
    // the same first violation.
    let mut keys: Vec<&[u8]> = by_key.keys().copied().collect();
    keys.sort_unstable();
    for key in keys {
        let records = &by_key[key];
        let key_stats = check_key(key, records, config)?;
        stats.ops += key_stats.ops;
        stats.states_explored += key_stats.states_explored;
        stats.max_key_ops = stats.max_key_ops.max(key_stats.ops);
    }
    Ok(stats)
}

/// Decompose every successful scan into per-key reads over the range it
/// covered, leaving all other records untouched.
///
/// The covered range is `[start, last returned key]` when the scan filled
/// its budget (`pairs.len() >= n`) and `[start, ∞)` when it ran out of
/// keys first — a short scan claims the key space past its last pair was
/// empty. For each key of the history's key universe inside that range,
/// the scan becomes a `Read(Some(v))` if the key is among its pairs and a
/// `Read(None)` otherwise, sharing the scan's client and timestamps. The
/// universe is every key any record or returned pair mentions: a key
/// nothing else touches can only yield a trivially-satisfiable
/// `Read(None)`, so restricting to the universe loses nothing. Failed
/// scans carry no information (the client may have retried past them) and
/// are dropped, like failed reads.
pub fn expand_scans(history: &[OpRecord]) -> Vec<OpRecord> {
    let mut universe: BTreeSet<&[u8]> = BTreeSet::new();
    for r in history {
        universe.insert(&r.key);
        if let Action::Scan { pairs, .. } = &r.action {
            for (k, _) in pairs {
                universe.insert(k);
            }
        }
    }
    let mut out = Vec::with_capacity(history.len());
    for r in history {
        let Action::Scan { n, pairs } = &r.action else {
            out.push(r.clone());
            continue;
        };
        if !r.ok {
            continue;
        }
        // Inclusive upper bound of the covered range; `None` = unbounded.
        let end: Option<&[u8]> = if pairs.len() >= *n {
            match pairs.last() {
                Some((k, _)) => Some(k),
                // n == 0: the scan covered (and claims) nothing.
                None => continue,
            }
        } else {
            None
        };
        let observed: HashMap<&[u8], &[u8]> = pairs
            .iter()
            .map(|(k, v)| (k.as_slice(), v.as_slice()))
            .collect();
        let start: &[u8] = &r.key;
        for &key in universe.range(start..) {
            if end.is_some_and(|e| key > e) {
                break;
            }
            out.push(OpRecord {
                client: r.client,
                key: key.to_vec(),
                action: Action::Read(observed.get(key).map(|v| v.to_vec())),
                ok: true,
                invoked_at: r.invoked_at,
                returned_at: r.returned_at,
            });
        }
    }
    out
}

/// The register-model operation kinds, with values interned to small ids:
/// state `0` is "absent", ids `>= 1` are distinct written/observed values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Write(u32),
    Delete,
    Read(u32),
}

/// One operation of a per-key projection, prepared for the search.
#[derive(Debug, Clone, Copy)]
struct KeyOp {
    kind: Kind,
    /// `true` if the op failed: it may linearize any time after its
    /// invocation, or never.
    optional: bool,
    inv: u64,
    ret: u64,
}

/// Apply `kind` to the register; `None` means the register's current value
/// forbids linearizing the op here.
fn apply(kind: Kind, state: u32) -> Option<u32> {
    match kind {
        Kind::Write(v) => Some(v),
        Kind::Delete => Some(0),
        Kind::Read(expected) => (state == expected).then_some(state),
    }
}

fn describe(kind: Kind, values: &[String]) -> String {
    let value = |v: u32| -> &str {
        values
            .get(v as usize - 1)
            .map(String::as_str)
            .unwrap_or("?")
    };
    match kind {
        Kind::Write(v) => format!("write {:?}", value(v)),
        Kind::Delete => "delete".to_string(),
        Kind::Read(0) => "read -> absent".to_string(),
        Kind::Read(v) => format!("read -> {:?}", value(v)),
    }
}

/// Outcome of one bounded Wing–Gong search over a prepared projection.
enum SearchOutcome {
    /// A witness order exists; carries the configurations explored.
    Linearizable(u64),
    /// The search exhausted every choice: no witness. Carries the
    /// register value and frontier descriptions at the final dead end.
    Stuck { state: u32, frontier: Vec<Kind> },
    /// The state budget tripped first (inconclusive).
    Limit(u64),
}

/// Intern a value's bytes to a small id (`>= 1`; the register state `0`
/// is reserved for "absent").
fn intern<'a>(bytes: &'a [u8], ids: &mut HashMap<&'a [u8], u32>) -> u32 {
    let fresh = ids.len() as u32 + 1;
    *ids.entry(bytes).or_insert(fresh)
}

/// Check one key's projection. `records` need not be sorted.
fn check_key<'a>(
    key: &[u8],
    records: &[&'a OpRecord],
    config: &CheckerConfig,
) -> Result<CheckStats, CheckError> {
    // ---- prepare: intern values, classify, prune uninformative failures.
    let mut value_ids: HashMap<&'a [u8], u32> = HashMap::new();
    let mut read_values: HashSet<u32> = HashSet::new();
    let mut saw_absent_read = false;
    let mut prepared: Vec<KeyOp> = Vec::with_capacity(records.len());
    for r in records.iter() {
        let kind = match &r.action {
            Action::Write(v) => Kind::Write(intern(v, &mut value_ids)),
            Action::Delete => Kind::Delete,
            Action::Read(Some(v)) => Kind::Read(intern(v, &mut value_ids)),
            Action::Read(None) => Kind::Read(0),
            Action::Scan { .. } => {
                unreachable!("scans are expanded to per-key reads before the partition")
            }
        };
        if r.ok {
            match kind {
                Kind::Read(0) => saw_absent_read = true,
                Kind::Read(v) => {
                    read_values.insert(v);
                }
                _ => {}
            }
        }
        prepared.push(KeyOp {
            kind,
            optional: !r.ok,
            inv: r.invoked_at,
            ret: r.returned_at,
        });
    }
    // Prune: failed reads always; failed mutations nothing could observe.
    prepared.retain(|op| {
        if !op.optional {
            return true;
        }
        match op.kind {
            Kind::Read(_) => false,
            Kind::Write(v) => read_values.contains(&v),
            Kind::Delete => saw_absent_read,
        }
    });
    let n = prepared.len();
    let stats = CheckStats {
        ops: n,
        keys: 1,
        ..CheckStats::default()
    };
    if n == 0 {
        return Ok(stats);
    }
    if n > u64::BITS as usize * 1024 {
        // Bitsets beyond 64k ops per key are a sign the scenario should be
        // sharded, not that the checker should grind.
        return Err(CheckError::StateLimit {
            key: key.to_vec(),
            states: 0,
        });
    }

    // Lossy value strings for diagnostics, indexed by interned id - 1.
    let mut values = vec![String::new(); value_ids.len()];
    for (bytes, id) in &value_ids {
        values[*id as usize - 1] = String::from_utf8_lossy(bytes).into_owned();
    }

    match search(&prepared, config.max_states_per_key) {
        SearchOutcome::Linearizable(explored) => Ok(CheckStats {
            states_explored: explored,
            ..stats
        }),
        SearchOutcome::Limit(states) => Err(CheckError::StateLimit {
            key: key.to_vec(),
            states,
        }),
        SearchOutcome::Stuck { state, frontier } => Err(CheckError::Violation(diagnose(
            key, records, &prepared, &values, state, &frontier, config,
        ))),
    }
}

/// Build the violation report: shrink the projection to a small failing
/// prefix (mandatory ops in response order, every optional mutation kept —
/// optional ops have unbounded windows, so excluding them could fabricate
/// violations) and name the last-completing op of that prefix, which is
/// the first operation the register history cannot explain.
fn diagnose(
    key: &[u8],
    records: &[&OpRecord],
    prepared: &[KeyOp],
    values: &[String],
    full_state: u32,
    full_frontier: &[Kind],
    config: &CheckerConfig,
) -> Violation {
    let mut mandatory: Vec<usize> = (0..prepared.len())
        .filter(|&i| !prepared[i].optional)
        .collect();
    mandatory.sort_by_key(|&i| prepared[i].ret);
    let optionals: Vec<usize> = (0..prepared.len())
        .filter(|&i| prepared[i].optional)
        .collect();
    let subset = |m: usize| -> Vec<KeyOp> {
        mandatory[..m]
            .iter()
            .chain(&optionals)
            .map(|&i| prepared[i])
            .collect()
    };
    // Binary search the smallest failing prefix (failure is monotone in
    // practice; if timing quirks make it not so, this still lands on *a*
    // failing prefix). Budget exhaustion counts as failing — the subsets
    // only shrink.
    let (mut lo, mut hi) = (1usize, mandatory.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        match search(&subset(mid), config.max_states_per_key) {
            SearchOutcome::Linearizable(_) => lo = mid + 1,
            _ => hi = mid,
        }
    }
    let culprit = mandatory.get(lo.saturating_sub(1)).copied();
    let reason = match culprit {
        Some(op) => {
            let k = prepared[op];
            format!(
                "first inexplicable op: {} during [{}, {}] (prefix of {} ops; \
                 full-history dead end: register {} admits none of [{}])",
                describe(k.kind, values),
                k.inv,
                k.ret,
                lo,
                if full_state == 0 {
                    "absent".to_string()
                } else {
                    format!("{:?}", values[full_state as usize - 1])
                },
                full_frontier
                    .iter()
                    .map(|&k| describe(k, values))
                    .collect::<Vec<_>>()
                    .join(", "),
            )
        }
        None => "empty projection cannot fail".to_string(),
    };
    let mut sorted: Vec<OpRecord> = records.iter().map(|r| (*r).clone()).collect();
    sorted.sort_by_key(|r| r.invoked_at);
    Violation {
        key: key.to_vec(),
        reason,
        records: sorted,
    }
}

/// One bounded Wing–Gong search over a prepared projection.
fn search(ops: &[KeyOp], max_states: u64) -> SearchOutcome {
    let mut prepared: Vec<KeyOp> = ops.to_vec();
    let n = prepared.len();
    if n == 0 {
        return SearchOutcome::Linearizable(0);
    }
    // Surviving optional ops linearize any time after invocation: push
    // their response to the end of (logical) time, keeping stamps unique.
    for (i, op) in prepared.iter_mut().enumerate() {
        if op.optional {
            op.ret = u64::MAX - i as u64;
        }
    }

    // ---- entry list: 2 events per op, timestamp-sorted, doubly linked.
    // Node ids: call(op) = 2*op, return(op) = 2*op + 1; head/tail sentinels.
    let mut order: Vec<usize> = (0..2 * n).collect();
    order.sort_by_key(|&e| {
        let op = e / 2;
        let t = if e % 2 == 0 {
            prepared[op].inv
        } else {
            prepared[op].ret
        };
        // Calls before returns on (theoretical) stamp ties; op index as the
        // final deterministic tiebreak.
        (t, e % 2, op)
    });
    let head = 2 * n;
    let tail = 2 * n + 1;
    let mut next = vec![0usize; 2 * n + 2];
    let mut prev = vec![0usize; 2 * n + 2];
    {
        let mut last = head;
        for &e in &order {
            next[last] = e;
            prev[e] = last;
            last = e;
        }
        next[last] = tail;
        prev[tail] = last;
    }
    let unlink = |next: &mut [usize], prev: &mut [usize], e: usize| {
        next[prev[e]] = next[e];
        prev[next[e]] = prev[e];
    };
    let relink = |next: &mut [usize], prev: &mut [usize], e: usize| {
        next[prev[e]] = e;
        prev[next[e]] = e;
    };

    // ---- the search.
    let words = n.div_ceil(64);
    let mut linearized = vec![0u64; words];
    let mut state = 0u32;
    let mut mandatory_left = prepared.iter().filter(|op| !op.optional).count();
    // Undo stack: (call entry, state before linearizing it).
    let mut undo: Vec<(usize, u32)> = Vec::new();
    let mut cache: HashSet<(Vec<u64>, u32)> = HashSet::new();
    let mut explored = 0u64;

    let mut entry = next[head];
    loop {
        if mandatory_left == 0 {
            // Everything that must have happened has linearized; the
            // remaining (optional) ops "never happened".
            return SearchOutcome::Linearizable(explored);
        }
        if entry == tail || entry % 2 == 1 {
            // Reached the end of the frontier — either the list's tail or
            // the first response event, past which no un-linearized op's
            // call may be deferred. Backtrack.
            let Some((call, prev_state)) = undo.pop() else {
                // Nothing to undo: the projection is not linearizable.
                // Report the ops stuck at the final frontier.
                let mut frontier = Vec::new();
                let mut e = next[head];
                while e != tail && e.is_multiple_of(2) && frontier.len() < 4 {
                    frontier.push(prepared[e / 2].kind);
                    e = next[e];
                }
                return SearchOutcome::Stuck { state, frontier };
            };
            let op = call / 2;
            relink(&mut next, &mut prev, call + 1);
            relink(&mut next, &mut prev, call);
            linearized[op / 64] &= !(1u64 << (op % 64));
            if !prepared[op].optional {
                mandatory_left += 1;
            }
            state = prev_state;
            entry = next[call];
            continue;
        }

        // A call entry inside the frontier: try to linearize its op here.
        let op = entry / 2;
        if let Some(new_state) = apply(prepared[op].kind, state) {
            linearized[op / 64] |= 1u64 << (op % 64);
            explored += 1;
            if explored > max_states {
                return SearchOutcome::Limit(explored);
            }
            if cache.insert((linearized.clone(), new_state)) {
                // New configuration: commit the choice.
                undo.push((entry, state));
                state = new_state;
                if !prepared[op].optional {
                    mandatory_left -= 1;
                }
                unlink(&mut next, &mut prev, entry);
                unlink(&mut next, &mut prev, entry + 1);
                entry = next[head];
                continue;
            }
            // Seen before: this choice leads to an explored subtree.
            linearized[op / 64] &= !(1u64 << (op % 64));
        }
        entry = next[entry];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a record with explicit stamps.
    fn rec(key: &[u8], action: Action, ok: bool, inv: u64, ret: u64) -> OpRecord {
        OpRecord {
            client: 0,
            key: key.to_vec(),
            action,
            ok,
            invoked_at: inv,
            returned_at: ret,
        }
    }

    fn write(key: &[u8], v: &[u8], inv: u64, ret: u64) -> OpRecord {
        rec(key, Action::Write(v.to_vec()), true, inv, ret)
    }

    fn read(key: &[u8], v: Option<&[u8]>, inv: u64, ret: u64) -> OpRecord {
        rec(key, Action::Read(v.map(|v| v.to_vec())), true, inv, ret)
    }

    #[test]
    fn empty_and_trivial_histories_pass() {
        assert!(check_history(&[]).is_ok());
        let h = vec![
            write(b"k", b"a", 0, 1),
            read(b"k", Some(b"a"), 2, 3),
            rec(b"k", Action::Delete, true, 4, 5),
            read(b"k", None, 6, 7),
        ];
        let stats = check_history(&h).unwrap();
        assert_eq!(stats.ops, 4);
        assert_eq!(stats.keys, 1);
    }

    #[test]
    fn concurrent_writes_allow_either_read_order() {
        // Two concurrent writes; a later read may see either, but two
        // sequential reads must not see them in contradictory orders.
        let ok = vec![
            write(b"k", b"a", 0, 10),
            write(b"k", b"b", 1, 9),
            read(b"k", Some(b"a"), 11, 12),
            read(b"k", Some(b"a"), 13, 14),
        ];
        assert!(check_history(&ok).is_ok());
        let flip = vec![
            write(b"k", b"a", 0, 10),
            write(b"k", b"b", 1, 9),
            read(b"k", Some(b"b"), 11, 12),
        ];
        assert!(check_history(&flip).is_ok());
    }

    #[test]
    fn stale_read_is_rejected() {
        // w(a) returns before w(b) is invoked; a read after w(b) returned
        // must not see a.
        let h = vec![
            write(b"k", b"a", 0, 1),
            write(b"k", b"b", 2, 3),
            read(b"k", Some(b"a"), 4, 5),
        ];
        let err = check_history(&h).unwrap_err();
        assert!(matches!(err, CheckError::Violation(_)), "{err}");
    }

    #[test]
    fn non_monotonic_reads_are_rejected() {
        // Same-thread reads going backwards: b then a after both writes
        // completed in order a, b.
        let h = vec![
            write(b"k", b"a", 0, 1),
            write(b"k", b"b", 2, 3),
            read(b"k", Some(b"b"), 4, 5),
            read(b"k", Some(b"a"), 6, 7),
        ];
        assert!(check_history(&h).is_err());
    }

    #[test]
    fn lost_update_is_rejected() {
        // An acknowledged write that no later read ever observes, on a key
        // with no concurrency to excuse it.
        let h = vec![
            write(b"k", b"a", 0, 1),
            write(b"k", b"b", 2, 3),
            read(b"k", Some(b"a"), 4, 5),
            read(b"k", Some(b"a"), 6, 7),
        ];
        assert!(check_history(&h).is_err());
    }

    #[test]
    fn resurrection_after_delete_is_rejected() {
        let h = vec![
            write(b"k", b"a", 0, 1),
            rec(b"k", Action::Delete, true, 2, 3),
            read(b"k", Some(b"a"), 4, 5),
        ];
        let err = check_history(&h).unwrap_err();
        assert!(err.to_string().contains("violation"), "{err}");
    }

    #[test]
    fn read_of_never_written_value_is_rejected() {
        let h = vec![write(b"k", b"a", 0, 1), read(b"k", Some(b"zz"), 2, 3)];
        assert!(check_history(&h).is_err());
    }

    #[test]
    fn failed_write_may_explain_a_read_or_never_happen() {
        // The failed write's value is read: it must have taken effect.
        let h = vec![
            rec(b"k", Action::Write(b"x".to_vec()), false, 0, 1),
            read(b"k", Some(b"x"), 2, 3),
        ];
        assert!(check_history(&h).is_ok());
        // The failed write is never observed: fine too (never happened)...
        let h = vec![
            write(b"k", b"a", 0, 1),
            rec(b"k", Action::Write(b"x".to_vec()), false, 2, 3),
            read(b"k", Some(b"a"), 4, 5),
        ];
        assert!(check_history(&h).is_ok());
        // ...even *after* its response, since a failed write has no
        // response-time bound.
        let h = vec![
            rec(b"k", Action::Write(b"x".to_vec()), false, 0, 1),
            write(b"k", b"a", 2, 3),
            read(b"k", Some(b"a"), 4, 5),
            read(b"k", Some(b"x"), 6, 7),
        ];
        assert!(check_history(&h).is_ok());
    }

    #[test]
    fn failed_reads_carry_no_information() {
        let h = vec![
            write(b"k", b"a", 0, 1),
            rec(b"k", Action::Read(None), false, 2, 3),
            read(b"k", Some(b"a"), 4, 5),
        ];
        let stats = check_history(&h).unwrap();
        assert_eq!(stats.ops, 2, "failed read must be dropped");
    }

    #[test]
    fn keys_are_checked_independently() {
        // Per-key projections both linearize even though a cross-key
        // "global register" reading would not.
        let h = vec![
            write(b"a", b"1", 0, 1),
            write(b"b", b"2", 2, 3),
            read(b"a", Some(b"1"), 4, 5),
            read(b"b", Some(b"2"), 6, 7),
        ];
        let stats = check_history(&h).unwrap();
        assert_eq!(stats.keys, 2);
        assert_eq!(stats.max_key_ops, 2);
    }

    #[test]
    fn state_budget_is_enforced() {
        // Heavily concurrent identical windows force a combinatorial
        // search; a tiny budget must trip StateLimit, not hang.
        let mut h = Vec::new();
        for i in 0..24u64 {
            h.push(write(b"k", format!("v{i}").as_bytes(), 0, 1000 + i));
        }
        // A read that matches nothing forces exhaustive backtracking.
        h.push(read(b"k", Some(b"never"), 2000, 2001));
        let tiny = CheckerConfig {
            max_states_per_key: 50,
        };
        match check_history_with(&h, &tiny) {
            Err(CheckError::StateLimit { states, .. }) => assert!(states > 50),
            other => panic!("expected StateLimit, got {other:?}"),
        }
    }

    fn scan(start: &[u8], n: usize, pairs: &[(&[u8], &[u8])], inv: u64, ret: u64) -> OpRecord {
        rec(
            start,
            Action::Scan {
                n,
                pairs: pairs
                    .iter()
                    .map(|(k, v)| (k.to_vec(), v.to_vec()))
                    .collect(),
            },
            true,
            inv,
            ret,
        )
    }

    #[test]
    fn scan_observing_the_snapshot_passes() {
        let h = vec![
            write(b"k1", b"a", 0, 1),
            write(b"k2", b"b", 2, 3),
            scan(b"k1", 10, &[(b"k1", b"a"), (b"k2", b"b")], 4, 5),
        ];
        let stats = check_history(&h).unwrap();
        // The scan expands to one read per covered key.
        assert_eq!(stats.ops, 4);
    }

    #[test]
    fn scan_skipping_a_committed_key_is_rejected() {
        // k1 is written and never deleted, yet a scan starting at k1
        // returns only k2 — it claims k1 was absent.
        let h = vec![
            write(b"k1", b"a", 0, 1),
            write(b"k2", b"b", 2, 3),
            scan(b"k1", 10, &[(b"k2", b"b")], 4, 5),
        ];
        let err = check_history(&h).unwrap_err();
        assert!(matches!(err, CheckError::Violation(_)), "{err}");
    }

    #[test]
    fn full_budget_scan_claims_nothing_past_its_last_pair() {
        // The scan's budget (n = 1) fills at k1, so omitting k2 is not a
        // claim that k2 was absent.
        let h = vec![
            write(b"k1", b"a", 0, 1),
            write(b"k2", b"b", 2, 3),
            scan(b"k1", 1, &[(b"k1", b"a")], 4, 5),
        ];
        assert!(check_history(&h).is_ok());
    }

    #[test]
    fn scan_resurrecting_a_deleted_key_is_rejected() {
        let h = vec![
            write(b"k1", b"a", 0, 1),
            rec(b"k1", Action::Delete, true, 2, 3),
            scan(b"k0", 10, &[(b"k1", b"a")], 4, 5),
        ];
        assert!(check_history(&h).is_err());
    }

    #[test]
    fn concurrent_scan_may_or_may_not_see_an_overlapping_write() {
        // The write's window overlaps the scan's: both outcomes linearize.
        let sees_it = vec![
            write(b"k1", b"a", 0, 10),
            scan(b"k0", 10, &[(b"k1", b"a")], 5, 15),
        ];
        assert!(check_history(&sees_it).is_ok());
        let misses_it = vec![write(b"k1", b"a", 5, 15), scan(b"k0", 10, &[], 0, 10)];
        assert!(check_history(&misses_it).is_ok());
    }

    #[test]
    fn failed_scans_carry_no_information() {
        let h = vec![
            write(b"k1", b"a", 0, 1),
            rec(
                b"k0",
                Action::Scan {
                    n: 10,
                    pairs: vec![],
                },
                false,
                2,
                3,
            ),
        ];
        let stats = check_history(&h).unwrap();
        assert_eq!(stats.ops, 1, "failed scan must be dropped");
    }

    #[test]
    fn batch_shaped_stamps_with_shared_invocations_check_fine() {
        // Ops of one batch share an invocation stamp (the client stamps
        // once per execute); the checker must cope with tied stamps.
        let h = vec![
            write(b"k", b"a", 0, 5),
            read(b"k", Some(b"a"), 0, 6),
            rec(b"k", Action::Delete, true, 0, 7),
            read(b"k", None, 10, 11),
        ];
        assert!(check_history(&h).is_ok());
    }
}
