//! The hash table: bucket array, chaining, snapshot reads, in-place writes,
//! resize, and the one-sided remote lookup path.
//!
//! # Concurrency scheme
//!
//! Readers are **lock-free**: the pointer to the current bucket array is an
//! epoch-protected [`Atomic`], so a reader pins an epoch ([`pin`]), loads
//! the array, and traverses it without taking any lock. A concurrent resize
//! publishes a fully-populated replacement array with a single pointer swap
//! and *defers* destruction of the old one ([`Guard::defer_destroy`]) until
//! every guard pinned at swap time has dropped — so a mid-traversal reader
//! keeps walking a stale but valid and fully intact array. Per-chain
//! consistency still comes from the per-bucket version protocol.
//!
//! Writers keep the coarser scheme: they hold the `state` **read** lock
//! across their bucket write (plus the per-chain head-bucket lock), and
//! `resize` takes the **write** lock, so an in-flight write can never land
//! in an array that is about to be retired and silently disappear.

use crate::bucket::{BucketRef, BucketSnapshot, BUCKET_BYTES, EMPTY_TAG, SLOTS_PER_BUCKET};
use crate::Result;
use crossbeam::epoch::{self, Atomic, Guard, Owned};
use dinomo_pmem::{PmAddr, PmemPool};
use dinomo_simnet::Nic;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Pin the current thread's epoch, keeping every bucket array a subsequent
/// read path traverses alive until the returned [`Guard`] drops.
///
/// Each read method pins internally, so calling this is only needed to
/// amortize the (cheap) pin over a batch of lookups via the `*_in` variants:
///
/// ```
/// use dinomo_pclht::{pin, Pclht, PclhtConfig};
/// use dinomo_pmem::{PmemConfig, PmemPool};
/// use std::sync::Arc;
///
/// let pool = Arc::new(PmemPool::new(PmemConfig::with_capacity(8 << 20)));
/// let table = Pclht::new(pool, PclhtConfig::for_capacity(100)).unwrap();
/// table.insert(7, 700).unwrap();
///
/// let guard = pin();
/// for _ in 0..3 {
///     assert_eq!(table.get_in(&guard, 7, |_| true), Some(700));
/// }
/// ```
pub fn pin() -> Guard {
    epoch::pin()
}

/// Configuration of a [`Pclht`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PclhtConfig {
    /// Number of buckets in the initial table (rounded up to a power of two).
    pub initial_buckets: usize,
    /// Resize when `len > load_factor * buckets * SLOTS_PER_BUCKET`.
    pub max_load_factor: f64,
    /// Whether the table resizes itself automatically.
    pub auto_resize: bool,
}

impl Default for PclhtConfig {
    fn default() -> Self {
        PclhtConfig {
            initial_buckets: 1024,
            max_load_factor: 0.75,
            auto_resize: true,
        }
    }
}

impl PclhtConfig {
    /// Config sized for roughly `expected_keys` keys without resizing.
    pub fn for_capacity(expected_keys: usize) -> Self {
        let buckets = (expected_keys / SLOTS_PER_BUCKET + 1)
            .next_power_of_two()
            .max(16);
        PclhtConfig {
            initial_buckets: buckets,
            ..PclhtConfig::default()
        }
    }
}

/// Operational statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PclhtStats {
    /// Number of entries.
    pub len: u64,
    /// Number of head buckets in the current table.
    pub buckets: u64,
    /// Number of overflow (chained) buckets allocated.
    pub overflow_buckets: u64,
    /// Number of resizes performed.
    pub resizes: u64,
    /// Total retries of the snapshot-read protocol.
    pub read_retries: u64,
    /// Bucket arrays retired to the epoch scheme by resizes.
    pub arrays_retired: u64,
    /// Retired bucket arrays whose pmem was actually reclaimed. Trails
    /// [`PclhtStats::arrays_retired`] while any epoch guard stays pinned.
    pub arrays_freed: u64,
}

/// One generation of the bucket array. Readers hold references to it only
/// under an epoch [`Guard`]; when a resize retires it, its pmem is freed by
/// this type's `Drop` — which the epoch scheme delays until no pinned guard
/// can still be traversing it.
#[derive(Debug)]
struct BucketArray {
    buckets_addr: PmAddr,
    num_buckets: u64,
    pool: Arc<PmemPool>,
    /// Set just before the array is handed to `defer_destroy`, so the drop
    /// counter below counts exactly the epoch-reclaimed generations (the
    /// final array freed by `Pclht::drop` does not count).
    retired: AtomicBool,
    /// Shared with the owning table; incremented on drop of a retired array.
    freed: Arc<AtomicU64>,
    /// The table's live overflow-bucket count, decremented as this
    /// generation's chains are freed.
    overflow_buckets: Arc<AtomicU64>,
}

impl Drop for BucketArray {
    fn drop(&mut self) {
        // Free this generation's overflow chains first: they are reachable
        // only through this head array (rehashing allocated the new
        // generation fresh ones), so they go with it. By the time Drop runs
        // the chains are immutable — writers moved on at the swap, and the
        // epoch scheme has already waited out every reader.
        for idx in 0..self.num_buckets {
            let head = BucketRef::new(self.buckets_addr.offset(idx * BUCKET_BYTES));
            let mut next = head.next(&self.pool);
            while !next.is_null() {
                let after = BucketRef::new(next).next(&self.pool);
                self.pool.free(next, BUCKET_BYTES);
                self.overflow_buckets.fetch_sub(1, Ordering::Relaxed);
                next = after;
            }
        }
        self.pool
            .free(self.buckets_addr, self.num_buckets * BUCKET_BYTES);
        if self.retired.load(Ordering::Relaxed) {
            self.freed.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// The persistent cache-line hash table. See the crate docs for the design.
#[derive(Debug)]
pub struct Pclht {
    pool: Arc<PmemPool>,
    /// Current bucket array. Readers load it under an epoch guard; only
    /// resize (holding the `state` write lock) swaps it.
    array: Atomic<BucketArray>,
    /// Writer/resize coordination only. Writers hold it shared across their
    /// bucket write, resize holds it exclusively across the array swap;
    /// **readers never touch it**.
    state: RwLock<()>,
    config: PclhtConfig,
    len: AtomicU64,
    /// Live overflow buckets across all generations (shared with each
    /// `BucketArray` so retiring a generation debits its chains).
    overflow_buckets: Arc<AtomicU64>,
    resizes: AtomicU64,
    read_retries: AtomicU64,
    arrays_retired: AtomicU64,
    arrays_freed: Arc<AtomicU64>,
}

impl Drop for Pclht {
    fn drop(&mut self) {
        // The live array never went through `defer_destroy`; `&mut self`
        // proves no guard can still reference it, so reclaim it in place.
        let guard = unsafe { epoch::unprotected() };
        let last = self.array.load(Ordering::Acquire, guard);
        drop(unsafe { last.into_owned() });
    }
}

impl Pclht {
    /// Create an empty table backed by `pool`.
    pub fn new(pool: Arc<PmemPool>, config: PclhtConfig) -> Result<Self> {
        let num_buckets = config.initial_buckets.next_power_of_two().max(16) as u64;
        let buckets_addr = Self::alloc_bucket_array(&pool, num_buckets)?;
        let freed = Arc::new(AtomicU64::new(0));
        let overflow_buckets = Arc::new(AtomicU64::new(0));
        Ok(Pclht {
            array: Atomic::new(BucketArray {
                buckets_addr,
                num_buckets,
                pool: Arc::clone(&pool),
                retired: AtomicBool::new(false),
                freed: Arc::clone(&freed),
                overflow_buckets: Arc::clone(&overflow_buckets),
            }),
            pool,
            state: RwLock::new(()),
            config,
            len: AtomicU64::new(0),
            overflow_buckets,
            resizes: AtomicU64::new(0),
            read_retries: AtomicU64::new(0),
            arrays_retired: AtomicU64::new(0),
            arrays_freed: freed,
        })
    }

    fn alloc_bucket_array(pool: &PmemPool, num_buckets: u64) -> Result<PmAddr> {
        let addr = pool.alloc(num_buckets * BUCKET_BYTES)?;
        for i in 0..num_buckets {
            BucketRef::new(addr.offset(i * BUCKET_BYTES)).init(pool);
        }
        Ok(addr)
    }

    /// The backing pool.
    pub fn pool(&self) -> &Arc<PmemPool> {
        &self.pool
    }

    /// Number of entries in the table.
    pub fn len(&self) -> u64 {
        self.len.load(Ordering::Relaxed)
    }

    /// `true` if the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of head buckets.
    pub fn bucket_count(&self) -> u64 {
        self.current(&epoch::pin()).num_buckets
    }

    /// Snapshot statistics.
    pub fn stats(&self) -> PclhtStats {
        PclhtStats {
            len: self.len(),
            buckets: self.bucket_count(),
            overflow_buckets: self.overflow_buckets.load(Ordering::Relaxed),
            resizes: self.resizes.load(Ordering::Relaxed),
            read_retries: self.read_retries.load(Ordering::Relaxed),
            arrays_retired: self.arrays_retired.load(Ordering::Relaxed),
            arrays_freed: self.arrays_freed.load(Ordering::Relaxed),
        }
    }

    /// The current bucket array, alive for as long as `guard` stays pinned.
    fn current<'g>(&self, guard: &'g Guard) -> &'g BucketArray {
        // SAFETY: the pointer is non-null from construction to drop, and a
        // retired array is destroyed only after every guard pinned at
        // retirement time has dropped — `guard` keeps this one alive.
        unsafe { self.array.load(Ordering::Acquire, guard).deref() }
    }

    fn head_bucket(&self, array: &BucketArray, tag: u64) -> BucketRef {
        let idx = Self::bucket_index(tag, array.num_buckets);
        BucketRef::new(array.buckets_addr.offset(idx * BUCKET_BYTES))
    }

    fn bucket_index(tag: u64, num_buckets: u64) -> u64 {
        // Fibonacci hashing spreads sequential tags across the table.
        (tag.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17) & (num_buckets - 1)
    }

    fn normalize_tag(tag: u64) -> u64 {
        if tag == EMPTY_TAG {
            0x5bd1_e995_9e37_79b9
        } else {
            tag
        }
    }

    /// Take a consistent snapshot of the whole chain for `tag`.
    fn chain_snapshot(&self, array: &BucketArray, tag: u64) -> Vec<BucketSnapshot> {
        let head = self.head_bucket(array, tag);
        loop {
            let meta_before = head.meta(&self.pool);
            if BucketRef::is_locked(meta_before) {
                self.read_retries.fetch_add(1, Ordering::Relaxed);
                std::hint::spin_loop();
                continue;
            }
            let mut out = Vec::with_capacity(2);
            let mut cur = head;
            loop {
                let snap = cur.snapshot(&self.pool);
                let next = snap.next;
                out.push(snap);
                if next.is_null() {
                    break;
                }
                cur = BucketRef::new(next);
            }
            let meta_after = head.meta(&self.pool);
            if meta_after == meta_before {
                return out;
            }
            self.read_retries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Look up the first entry whose tag matches and whose value satisfies
    /// `matches`.
    ///
    /// **Lock-free**: no lock is taken or held — the traversal runs under an
    /// epoch pin (see the module docs) and per-chain consistency comes from
    /// the bucket snapshot protocol.
    pub fn get<F: Fn(u64) -> bool>(&self, tag: u64, matches: F) -> Option<u64> {
        self.get_in(&epoch::pin(), tag, matches)
    }

    /// [`Pclht::get`] under a caller-supplied guard, amortizing the pin over
    /// a batch of lookups.
    pub fn get_in<F: Fn(u64) -> bool>(&self, guard: &Guard, tag: u64, matches: F) -> Option<u64> {
        let tag = Self::normalize_tag(tag);
        let array = self.current(guard);
        for snap in self.chain_snapshot(array, tag) {
            for (t, v) in snap.slots {
                if t == tag && matches(v) {
                    return Some(v);
                }
            }
        }
        None
    }

    /// Look up ignoring collisions (first entry with this tag).
    pub fn get_first(&self, tag: u64) -> Option<u64> {
        self.get(tag, |_| true)
    }

    /// All values stored under `tag` (collisions included). Lock-free.
    pub fn get_all(&self, tag: u64) -> Vec<u64> {
        self.get_all_in(&epoch::pin(), tag)
    }

    /// [`Pclht::get_all`] under a caller-supplied guard.
    pub fn get_all_in(&self, guard: &Guard, tag: u64) -> Vec<u64> {
        let tag = Self::normalize_tag(tag);
        let array = self.current(guard);
        let mut out = Vec::new();
        for snap in self.chain_snapshot(array, tag) {
            for (t, v) in snap.slots {
                if t == tag {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Number of buckets a lookup of `tag` has to traverse (the `M` in the
    /// DAC cost analysis, i.e. the RTs a remote lookup would need before
    /// fetching the value). Lock-free.
    pub fn chain_length(&self, tag: u64) -> u32 {
        self.chain_length_in(&epoch::pin(), tag)
    }

    /// [`Pclht::chain_length`] under a caller-supplied guard.
    pub fn chain_length_in(&self, guard: &Guard, tag: u64) -> u32 {
        let tag = Self::normalize_tag(tag);
        let array = self.current(guard);
        self.chain_snapshot(array, tag).len() as u32
    }

    /// Insert a new entry. Does not check for duplicates (the caller decides
    /// whether to use [`Pclht::upsert`]).
    pub fn insert(&self, tag: u64, value: u64) -> Result<()> {
        let tag = Self::normalize_tag(tag);
        self.maybe_resize()?;
        // The state guard is held across the bucket write so a concurrent
        // resize (which takes the state write-lock) cannot swap the bucket
        // array out from under this insert and silently drop it.
        let state_guard = self.state.read();
        let guard = epoch::pin();
        let head = self.head_bucket(self.current(&guard), tag);
        head.lock(&self.pool);
        let res = self.insert_locked(&head, tag, value);
        head.unlock(&self.pool);
        if res.is_ok() {
            // Count while still excluding resize, so its bucket scan and
            // `len` can never disagree.
            self.len.fetch_add(1, Ordering::Relaxed);
        }
        drop(state_guard);
        res
    }

    fn insert_locked(&self, head: &BucketRef, tag: u64, value: u64) -> Result<()> {
        // Find the first empty slot anywhere in the chain.
        let mut cur = *head;
        loop {
            for i in 0..SLOTS_PER_BUCKET {
                let (t, _) = cur.slot(&self.pool, i);
                if t == EMPTY_TAG {
                    cur.set_slot(&self.pool, i, tag, value);
                    return Ok(());
                }
            }
            let next = cur.next(&self.pool);
            if next.is_null() {
                // Chain is full: allocate, initialize and persist a new
                // bucket *before* linking it (crash-safe ordering).
                let addr = self.pool.alloc(BUCKET_BYTES)?;
                let fresh = BucketRef::new(addr);
                fresh.init(&self.pool);
                fresh.set_slot(&self.pool, 0, tag, value);
                cur.set_next(&self.pool, addr);
                self.overflow_buckets.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
            cur = BucketRef::new(next);
        }
    }

    /// Update the first entry matching `(tag, matches)` in place, returning
    /// the previous value. The update is a single-word in-place write
    /// (log-free), persisted before returning.
    pub fn update<F: Fn(u64) -> bool>(&self, tag: u64, matches: F, new_value: u64) -> Option<u64> {
        let tag = Self::normalize_tag(tag);
        // Held across the write so a concurrent resize cannot retire the
        // bucket array mid-update (see `insert`).
        let _state_guard = self.state.read();
        let guard = epoch::pin();
        let head = self.head_bucket(self.current(&guard), tag);
        head.lock(&self.pool);
        let mut cur = head;
        let result = loop {
            let mut found = None;
            for i in 0..SLOTS_PER_BUCKET {
                let (t, v) = cur.slot(&self.pool, i);
                if t == tag && matches(v) {
                    found = Some((i, v));
                    break;
                }
            }
            if let Some((i, old)) = found {
                cur.set_slot_value(&self.pool, i, new_value);
                break Some(old);
            }
            let next = cur.next(&self.pool);
            if next.is_null() {
                break None;
            }
            cur = BucketRef::new(next);
        };
        head.unlock(&self.pool);
        result
    }

    /// Conditional location CAS: replace the value stored under `tag` with
    /// `new` **only if** an entry currently holds exactly `old`. Returns
    /// `true` when the swap happened.
    ///
    /// This is the primitive the log-cleaning compactor swings relocated
    /// entries with: the equality predicate runs under the chain's
    /// head-bucket lock, so the check and the single-word write are atomic
    /// with respect to every other writer — a concurrent put/merge/delete
    /// that supersedes `old` makes the CAS fail instead of being silently
    /// overwritten by a stale relocation.
    pub fn cas_value(&self, tag: u64, old: u64, new: u64) -> bool {
        self.update(tag, |v| v == old, new).is_some()
    }

    /// Update the first matching entry or insert a new one. Returns the
    /// previous value when an update happened.
    pub fn upsert<F: Fn(u64) -> bool>(
        &self,
        tag: u64,
        matches: F,
        value: u64,
    ) -> Result<Option<u64>> {
        let norm = Self::normalize_tag(tag);
        self.maybe_resize()?;
        // Held across the write so a concurrent resize cannot retire the
        // bucket array mid-upsert (see `insert`).
        let state_guard = self.state.read();
        let guard = epoch::pin();
        let head = self.head_bucket(self.current(&guard), norm);
        head.lock(&self.pool);
        // Try update first.
        let mut cur = head;
        let mut updated = None;
        'outer: loop {
            for i in 0..SLOTS_PER_BUCKET {
                let (t, v) = cur.slot(&self.pool, i);
                if t == norm && matches(v) {
                    cur.set_slot_value(&self.pool, i, value);
                    updated = Some(v);
                    break 'outer;
                }
            }
            let next = cur.next(&self.pool);
            if next.is_null() {
                break;
            }
            cur = BucketRef::new(next);
        }
        let res = if updated.is_none() {
            self.insert_locked(&head, norm, value).map(|()| None)
        } else {
            Ok(updated)
        };
        head.unlock(&self.pool);
        if let Ok(None) = res {
            // Count while still excluding resize (see `insert`).
            self.len.fetch_add(1, Ordering::Relaxed);
        }
        drop(state_guard);
        res
    }

    /// Remove the first entry matching `(tag, matches)`, returning its value.
    pub fn remove<F: Fn(u64) -> bool>(&self, tag: u64, matches: F) -> Option<u64> {
        let tag = Self::normalize_tag(tag);
        // Held across the write so a concurrent resize cannot retire the
        // bucket array mid-remove (see `insert`).
        let state_guard = self.state.read();
        let guard = epoch::pin();
        let head = self.head_bucket(self.current(&guard), tag);
        head.lock(&self.pool);
        let mut cur = head;
        let result = loop {
            let mut found = None;
            for i in 0..SLOTS_PER_BUCKET {
                let (t, v) = cur.slot(&self.pool, i);
                if t == tag && matches(v) {
                    found = Some((i, v));
                    break;
                }
            }
            if let Some((i, old)) = found {
                cur.clear_slot(&self.pool, i);
                break Some(old);
            }
            let next = cur.next(&self.pool);
            if next.is_null() {
                break None;
            }
            cur = BucketRef::new(next);
        };
        head.unlock(&self.pool);
        if result.is_some() {
            // Count while still excluding resize (see `insert`).
            self.len.fetch_sub(1, Ordering::Relaxed);
        }
        drop(state_guard);
        result
    }

    /// Visit every `(tag, value)` entry. Takes a consistent per-chain
    /// snapshot; concurrent writers may or may not be observed. Lock-free:
    /// a resize concurrent with the scan retires the array being walked,
    /// but the epoch pin keeps it alive (and intact) until the scan ends.
    pub fn for_each<F: FnMut(u64, u64)>(&self, f: F) {
        self.for_each_in(&epoch::pin(), f)
    }

    /// [`Pclht::for_each`] under a caller-supplied guard.
    pub fn for_each_in<F: FnMut(u64, u64)>(&self, guard: &Guard, mut f: F) {
        let array = self.current(guard);
        for idx in 0..array.num_buckets {
            let mut cur = BucketRef::new(array.buckets_addr.offset(idx * BUCKET_BYTES));
            loop {
                let snap = cur.snapshot(&self.pool);
                for (t, v) in snap.slots {
                    if t != EMPTY_TAG {
                        f(t, v);
                    }
                }
                if snap.next.is_null() {
                    break;
                }
                cur = BucketRef::new(snap.next);
            }
        }
    }

    /// Perform the lookup the way a KVS node would over the network: one
    /// one-sided READ of a 64-byte bucket per chain hop, accounted against
    /// `nic`. Returns the value (if found) and the number of round trips.
    pub fn remote_get<F: Fn(u64) -> bool>(
        &self,
        nic: &Nic,
        tag: u64,
        matches: F,
    ) -> (Option<u64>, u32) {
        self.remote_get_in(&epoch::pin(), nic, tag, matches)
    }

    /// [`Pclht::remote_get`] under a caller-supplied guard (a KVS node
    /// serving a batch pins once and issues every one-sided lookup of the
    /// batch under the same guard).
    pub fn remote_get_in<F: Fn(u64) -> bool>(
        &self,
        guard: &Guard,
        nic: &Nic,
        tag: u64,
        matches: F,
    ) -> (Option<u64>, u32) {
        let tag = Self::normalize_tag(tag);
        let head = self.head_bucket(self.current(guard), tag);
        let mut rts = 0u32;
        let mut cur = head;
        loop {
            nic.one_sided_read(BUCKET_BYTES as usize);
            rts += 1;
            let snap = cur.snapshot(&self.pool);
            for (t, v) in snap.slots {
                if t == tag && matches(v) {
                    return (Some(v), rts);
                }
            }
            if snap.next.is_null() {
                return (None, rts);
            }
            cur = BucketRef::new(snap.next);
        }
    }

    fn maybe_resize(&self) -> Result<()> {
        if !self.config.auto_resize {
            return Ok(());
        }
        let guard = epoch::pin();
        let num_buckets = self.current(&guard).num_buckets;
        let capacity = num_buckets * SLOTS_PER_BUCKET as u64;
        if self.len() as f64 <= self.config.max_load_factor * capacity as f64 {
            return Ok(());
        }
        let state = self.state.write();
        // Someone else may have resized while we waited for the lock; the
        // write lock makes the re-loaded array stable for the whole resize.
        let old = self.current(&guard);
        if old.num_buckets != num_buckets {
            return Ok(());
        }
        let new_buckets = old.num_buckets * 2;
        let new_addr = Self::alloc_bucket_array(&self.pool, new_buckets)?;
        // Rehash every entry into the new array. Writers are excluded by
        // the state write-lock, so the old array is immutable; readers keep
        // traversing it lock-free until the swap below publishes the fully
        // populated replacement.
        let mut moved = 0u64;
        for idx in 0..old.num_buckets {
            let mut cur = BucketRef::new(old.buckets_addr.offset(idx * BUCKET_BYTES));
            loop {
                let snap = cur.snapshot(&self.pool);
                for (t, v) in snap.slots {
                    if t != EMPTY_TAG {
                        let new_idx = Self::bucket_index(t, new_buckets);
                        let head = BucketRef::new(new_addr.offset(new_idx * BUCKET_BYTES));
                        // No concurrent writers: safe to insert without locks.
                        self.insert_locked(&head, t, v)?;
                        moved += 1;
                    }
                }
                if snap.next.is_null() {
                    break;
                }
                cur = BucketRef::new(snap.next);
            }
        }
        debug_assert_eq!(moved, self.len());
        // SeqCst (not AcqRel): the epoch scheme's safety argument orders
        // this unlink against reader pins via the SeqCst total order; a
        // weaker swap would let a reader pinned at the retirement epoch + 1
        // load the pre-swap pointer without a happens-before edge.
        let retired = self.array.swap(
            Owned::new(BucketArray {
                buckets_addr: new_addr,
                num_buckets: new_buckets,
                pool: Arc::clone(&self.pool),
                retired: AtomicBool::new(false),
                freed: Arc::clone(&self.arrays_freed),
                overflow_buckets: Arc::clone(&self.overflow_buckets),
            }),
            Ordering::SeqCst,
            &guard,
        );
        // Readers pinned before the swap may still be walking the old
        // array: hand it to the epoch scheme instead of freeing it. Its
        // `Drop` (pmem free + drop counter) runs once every such guard has
        // unpinned.
        self.arrays_retired.fetch_add(1, Ordering::Relaxed);
        unsafe {
            retired.deref().retired.store(true, Ordering::Relaxed);
            guard.defer_destroy(retired);
        }
        drop(state);
        self.resizes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinomo_pmem::PmemConfig;
    use dinomo_simnet::FabricConfig;

    fn table(buckets: usize) -> Pclht {
        let pool = Arc::new(PmemPool::new(PmemConfig::with_capacity(32 << 20)));
        Pclht::new(
            pool,
            PclhtConfig {
                initial_buckets: buckets,
                ..PclhtConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn insert_get_update_remove() {
        let t = table(16);
        t.insert(1, 100).unwrap();
        t.insert(2, 200).unwrap();
        assert_eq!(t.get_first(1), Some(100));
        assert_eq!(t.get_first(2), Some(200));
        assert_eq!(t.get_first(3), None);
        assert_eq!(t.update(1, |_| true, 111), Some(100));
        assert_eq!(t.get_first(1), Some(111));
        assert_eq!(t.remove(1, |_| true), Some(111));
        assert_eq!(t.get_first(1), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn upsert_inserts_then_updates() {
        let t = table(16);
        assert_eq!(t.upsert(5, |_| true, 50).unwrap(), None);
        assert_eq!(t.upsert(5, |_| true, 51).unwrap(), Some(50));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get_first(5), Some(51));
    }

    #[test]
    fn cas_value_swaps_only_on_exact_match() {
        let t = table(16);
        t.insert(4, 400).unwrap();
        assert!(!t.cas_value(4, 401, 999), "stale expectation must fail");
        assert_eq!(t.get_first(4), Some(400));
        assert!(t.cas_value(4, 400, 999));
        assert_eq!(t.get_first(4), Some(999));
        assert!(!t.cas_value(4, 400, 1000), "second swap of old value fails");
        assert!(!t.cas_value(7, 0, 1), "missing tag fails");
    }

    #[test]
    fn zero_tag_is_usable() {
        let t = table(16);
        t.insert(0, 77).unwrap();
        assert_eq!(t.get_first(0), Some(77));
        assert_eq!(t.remove(0, |_| true), Some(77));
    }

    #[test]
    fn collisions_are_disambiguated_by_predicate() {
        let t = table(16);
        // Same tag, two different "locations".
        t.insert(9, 900).unwrap();
        t.insert(9, 901).unwrap();
        assert_eq!(t.get(9, |v| v == 901), Some(901));
        assert_eq!(t.get(9, |v| v == 900), Some(900));
        assert_eq!(t.get_all(9).len(), 2);
        assert_eq!(t.remove(9, |v| v == 900), Some(900));
        assert_eq!(t.get_all(9), vec![901]);
    }

    #[test]
    fn chains_grow_and_lookups_still_work() {
        let t = table(16);
        // Force many entries into 16 buckets without resize.
        let t = Pclht::new(
            Arc::clone(t.pool()),
            PclhtConfig {
                initial_buckets: 16,
                auto_resize: false,
                ..PclhtConfig::default()
            },
        )
        .unwrap();
        for i in 0..500u64 {
            t.insert(i, i * 10).unwrap();
        }
        for i in 0..500u64 {
            assert_eq!(t.get_first(i), Some(i * 10), "key {i}");
        }
        assert!(t.stats().overflow_buckets > 0);
        assert!(t.chain_length(3) >= 1);
    }

    #[test]
    fn auto_resize_keeps_chains_short() {
        let t = table(16);
        for i in 0..5_000u64 {
            t.insert(i, i).unwrap();
        }
        assert!(t.stats().resizes > 0);
        assert!(t.bucket_count() > 16);
        for i in (0..5_000u64).step_by(97) {
            assert_eq!(t.get_first(i), Some(i));
        }
        // Average chain length should be small after resizing.
        let mut total_chain = 0u64;
        for i in 0..100 {
            total_chain += t.chain_length(i) as u64;
        }
        assert!(total_chain <= 300, "chains too long: {total_chain}");
    }

    #[test]
    fn remote_get_counts_round_trips() {
        let t = table(16);
        t.insert(42, 4200).unwrap();
        let nic = Nic::new(FabricConfig::default());
        let (v, rts) = t.remote_get(&nic, 42, |_| true);
        assert_eq!(v, Some(4200));
        assert!(rts >= 1);
        assert_eq!(nic.snapshot().one_sided_reads, rts as u64);
        let (missing, miss_rts) = t.remote_get(&nic, 777, |_| true);
        assert_eq!(missing, None);
        assert!(miss_rts >= 1);
    }

    #[test]
    fn for_each_visits_everything() {
        let t = table(64);
        for i in 0..200u64 {
            t.insert(i, i + 1).unwrap();
        }
        let mut count = 0u64;
        let mut sum = 0u64;
        t.for_each(|_t, v| {
            count += 1;
            sum += v;
        });
        assert_eq!(count, 200);
        assert_eq!(sum, (1..=200u64).sum::<u64>());
    }

    #[test]
    fn concurrent_inserts_and_reads() {
        let pool = Arc::new(PmemPool::new(PmemConfig::with_capacity(64 << 20)));
        let t = Arc::new(
            Pclht::new(
                pool,
                PclhtConfig {
                    initial_buckets: 1024,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        let writers: Vec<_> = (0..4u64)
            .map(|w| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        let tag = w * 1_000_000 + i;
                        t.insert(tag, tag + 7).unwrap();
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..2u64)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        if let Some(v) = t.get_first(i) {
                            assert_eq!(v, i + 7);
                        }
                    }
                })
            })
            .collect();
        for h in writers.into_iter().chain(readers) {
            h.join().unwrap();
        }
        assert_eq!(t.len(), 8_000);
        for w in 0..4u64 {
            for i in (0..2_000u64).step_by(131) {
                let tag = w * 1_000_000 + i;
                assert_eq!(t.get_first(tag), Some(tag + 7));
            }
        }
    }

    /// Pin fresh guards and flush until `cond` holds (each long-lived pin
    /// caps the global epoch advance at one step, so a fresh pin per
    /// attempt is required); tolerates other tests pinning transiently.
    fn drain_epochs(cond: impl Fn() -> bool) -> bool {
        for _ in 0..10_000 {
            if cond() {
                return true;
            }
            crate::pin().flush();
            std::thread::yield_now();
        }
        cond()
    }

    #[test]
    fn concurrent_reads_survive_resizes() {
        // Small initial table so the writers force repeated resizes while
        // readers traverse lock-free; a reader's epoch pin must keep each
        // retired bucket array alive (not freed, not reused) until the
        // reader's traversal ends.
        let pool = Arc::new(PmemPool::new(PmemConfig::with_capacity(64 << 20)));
        let t = Arc::new(
            Pclht::new(
                pool,
                PclhtConfig {
                    initial_buckets: 16,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        let writers: Vec<_> = (0..2u64)
            .map(|w| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for i in 0..4_000u64 {
                        let tag = w * 1_000_000 + i;
                        t.insert(tag, tag + 7).unwrap();
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..2u64)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for _ in 0..4 {
                        for i in 0..4_000u64 {
                            if let Some(v) = t.get_first(i) {
                                assert_eq!(v, i + 7);
                            }
                        }
                    }
                })
            })
            .collect();
        for h in writers.into_iter().chain(readers) {
            h.join().unwrap();
        }
        assert!(t.stats().resizes > 0, "test must actually exercise resize");
        for w in 0..2u64 {
            for i in (0..4_000u64).step_by(97) {
                let tag = w * 1_000_000 + i;
                assert_eq!(t.get_first(tag), Some(tag + 7));
            }
        }
    }

    #[test]
    fn resize_storm_keeps_keys_and_reclaims_arrays() {
        use std::sync::atomic::AtomicBool;

        // Readers iterate continuously (point lookups + full scans) while
        // writers force repeated grows. The drop-counting `BucketArray`
        // payload then proves every retired generation was freed exactly
        // once — no use-after-free (a premature free would also blow up the
        // readers) and no leak.
        let pool = Arc::new(PmemPool::new(PmemConfig::with_capacity(128 << 20)));
        let t = Arc::new(
            Pclht::new(
                pool,
                PclhtConfig {
                    initial_buckets: 16,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        const WRITERS: u64 = 2;
        const KEYS_PER_WRITER: u64 = 6_000;
        let done = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    // Tags start at 1: tag 0 is remapped by normalize_tag,
                    // which would break the scan's value invariant below.
                    for i in 1..=KEYS_PER_WRITER {
                        let tag = w * 1_000_000 + i;
                        t.insert(tag, tag + 3).unwrap();
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..4u64)
            .map(|r| {
                let t = Arc::clone(&t);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    while !done.load(Ordering::Relaxed) {
                        if r % 2 == 0 {
                            // Point lookups across the key space.
                            for i in 1..=KEYS_PER_WRITER {
                                if let Some(v) = t.get_first(i) {
                                    assert_eq!(v, i + 3);
                                }
                            }
                        } else {
                            // Full scan: holds one pin across the whole
                            // array walk, the longest-lived guard here.
                            let mut bad = 0u64;
                            t.for_each(|tag, v| {
                                if v != tag + 3 {
                                    bad += 1;
                                }
                            });
                            assert_eq!(bad, 0, "scan observed a torn entry");
                        }
                    }
                })
            })
            .collect();
        for h in writers {
            h.join().unwrap();
        }
        done.store(true, Ordering::Relaxed);
        for h in readers {
            h.join().unwrap();
        }

        // No lost keys.
        for w in 0..WRITERS {
            for i in 1..=KEYS_PER_WRITER {
                let tag = w * 1_000_000 + i;
                assert_eq!(t.get_first(tag), Some(tag + 3), "key {tag} lost");
            }
        }
        let stats = t.stats();
        assert!(
            stats.resizes >= 3,
            "storm must force repeated grows, got {}",
            stats.resizes
        );
        assert_eq!(stats.arrays_retired, stats.resizes);
        assert!(
            stats.arrays_freed <= stats.arrays_retired,
            "freed more generations than were retired"
        );
        // Every guard has unpinned: all retired arrays must now reclaim.
        assert!(
            drain_epochs(|| {
                let s = t.stats();
                s.arrays_freed == s.arrays_retired
            }),
            "retired bucket arrays leaked: {:?}",
            t.stats()
        );
    }

    #[test]
    fn retired_generations_free_their_overflow_chains() {
        // Tags whose fibonacci-hash low 10 bits collide share one bucket
        // (and force an overflow chain) at every generation up to 1024
        // buckets, so each retired array drags a chain with it.
        let mut colliders: Vec<u64> = Vec::new();
        let want = (7u64.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17) & 1023;
        let mut t = 1u64;
        while colliders.len() < 40 {
            if (t.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17) & 1023 == want {
                colliders.push(t);
            }
            t += 1;
        }
        let pool = Arc::new(PmemPool::new(PmemConfig::with_capacity(32 << 20)));
        let table = Pclht::new(
            Arc::clone(&pool),
            PclhtConfig {
                initial_buckets: 16,
                ..Default::default()
            },
        )
        .unwrap();
        for (i, &tag) in colliders.iter().enumerate() {
            table.insert(tag, i as u64).unwrap();
        }
        for i in 0..300u64 {
            table.insert(2_000_000 + i, i).unwrap();
        }
        let stats = table.stats();
        assert!(stats.resizes >= 2, "must retire generations: {stats:?}");
        assert!(
            stats.overflow_buckets > 0,
            "colliders must chain: {stats:?}"
        );
        assert!(
            drain_epochs(|| {
                let s = table.stats();
                s.arrays_freed == s.arrays_retired
            }),
            "retired bucket arrays leaked: {:?}",
            table.stats()
        );
        // Exact accounting: every byte still allocated in the pool is the
        // live head array plus the live overflow chains — i.e. retired
        // generations freed their chained buckets, not just the head array.
        let s = table.stats();
        assert_eq!(
            pool.stats().allocated_bytes,
            (s.buckets + s.overflow_buckets) * BUCKET_BYTES,
            "retired generations leaked overflow buckets: {s:?}"
        );
        for (i, &tag) in colliders.iter().enumerate() {
            assert_eq!(table.get_first(tag), Some(i as u64));
        }
    }

    #[test]
    fn retired_arrays_free_only_after_guards_unpin() {
        let pool = Arc::new(PmemPool::new(PmemConfig::with_capacity(64 << 20)));
        let t = Arc::new(
            Pclht::new(
                pool,
                PclhtConfig {
                    initial_buckets: 16,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        // Pin before any resize: every array retired from here on must
        // outlive this guard.
        let guard = crate::pin();
        let writer = {
            let t = Arc::clone(&t);
            std::thread::spawn(move || {
                for i in 0..3_000u64 {
                    t.insert(i, i).unwrap();
                }
            })
        };
        writer.join().unwrap();
        let stats = t.stats();
        assert!(stats.arrays_retired >= 1, "writer must have resized");
        // Try hard to reclaim: with this thread still pinned the epoch can
        // advance at most once, so nothing retired after the pin may free.
        for _ in 0..64 {
            guard.flush();
        }
        assert_eq!(
            t.stats().arrays_freed,
            0,
            "a retired bucket array was freed while a guard was still pinned"
        );
        drop(guard);
        assert!(
            drain_epochs(|| {
                let s = t.stats();
                s.arrays_freed == s.arrays_retired
            }),
            "retired bucket arrays leaked after unpin: {:?}",
            t.stats()
        );
    }

    #[test]
    fn persistence_of_committed_inserts_survives_crash() {
        let pool = Arc::new(PmemPool::new(PmemConfig {
            capacity_bytes: 8 << 20,
            track_persistence: true,
            ..PmemConfig::default()
        }));
        let t = Pclht::new(Arc::clone(&pool), PclhtConfig::for_capacity(100)).unwrap();
        for i in 0..50u64 {
            t.insert(i, i * 3).unwrap();
        }
        pool.simulate_crash();
        for i in 0..50u64 {
            assert_eq!(t.get_first(i), Some(i * 3), "entry {i} lost after crash");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use dinomo_pmem::PmemConfig;
    use proptest::prelude::*;
    use std::collections::HashMap;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The table behaves like a HashMap under arbitrary interleavings of
        /// upsert/remove/get on a small key space.
        #[test]
        fn behaves_like_a_map(ops in proptest::collection::vec((0u64..32, 0u64..3, 1u64..1_000_000), 1..200)) {
            let pool = Arc::new(PmemPool::new(PmemConfig::with_capacity(16 << 20)));
            let t = Pclht::new(pool, PclhtConfig { initial_buckets: 16, ..Default::default() }).unwrap();
            let mut model: HashMap<u64, u64> = HashMap::new();
            for (key, op, val) in ops {
                match op {
                    0 => {
                        t.upsert(key, |_| true, val).unwrap();
                        model.insert(key, val);
                    }
                    1 => {
                        let got = t.remove(key, |_| true);
                        let expect = model.remove(&key);
                        prop_assert_eq!(got, expect);
                    }
                    _ => {
                        prop_assert_eq!(t.get_first(key), model.get(&key).copied());
                    }
                }
            }
            prop_assert_eq!(t.len(), model.len() as u64);
        }
    }
}
