//! The hash table: bucket array, chaining, snapshot reads, in-place writes,
//! resize, and the one-sided remote lookup path.

use crate::bucket::{BucketRef, BucketSnapshot, BUCKET_BYTES, EMPTY_TAG, SLOTS_PER_BUCKET};
use crate::Result;
use dinomo_pmem::{PmAddr, PmemPool};
use dinomo_simnet::Nic;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Configuration of a [`Pclht`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PclhtConfig {
    /// Number of buckets in the initial table (rounded up to a power of two).
    pub initial_buckets: usize,
    /// Resize when `len > load_factor * buckets * SLOTS_PER_BUCKET`.
    pub max_load_factor: f64,
    /// Whether the table resizes itself automatically.
    pub auto_resize: bool,
}

impl Default for PclhtConfig {
    fn default() -> Self {
        PclhtConfig {
            initial_buckets: 1024,
            max_load_factor: 0.75,
            auto_resize: true,
        }
    }
}

impl PclhtConfig {
    /// Config sized for roughly `expected_keys` keys without resizing.
    pub fn for_capacity(expected_keys: usize) -> Self {
        let buckets = (expected_keys / SLOTS_PER_BUCKET + 1)
            .next_power_of_two()
            .max(16);
        PclhtConfig {
            initial_buckets: buckets,
            ..PclhtConfig::default()
        }
    }
}

/// Operational statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PclhtStats {
    /// Number of entries.
    pub len: u64,
    /// Number of head buckets in the current table.
    pub buckets: u64,
    /// Number of overflow (chained) buckets allocated.
    pub overflow_buckets: u64,
    /// Number of resizes performed.
    pub resizes: u64,
    /// Total retries of the snapshot-read protocol.
    pub read_retries: u64,
}

#[derive(Debug, Clone, Copy)]
struct TableState {
    buckets_addr: PmAddr,
    num_buckets: u64,
}

/// The persistent cache-line hash table. See the crate docs for the design.
#[derive(Debug)]
pub struct Pclht {
    pool: Arc<PmemPool>,
    state: RwLock<TableState>,
    config: PclhtConfig,
    len: AtomicU64,
    overflow_buckets: AtomicU64,
    resizes: AtomicU64,
    read_retries: AtomicU64,
}

impl Pclht {
    /// Create an empty table backed by `pool`.
    pub fn new(pool: Arc<PmemPool>, config: PclhtConfig) -> Result<Self> {
        let num_buckets = config.initial_buckets.next_power_of_two().max(16) as u64;
        let buckets_addr = Self::alloc_bucket_array(&pool, num_buckets)?;
        Ok(Pclht {
            pool,
            state: RwLock::new(TableState {
                buckets_addr,
                num_buckets,
            }),
            config,
            len: AtomicU64::new(0),
            overflow_buckets: AtomicU64::new(0),
            resizes: AtomicU64::new(0),
            read_retries: AtomicU64::new(0),
        })
    }

    fn alloc_bucket_array(pool: &PmemPool, num_buckets: u64) -> Result<PmAddr> {
        let addr = pool.alloc(num_buckets * BUCKET_BYTES)?;
        for i in 0..num_buckets {
            BucketRef::new(addr.offset(i * BUCKET_BYTES)).init(pool);
        }
        Ok(addr)
    }

    /// The backing pool.
    pub fn pool(&self) -> &Arc<PmemPool> {
        &self.pool
    }

    /// Number of entries in the table.
    pub fn len(&self) -> u64 {
        self.len.load(Ordering::Relaxed)
    }

    /// `true` if the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of head buckets.
    pub fn bucket_count(&self) -> u64 {
        self.state.read().num_buckets
    }

    /// Snapshot statistics.
    pub fn stats(&self) -> PclhtStats {
        PclhtStats {
            len: self.len(),
            buckets: self.bucket_count(),
            overflow_buckets: self.overflow_buckets.load(Ordering::Relaxed),
            resizes: self.resizes.load(Ordering::Relaxed),
            read_retries: self.read_retries.load(Ordering::Relaxed),
        }
    }

    fn head_bucket(&self, state: &TableState, tag: u64) -> BucketRef {
        let idx = Self::bucket_index(tag, state.num_buckets);
        BucketRef::new(state.buckets_addr.offset(idx * BUCKET_BYTES))
    }

    fn bucket_index(tag: u64, num_buckets: u64) -> u64 {
        // Fibonacci hashing spreads sequential tags across the table.
        (tag.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17) & (num_buckets - 1)
    }

    fn normalize_tag(tag: u64) -> u64 {
        if tag == EMPTY_TAG {
            0x5bd1_e995_9e37_79b9
        } else {
            tag
        }
    }

    /// Take a consistent snapshot of the whole chain for `tag`.
    fn chain_snapshot(&self, state: &TableState, tag: u64) -> Vec<BucketSnapshot> {
        let head = self.head_bucket(state, tag);
        loop {
            let meta_before = head.meta(&self.pool);
            if BucketRef::is_locked(meta_before) {
                self.read_retries.fetch_add(1, Ordering::Relaxed);
                std::hint::spin_loop();
                continue;
            }
            let mut out = Vec::with_capacity(2);
            let mut cur = head;
            loop {
                let snap = cur.snapshot(&self.pool);
                let next = snap.next;
                out.push(snap);
                if next.is_null() {
                    break;
                }
                cur = BucketRef::new(next);
            }
            let meta_after = head.meta(&self.pool);
            if meta_after == meta_before {
                return out;
            }
            self.read_retries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Look up the first entry whose tag matches and whose value satisfies
    /// `matches`. Bucket-lock-free (snapshot protocol); the state read-lock
    /// is held across the traversal so a concurrent resize cannot free the
    /// bucket array mid-walk.
    pub fn get<F: Fn(u64) -> bool>(&self, tag: u64, matches: F) -> Option<u64> {
        let tag = Self::normalize_tag(tag);
        // Held across the traversal: resize() frees the old bucket array
        // right after swapping the state, so a reader that released the
        // lock early would walk freed (and possibly reused) memory.
        let state_guard = self.state.read();
        let state = *state_guard;
        for snap in self.chain_snapshot(&state, tag) {
            for (t, v) in snap.slots {
                if t == tag && matches(v) {
                    return Some(v);
                }
            }
        }
        None
    }

    /// Look up ignoring collisions (first entry with this tag).
    pub fn get_first(&self, tag: u64) -> Option<u64> {
        self.get(tag, |_| true)
    }

    /// All values stored under `tag` (collisions included).
    pub fn get_all(&self, tag: u64) -> Vec<u64> {
        let tag = Self::normalize_tag(tag);
        // Held across the traversal (see `get`).
        let state_guard = self.state.read();
        let state = *state_guard;
        let mut out = Vec::new();
        for snap in self.chain_snapshot(&state, tag) {
            for (t, v) in snap.slots {
                if t == tag {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Number of buckets a lookup of `tag` has to traverse (the `M` in the
    /// DAC cost analysis, i.e. the RTs a remote lookup would need before
    /// fetching the value).
    pub fn chain_length(&self, tag: u64) -> u32 {
        let tag = Self::normalize_tag(tag);
        // Held across the traversal (see `get`).
        let state_guard = self.state.read();
        let state = *state_guard;
        self.chain_snapshot(&state, tag).len() as u32
    }

    /// Insert a new entry. Does not check for duplicates (the caller decides
    /// whether to use [`Pclht::upsert`]).
    pub fn insert(&self, tag: u64, value: u64) -> Result<()> {
        let tag = Self::normalize_tag(tag);
        self.maybe_resize()?;
        // The guard is held across the bucket write so a concurrent resize
        // (which takes the state write-lock) cannot swap the bucket array
        // out from under this insert and silently drop it.
        let state_guard = self.state.read();
        let state = *state_guard;
        let head = self.head_bucket(&state, tag);
        head.lock(&self.pool);
        let res = self.insert_locked(&head, tag, value);
        head.unlock(&self.pool);
        if res.is_ok() {
            // Count while still excluding resize, so its bucket scan and
            // `len` can never disagree.
            self.len.fetch_add(1, Ordering::Relaxed);
        }
        drop(state_guard);
        res
    }

    fn insert_locked(&self, head: &BucketRef, tag: u64, value: u64) -> Result<()> {
        // Find the first empty slot anywhere in the chain.
        let mut cur = *head;
        loop {
            for i in 0..SLOTS_PER_BUCKET {
                let (t, _) = cur.slot(&self.pool, i);
                if t == EMPTY_TAG {
                    cur.set_slot(&self.pool, i, tag, value);
                    return Ok(());
                }
            }
            let next = cur.next(&self.pool);
            if next.is_null() {
                // Chain is full: allocate, initialize and persist a new
                // bucket *before* linking it (crash-safe ordering).
                let addr = self.pool.alloc(BUCKET_BYTES)?;
                let fresh = BucketRef::new(addr);
                fresh.init(&self.pool);
                fresh.set_slot(&self.pool, 0, tag, value);
                cur.set_next(&self.pool, addr);
                self.overflow_buckets.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
            cur = BucketRef::new(next);
        }
    }

    /// Update the first entry matching `(tag, matches)` in place, returning
    /// the previous value. The update is a single-word in-place write
    /// (log-free), persisted before returning.
    pub fn update<F: Fn(u64) -> bool>(&self, tag: u64, matches: F, new_value: u64) -> Option<u64> {
        let tag = Self::normalize_tag(tag);
        // Held across the write so a concurrent resize cannot retire the
        // bucket array mid-update (see `insert`).
        let state_guard = self.state.read();
        let state = *state_guard;
        let head = self.head_bucket(&state, tag);
        head.lock(&self.pool);
        let mut cur = head;
        let result = loop {
            let mut found = None;
            for i in 0..SLOTS_PER_BUCKET {
                let (t, v) = cur.slot(&self.pool, i);
                if t == tag && matches(v) {
                    found = Some((i, v));
                    break;
                }
            }
            if let Some((i, old)) = found {
                cur.set_slot_value(&self.pool, i, new_value);
                break Some(old);
            }
            let next = cur.next(&self.pool);
            if next.is_null() {
                break None;
            }
            cur = BucketRef::new(next);
        };
        head.unlock(&self.pool);
        result
    }

    /// Update the first matching entry or insert a new one. Returns the
    /// previous value when an update happened.
    pub fn upsert<F: Fn(u64) -> bool>(
        &self,
        tag: u64,
        matches: F,
        value: u64,
    ) -> Result<Option<u64>> {
        let norm = Self::normalize_tag(tag);
        self.maybe_resize()?;
        // Held across the write so a concurrent resize cannot retire the
        // bucket array mid-upsert (see `insert`).
        let state_guard = self.state.read();
        let state = *state_guard;
        let head = self.head_bucket(&state, norm);
        head.lock(&self.pool);
        // Try update first.
        let mut cur = head;
        let mut updated = None;
        'outer: loop {
            for i in 0..SLOTS_PER_BUCKET {
                let (t, v) = cur.slot(&self.pool, i);
                if t == norm && matches(v) {
                    cur.set_slot_value(&self.pool, i, value);
                    updated = Some(v);
                    break 'outer;
                }
            }
            let next = cur.next(&self.pool);
            if next.is_null() {
                break;
            }
            cur = BucketRef::new(next);
        }
        let res = if updated.is_none() {
            self.insert_locked(&head, norm, value).map(|()| None)
        } else {
            Ok(updated)
        };
        head.unlock(&self.pool);
        if let Ok(None) = res {
            // Count while still excluding resize (see `insert`).
            self.len.fetch_add(1, Ordering::Relaxed);
        }
        drop(state_guard);
        res
    }

    /// Remove the first entry matching `(tag, matches)`, returning its value.
    pub fn remove<F: Fn(u64) -> bool>(&self, tag: u64, matches: F) -> Option<u64> {
        let tag = Self::normalize_tag(tag);
        // Held across the write so a concurrent resize cannot retire the
        // bucket array mid-remove (see `insert`).
        let state_guard = self.state.read();
        let state = *state_guard;
        let head = self.head_bucket(&state, tag);
        head.lock(&self.pool);
        let mut cur = head;
        let result = loop {
            let mut found = None;
            for i in 0..SLOTS_PER_BUCKET {
                let (t, v) = cur.slot(&self.pool, i);
                if t == tag && matches(v) {
                    found = Some((i, v));
                    break;
                }
            }
            if let Some((i, old)) = found {
                cur.clear_slot(&self.pool, i);
                break Some(old);
            }
            let next = cur.next(&self.pool);
            if next.is_null() {
                break None;
            }
            cur = BucketRef::new(next);
        };
        head.unlock(&self.pool);
        if result.is_some() {
            // Count while still excluding resize (see `insert`).
            self.len.fetch_sub(1, Ordering::Relaxed);
        }
        drop(state_guard);
        result
    }

    /// Visit every `(tag, value)` entry. Takes a consistent per-chain
    /// snapshot; concurrent writers may or may not be observed.
    pub fn for_each<F: FnMut(u64, u64)>(&self, mut f: F) {
        // Held across the traversal (see `get`).
        let state_guard = self.state.read();
        let state = *state_guard;
        for idx in 0..state.num_buckets {
            let mut cur = BucketRef::new(state.buckets_addr.offset(idx * BUCKET_BYTES));
            loop {
                let snap = cur.snapshot(&self.pool);
                for (t, v) in snap.slots {
                    if t != EMPTY_TAG {
                        f(t, v);
                    }
                }
                if snap.next.is_null() {
                    break;
                }
                cur = BucketRef::new(snap.next);
            }
        }
    }

    /// Perform the lookup the way a KVS node would over the network: one
    /// one-sided READ of a 64-byte bucket per chain hop, accounted against
    /// `nic`. Returns the value (if found) and the number of round trips.
    pub fn remote_get<F: Fn(u64) -> bool>(
        &self,
        nic: &Nic,
        tag: u64,
        matches: F,
    ) -> (Option<u64>, u32) {
        let tag = Self::normalize_tag(tag);
        // Held across the traversal (see `get`).
        let state_guard = self.state.read();
        let state = *state_guard;
        let head = self.head_bucket(&state, tag);
        let mut rts = 0u32;
        let mut cur = head;
        loop {
            nic.one_sided_read(BUCKET_BYTES as usize);
            rts += 1;
            let snap = cur.snapshot(&self.pool);
            for (t, v) in snap.slots {
                if t == tag && matches(v) {
                    return (Some(v), rts);
                }
            }
            if snap.next.is_null() {
                return (None, rts);
            }
            cur = BucketRef::new(snap.next);
        }
    }

    fn maybe_resize(&self) -> Result<()> {
        if !self.config.auto_resize {
            return Ok(());
        }
        let (num_buckets, needs) = {
            let state = self.state.read();
            let capacity = state.num_buckets * SLOTS_PER_BUCKET as u64;
            let needs = self.len() as f64 > self.config.max_load_factor * capacity as f64;
            (state.num_buckets, needs)
        };
        if !needs {
            return Ok(());
        }
        let mut state = self.state.write();
        // Someone else may have resized while we waited for the lock.
        if state.num_buckets != num_buckets {
            return Ok(());
        }
        let new_buckets = state.num_buckets * 2;
        let new_addr = Self::alloc_bucket_array(&self.pool, new_buckets)?;
        // Rehash every entry into the new array. Writers and readers are
        // both excluded by the state write-lock (each holds the read lock
        // across its bucket access), so the old array has no users left by
        // the time it is freed after the swap.
        let old = *state;
        let mut moved = 0u64;
        for idx in 0..old.num_buckets {
            let mut cur = BucketRef::new(old.buckets_addr.offset(idx * BUCKET_BYTES));
            loop {
                let snap = cur.snapshot(&self.pool);
                for (t, v) in snap.slots {
                    if t != EMPTY_TAG {
                        let new_idx = Self::bucket_index(t, new_buckets);
                        let head = BucketRef::new(new_addr.offset(new_idx * BUCKET_BYTES));
                        // No concurrent writers: safe to insert without locks.
                        self.insert_locked(&head, t, v)?;
                        moved += 1;
                    }
                }
                if snap.next.is_null() {
                    break;
                }
                cur = BucketRef::new(snap.next);
            }
        }
        debug_assert_eq!(moved, self.len());
        let old_addr = state.buckets_addr;
        let old_n = state.num_buckets;
        *state = TableState {
            buckets_addr: new_addr,
            num_buckets: new_buckets,
        };
        drop(state);
        self.pool.free(old_addr, old_n * BUCKET_BYTES);
        self.resizes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinomo_pmem::PmemConfig;
    use dinomo_simnet::FabricConfig;

    fn table(buckets: usize) -> Pclht {
        let pool = Arc::new(PmemPool::new(PmemConfig::with_capacity(32 << 20)));
        Pclht::new(
            pool,
            PclhtConfig {
                initial_buckets: buckets,
                ..PclhtConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn insert_get_update_remove() {
        let t = table(16);
        t.insert(1, 100).unwrap();
        t.insert(2, 200).unwrap();
        assert_eq!(t.get_first(1), Some(100));
        assert_eq!(t.get_first(2), Some(200));
        assert_eq!(t.get_first(3), None);
        assert_eq!(t.update(1, |_| true, 111), Some(100));
        assert_eq!(t.get_first(1), Some(111));
        assert_eq!(t.remove(1, |_| true), Some(111));
        assert_eq!(t.get_first(1), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn upsert_inserts_then_updates() {
        let t = table(16);
        assert_eq!(t.upsert(5, |_| true, 50).unwrap(), None);
        assert_eq!(t.upsert(5, |_| true, 51).unwrap(), Some(50));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get_first(5), Some(51));
    }

    #[test]
    fn zero_tag_is_usable() {
        let t = table(16);
        t.insert(0, 77).unwrap();
        assert_eq!(t.get_first(0), Some(77));
        assert_eq!(t.remove(0, |_| true), Some(77));
    }

    #[test]
    fn collisions_are_disambiguated_by_predicate() {
        let t = table(16);
        // Same tag, two different "locations".
        t.insert(9, 900).unwrap();
        t.insert(9, 901).unwrap();
        assert_eq!(t.get(9, |v| v == 901), Some(901));
        assert_eq!(t.get(9, |v| v == 900), Some(900));
        assert_eq!(t.get_all(9).len(), 2);
        assert_eq!(t.remove(9, |v| v == 900), Some(900));
        assert_eq!(t.get_all(9), vec![901]);
    }

    #[test]
    fn chains_grow_and_lookups_still_work() {
        let t = table(16);
        // Force many entries into 16 buckets without resize.
        let t = Pclht::new(
            Arc::clone(t.pool()),
            PclhtConfig {
                initial_buckets: 16,
                auto_resize: false,
                ..PclhtConfig::default()
            },
        )
        .unwrap();
        for i in 0..500u64 {
            t.insert(i, i * 10).unwrap();
        }
        for i in 0..500u64 {
            assert_eq!(t.get_first(i), Some(i * 10), "key {i}");
        }
        assert!(t.stats().overflow_buckets > 0);
        assert!(t.chain_length(3) >= 1);
    }

    #[test]
    fn auto_resize_keeps_chains_short() {
        let t = table(16);
        for i in 0..5_000u64 {
            t.insert(i, i).unwrap();
        }
        assert!(t.stats().resizes > 0);
        assert!(t.bucket_count() > 16);
        for i in (0..5_000u64).step_by(97) {
            assert_eq!(t.get_first(i), Some(i));
        }
        // Average chain length should be small after resizing.
        let mut total_chain = 0u64;
        for i in 0..100 {
            total_chain += t.chain_length(i) as u64;
        }
        assert!(total_chain <= 300, "chains too long: {total_chain}");
    }

    #[test]
    fn remote_get_counts_round_trips() {
        let t = table(16);
        t.insert(42, 4200).unwrap();
        let nic = Nic::new(FabricConfig::default());
        let (v, rts) = t.remote_get(&nic, 42, |_| true);
        assert_eq!(v, Some(4200));
        assert!(rts >= 1);
        assert_eq!(nic.snapshot().one_sided_reads, rts as u64);
        let (missing, miss_rts) = t.remote_get(&nic, 777, |_| true);
        assert_eq!(missing, None);
        assert!(miss_rts >= 1);
    }

    #[test]
    fn for_each_visits_everything() {
        let t = table(64);
        for i in 0..200u64 {
            t.insert(i, i + 1).unwrap();
        }
        let mut count = 0u64;
        let mut sum = 0u64;
        t.for_each(|_t, v| {
            count += 1;
            sum += v;
        });
        assert_eq!(count, 200);
        assert_eq!(sum, (1..=200u64).sum::<u64>());
    }

    #[test]
    fn concurrent_inserts_and_reads() {
        let pool = Arc::new(PmemPool::new(PmemConfig::with_capacity(64 << 20)));
        let t = Arc::new(
            Pclht::new(
                pool,
                PclhtConfig {
                    initial_buckets: 1024,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        let writers: Vec<_> = (0..4u64)
            .map(|w| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        let tag = w * 1_000_000 + i;
                        t.insert(tag, tag + 7).unwrap();
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..2u64)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        if let Some(v) = t.get_first(i) {
                            assert_eq!(v, i + 7);
                        }
                    }
                })
            })
            .collect();
        for h in writers.into_iter().chain(readers) {
            h.join().unwrap();
        }
        assert_eq!(t.len(), 8_000);
        for w in 0..4u64 {
            for i in (0..2_000u64).step_by(131) {
                let tag = w * 1_000_000 + i;
                assert_eq!(t.get_first(tag), Some(tag + 7));
            }
        }
    }

    #[test]
    fn concurrent_reads_survive_resizes() {
        // Small initial table so the writers force repeated resizes while
        // readers traverse; a reader that released the state lock before
        // walking its chain would race the old bucket array being freed
        // (and reused) right after the swap.
        let pool = Arc::new(PmemPool::new(PmemConfig::with_capacity(64 << 20)));
        let t = Arc::new(
            Pclht::new(
                pool,
                PclhtConfig {
                    initial_buckets: 16,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        let writers: Vec<_> = (0..2u64)
            .map(|w| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for i in 0..4_000u64 {
                        let tag = w * 1_000_000 + i;
                        t.insert(tag, tag + 7).unwrap();
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..2u64)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for _ in 0..4 {
                        for i in 0..4_000u64 {
                            if let Some(v) = t.get_first(i) {
                                assert_eq!(v, i + 7);
                            }
                        }
                    }
                })
            })
            .collect();
        for h in writers.into_iter().chain(readers) {
            h.join().unwrap();
        }
        assert!(t.stats().resizes > 0, "test must actually exercise resize");
        for w in 0..2u64 {
            for i in (0..4_000u64).step_by(97) {
                let tag = w * 1_000_000 + i;
                assert_eq!(t.get_first(tag), Some(tag + 7));
            }
        }
    }

    #[test]
    fn persistence_of_committed_inserts_survives_crash() {
        let pool = Arc::new(PmemPool::new(PmemConfig {
            capacity_bytes: 8 << 20,
            track_persistence: true,
            ..PmemConfig::default()
        }));
        let t = Pclht::new(Arc::clone(&pool), PclhtConfig::for_capacity(100)).unwrap();
        for i in 0..50u64 {
            t.insert(i, i * 3).unwrap();
        }
        pool.simulate_crash();
        for i in 0..50u64 {
            assert_eq!(t.get_first(i), Some(i * 3), "entry {i} lost after crash");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use dinomo_pmem::PmemConfig;
    use proptest::prelude::*;
    use std::collections::HashMap;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The table behaves like a HashMap under arbitrary interleavings of
        /// upsert/remove/get on a small key space.
        #[test]
        fn behaves_like_a_map(ops in proptest::collection::vec((0u64..32, 0u64..3, 1u64..1_000_000), 1..200)) {
            let pool = Arc::new(PmemPool::new(PmemConfig::with_capacity(16 << 20)));
            let t = Pclht::new(pool, PclhtConfig { initial_buckets: 16, ..Default::default() }).unwrap();
            let mut model: HashMap<u64, u64> = HashMap::new();
            for (key, op, val) in ops {
                match op {
                    0 => {
                        t.upsert(key, |_| true, val).unwrap();
                        model.insert(key, val);
                    }
                    1 => {
                        let got = t.remove(key, |_| true);
                        let expect = model.remove(&key);
                        prop_assert_eq!(got, expect);
                    }
                    _ => {
                        prop_assert_eq!(t.get_first(key), model.get(&key).copied());
                    }
                }
            }
            prop_assert_eq!(t.len(), model.len() as u64);
        }
    }
}
