//! # dinomo-pclht — Persistent Cache-Line Hash Table
//!
//! Dinomo's metadata index on DPM is RECIPE's P-CLHT (Persistent Cache Line
//! Hash Table): a chaining hash table whose buckets are exactly one cache
//! line, giving
//!
//! * **lock-free reads** — readers take an atomic snapshot of a bucket chain
//!   validated with a per-bucket version word, so KVS nodes never hold locks
//!   across the network and a crashed reader cannot block anyone,
//! * **log-free in-place writes** — writers lock only the head bucket of a
//!   chain, update slots in place, and flush a single cache line in the
//!   common case, and
//! * **a one-sided lookup path** — [`Pclht::remote_get`] performs the lookup
//!   the way a KVS node would over RDMA (one one-sided READ per bucket in the
//!   chain) and reports how many round trips it used.  This is the `M` in the
//!   paper's DAC analysis: a full cache miss costs `M` RTs, a shortcut hit
//!   costs 1, a value hit costs 0.
//!
//! The table maps a 64-bit *tag* (a hash of the application key) to a 64-bit
//! *value* (a packed pointer into the DPM log).  Tag collisions are resolved
//! by the caller through a predicate on the stored value — the DPM layer
//! verifies the full key stored alongside the value in the log entry.
//!
//! Buckets live in the [`dinomo_pmem::PmemPool`], so the index survives
//! simulated crashes (given the persistence ordering implemented here) and
//! can be shared by DPM processor threads and (simulated) one-sided readers.

#![warn(missing_docs)]

pub mod bucket;
pub mod table;

pub use table::{Pclht, PclhtConfig, PclhtStats};

/// Result alias for table operations (errors come from the pmem allocator).
pub type Result<T> = std::result::Result<T, dinomo_pmem::PmemError>;
