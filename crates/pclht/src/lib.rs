//! # dinomo-pclht — Persistent Cache-Line Hash Table
//!
//! Dinomo's metadata index on DPM is RECIPE's P-CLHT (Persistent Cache Line
//! Hash Table): a chaining hash table whose buckets are exactly one cache
//! line, giving
//!
//! * **lock-free reads** — readers take an atomic snapshot of a bucket chain
//!   validated with a per-bucket version word, so KVS nodes never hold locks
//!   across the network and a crashed reader cannot block anyone. Reads stay
//!   lock-free *across resizes* through epoch-based reclamation: see
//!   [Epoch guards](#epoch-guards) below,
//! * **log-free in-place writes** — writers lock only the head bucket of a
//!   chain, update slots in place, and flush a single cache line in the
//!   common case, and
//! * **a one-sided lookup path** — [`Pclht::remote_get`] performs the lookup
//!   the way a KVS node would over RDMA (one one-sided READ per bucket in the
//!   chain) and reports how many round trips it used.  This is the `M` in the
//!   paper's DAC analysis: a full cache miss costs `M` RTs, a shortcut hit
//!   costs 1, a value hit costs 0.
//!
//! The table maps a 64-bit *tag* (a hash of the application key) to a 64-bit
//! *value* (a packed pointer into the DPM log).  Tag collisions are resolved
//! by the caller through a predicate on the stored value — the DPM layer
//! verifies the full key stored alongside the value in the log entry.
//!
//! Buckets live in the [`dinomo_pmem::PmemPool`], so the index survives
//! simulated crashes (given the persistence ordering implemented here) and
//! can be shared by DPM processor threads and (simulated) one-sided readers.
//!
//! # Epoch guards
//!
//! A resize swaps in a rebuilt bucket array and retires the old one to an
//! epoch-based reclamation scheme ([`crossbeam::epoch`]). Every read path
//! pins an epoch for the duration of its traversal — implicitly, or
//! explicitly via [`pin`] plus the `*_in` method variants
//! ([`Pclht::get_in`], [`Pclht::get_all_in`], [`Pclht::chain_length_in`],
//! [`Pclht::for_each_in`], [`Pclht::remote_get_in`]) when a caller wants to
//! amortize one pin over a batch of lookups.
//!
//! **What a pinned [`Guard`] protects:** every bucket array the table
//! publishes (current or since-retired) stays allocated and intact while
//! the guard lives, so traversals never touch freed pmem.
//!
//! **What it does *not* protect:**
//!
//! * It is not a snapshot or a read transaction — concurrent writers keep
//!   mutating slots in place, and two lookups under one guard can observe
//!   different values (per-chain consistency comes from the bucket version
//!   protocol, not from the guard).
//! * It does not pin the *current* array: a lookup after a concurrent
//!   resize may traverse the new array even though the guard predates it.
//! * It does not protect log entries or any other pmem the stored `u64`
//!   values point at — only the index's own bucket arrays.
//!
//! Guards are cheap (two thread-local atomic stores) but **pin global
//! reclamation**: a guard parked for seconds makes every retired bucket
//! array in the process linger, so scope guards to a batch, not a session.
//!
//! ```
//! use dinomo_pclht::{pin, Pclht, PclhtConfig};
//! use dinomo_pmem::{PmemConfig, PmemPool};
//! use std::sync::Arc;
//!
//! let pool = Arc::new(PmemPool::new(PmemConfig::with_capacity(8 << 20)));
//! let table = Pclht::new(pool, PclhtConfig::for_capacity(1_000)).unwrap();
//! for i in 0..100 {
//!     table.insert(i, i * 10).unwrap();
//! }
//!
//! // One pin amortized over a whole batch of lock-free lookups.
//! let guard = pin();
//! let hits = (0..100).filter(|&i| table.get_in(&guard, i, |_| true).is_some()).count();
//! assert_eq!(hits, 100);
//! drop(guard); // let retired arrays reclaim
//! ```

#![warn(missing_docs)]

pub mod bucket;
pub mod table;

pub use crossbeam::epoch::Guard;
pub use table::{pin, Pclht, PclhtConfig, PclhtStats};

/// Result alias for table operations (errors come from the pmem allocator).
pub type Result<T> = std::result::Result<T, dinomo_pmem::PmemError>;
