//! On-PM bucket layout.
//!
//! A bucket is exactly one 64-byte cache line (eight 8-byte words):
//!
//! ```text
//! word 0: [ version (63 bits) | writer-lock bit ]
//! word 1: tag of slot 0        word 2: value of slot 0
//! word 3: tag of slot 1        word 4: value of slot 1
//! word 5: tag of slot 2        word 6: value of slot 2
//! word 7: address of the next bucket in the chain (0 = end of chain)
//! ```
//!
//! The paper notes that each access/update touches a single cache line in the
//! common case; this layout preserves that property (a lookup that hits the
//! head bucket reads one line; an in-place update flushes one line).

use dinomo_pmem::{PmAddr, PmemPool};

/// Number of (tag, value) slots per bucket. Matches CLHT's 3-per-cache-line.
pub const SLOTS_PER_BUCKET: usize = 3;
/// Size of a bucket in bytes (one cache line).
pub const BUCKET_BYTES: u64 = 64;
/// Tag value meaning "empty slot".
pub const EMPTY_TAG: u64 = 0;

/// Word offsets within a bucket.
const META_WORD: u64 = 0;
const NEXT_WORD: u64 = 7;

/// A decoded snapshot of one bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketSnapshot {
    /// Version word (lock bit stripped).
    pub version: u64,
    /// `(tag, value)` pairs, one per slot; `tag == EMPTY_TAG` means empty.
    pub slots: [(u64, u64); SLOTS_PER_BUCKET],
    /// Next bucket in the chain, or `PmAddr::NULL`.
    pub next: PmAddr,
}

/// Helper for manipulating one bucket stored in a pmem pool.
#[derive(Debug, Clone, Copy)]
pub struct BucketRef {
    addr: PmAddr,
}

impl BucketRef {
    /// Wrap the bucket at `addr`.
    pub fn new(addr: PmAddr) -> Self {
        BucketRef { addr }
    }

    /// Address of the bucket.
    pub fn addr(&self) -> PmAddr {
        self.addr
    }

    fn word(&self, idx: u64) -> PmAddr {
        self.addr.offset(idx * 8)
    }

    /// Zero the bucket (used right after allocation, before linking).
    pub fn init(&self, pool: &PmemPool) {
        for w in 0..8 {
            pool.write_u64(self.word(w), 0);
        }
        pool.persist(self.addr, BUCKET_BYTES);
    }

    /// Read the meta word (version | lock bit).
    pub fn meta(&self, pool: &PmemPool) -> u64 {
        pool.read_u64(self.word(META_WORD))
    }

    /// `true` if the writer lock bit is set in `meta`.
    pub fn is_locked(meta: u64) -> bool {
        meta & 1 == 1
    }

    /// Try to acquire the writer lock; returns `false` if already locked.
    pub fn try_lock(&self, pool: &PmemPool) -> bool {
        let meta = self.meta(pool);
        if Self::is_locked(meta) {
            return false;
        }
        pool.cas_u64(self.word(META_WORD), meta, meta | 1).is_ok()
    }

    /// Spin until the writer lock is acquired.
    pub fn lock(&self, pool: &PmemPool) {
        loop {
            if self.try_lock(pool) {
                return;
            }
            std::hint::spin_loop();
        }
    }

    /// Release the writer lock, bumping the version so concurrent readers
    /// retry their snapshot.
    pub fn unlock(&self, pool: &PmemPool) {
        let meta = self.meta(pool);
        debug_assert!(Self::is_locked(meta), "unlock of an unlocked bucket");
        // Clear the lock bit and advance the version (versions move by 2 so
        // the lock bit never aliases into them).
        pool.write_u64(self.word(META_WORD), (meta & !1) + 2);
        pool.persist(self.addr, 8);
    }

    /// Read slot `i` (tag, value) non-atomically (caller handles snapshots).
    pub fn slot(&self, pool: &PmemPool, i: usize) -> (u64, u64) {
        debug_assert!(i < SLOTS_PER_BUCKET);
        let tag = pool.read_u64(self.word(1 + 2 * i as u64));
        let val = pool.read_u64(self.word(2 + 2 * i as u64));
        (tag, val)
    }

    /// Write slot `i`. Value is written before tag so a concurrent reader
    /// never observes a tag with a stale value.
    pub fn set_slot(&self, pool: &PmemPool, i: usize, tag: u64, value: u64) {
        debug_assert!(i < SLOTS_PER_BUCKET);
        pool.write_u64(self.word(2 + 2 * i as u64), value);
        pool.write_u64(self.word(1 + 2 * i as u64), tag);
        pool.persist(self.addr, BUCKET_BYTES);
    }

    /// Overwrite only the value of slot `i` (in-place update).
    pub fn set_slot_value(&self, pool: &PmemPool, i: usize, value: u64) {
        debug_assert!(i < SLOTS_PER_BUCKET);
        pool.write_u64(self.word(2 + 2 * i as u64), value);
        pool.persist(self.word(2 + 2 * i as u64), 8);
    }

    /// Clear slot `i`.
    pub fn clear_slot(&self, pool: &PmemPool, i: usize) {
        pool.write_u64(self.word(1 + 2 * i as u64), EMPTY_TAG);
        pool.write_u64(self.word(2 + 2 * i as u64), 0);
        pool.persist(self.addr, BUCKET_BYTES);
    }

    /// Read the next-bucket pointer.
    pub fn next(&self, pool: &PmemPool) -> PmAddr {
        PmAddr(pool.read_u64(self.word(NEXT_WORD)))
    }

    /// Link `next` as the chain continuation (persisted).
    pub fn set_next(&self, pool: &PmemPool, next: PmAddr) {
        pool.write_u64(self.word(NEXT_WORD), next.0);
        pool.persist(self.word(NEXT_WORD), 8);
    }

    /// Take a consistent-enough snapshot of the bucket's slots and next
    /// pointer (the chain-level snapshot protocol is in `table.rs`).
    pub fn snapshot(&self, pool: &PmemPool) -> BucketSnapshot {
        let meta = self.meta(pool);
        let mut slots = [(EMPTY_TAG, 0u64); SLOTS_PER_BUCKET];
        for (i, s) in slots.iter_mut().enumerate() {
            *s = self.slot(pool, i);
        }
        BucketSnapshot {
            version: meta & !1,
            slots,
            next: self.next(pool),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinomo_pmem::{PmemConfig, PmemPool};

    fn pool_and_bucket() -> (PmemPool, BucketRef) {
        let pool = PmemPool::new(PmemConfig::small_for_tests());
        let addr = pool.alloc(BUCKET_BYTES).unwrap();
        let b = BucketRef::new(addr);
        b.init(&pool);
        (pool, b)
    }

    #[test]
    fn slots_round_trip() {
        let (pool, b) = pool_and_bucket();
        b.set_slot(&pool, 0, 11, 100);
        b.set_slot(&pool, 2, 33, 300);
        assert_eq!(b.slot(&pool, 0), (11, 100));
        assert_eq!(b.slot(&pool, 1), (EMPTY_TAG, 0));
        assert_eq!(b.slot(&pool, 2), (33, 300));
        b.clear_slot(&pool, 0);
        assert_eq!(b.slot(&pool, 0), (EMPTY_TAG, 0));
    }

    #[test]
    fn lock_unlock_bumps_version() {
        let (pool, b) = pool_and_bucket();
        let v0 = b.meta(&pool);
        b.lock(&pool);
        assert!(BucketRef::is_locked(b.meta(&pool)));
        assert!(!b.try_lock(&pool), "second lock must fail");
        b.unlock(&pool);
        let v1 = b.meta(&pool);
        assert!(!BucketRef::is_locked(v1));
        assert!(v1 > v0);
    }

    #[test]
    fn next_pointer_links() {
        let (pool, b) = pool_and_bucket();
        assert!(b.next(&pool).is_null());
        let other = pool.alloc(BUCKET_BYTES).unwrap();
        b.set_next(&pool, other);
        assert_eq!(b.next(&pool), other);
    }

    #[test]
    fn snapshot_reflects_contents() {
        let (pool, b) = pool_and_bucket();
        b.set_slot(&pool, 1, 7, 70);
        let s = b.snapshot(&pool);
        assert_eq!(s.slots[1], (7, 70));
        assert!(s.next.is_null());
        assert_eq!(s.version % 2, 0);
    }
}
