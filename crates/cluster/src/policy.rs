//! The M-node policy engine (§3.5, Table 4).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Service-level objectives and thresholds driving reconfiguration.
///
/// The paper's experiments use an average-latency SLO of 1.2 ms, a p99 SLO of
/// 16 ms, an over-utilization lower bound of 20 % occupancy, an
/// under-utilization upper bound of 10 %, a key-hotness bound of mean + 3σ
/// and a key-coldness bound of mean − 1σ, with a 90 s grace period.  The
/// simulation compresses time, so the defaults here are expressed in the same
/// units but calibrated by the harness.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloConfig {
    /// Average-latency SLO in milliseconds.
    pub avg_latency_ms: f64,
    /// Tail (p99) latency SLO in milliseconds.
    pub tail_latency_ms: f64,
    /// Over-utilization lower bound: if *every* node's occupancy exceeds
    /// this, the cluster is considered over-utilized.
    pub overutil_lower_bound: f64,
    /// Under-utilization upper bound: a node below this occupancy is a
    /// candidate for removal.
    pub underutil_upper_bound: f64,
    /// A key is hot if its access count exceeds mean + `hot_sigma` · σ.
    pub hot_sigma: f64,
    /// A key is cold if its access count falls below mean − `cold_sigma` · σ.
    pub cold_sigma: f64,
    /// Epochs to wait after a reconfiguration before acting again.
    pub grace_epochs: usize,
    /// Maximum number of nodes the policy may grow the cluster to.
    pub max_nodes: usize,
    /// Minimum number of nodes the policy may shrink the cluster to.
    pub min_nodes: usize,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            avg_latency_ms: 1.2,
            tail_latency_ms: 16.0,
            overutil_lower_bound: 0.20,
            underutil_upper_bound: 0.10,
            hot_sigma: 3.0,
            cold_sigma: 1.0,
            grace_epochs: 3,
            max_nodes: 16,
            min_nodes: 1,
        }
    }
}

/// What the M-node observed over the last monitoring epoch.
#[derive(Debug, Clone, Default)]
pub struct EpochObservation {
    /// Average request latency over the epoch, milliseconds.
    pub avg_latency_ms: f64,
    /// 99th-percentile request latency over the epoch, milliseconds.
    pub p99_latency_ms: f64,
    /// `(node id, occupancy in [0, 1])` for every live node.
    pub occupancy: Vec<(u32, f64)>,
    /// Sampled access counts per key over the epoch.
    pub key_frequencies: HashMap<Vec<u8>, u64>,
    /// Keys currently selectively replicated, with their factors.
    pub replicated_keys: Vec<(Vec<u8>, usize)>,
    /// Whether the target system supports selective replication.
    pub supports_replication: bool,
    /// Epochs elapsed since the last reconfiguration action.
    pub epochs_since_last_action: usize,
}

/// A reconfiguration decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyAction {
    /// Add one KVS node (cluster over-utilized and SLO violated).
    AddNode,
    /// Remove the given under-utilized node.
    RemoveNode(u32),
    /// Increase the replication factor of a hot key.
    ReplicateKey(Vec<u8>, usize),
    /// Collapse a cold replicated key back to one owner.
    DereplicateKey(Vec<u8>),
}

/// The policy engine. Stateless apart from the thresholds; the caller feeds
/// it one observation per monitoring epoch.
#[derive(Debug, Clone, Default)]
pub struct PolicyEngine {
    config: SloConfig,
}

impl PolicyEngine {
    /// Create an engine with the given thresholds.
    pub fn new(config: SloConfig) -> Self {
        PolicyEngine { config }
    }

    /// The thresholds in use.
    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    fn hot_and_cold(&self, freqs: &HashMap<Vec<u8>, u64>) -> (Vec<Vec<u8>>, f64, f64) {
        if freqs.is_empty() {
            return (Vec::new(), 0.0, 0.0);
        }
        let counts: Vec<f64> = freqs.values().map(|&c| c as f64).collect();
        let mean = counts.iter().sum::<f64>() / counts.len() as f64;
        let var = counts.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / counts.len() as f64;
        let std = var.sqrt();
        let hot_bound = mean + self.config.hot_sigma * std;
        let mut hot: Vec<Vec<u8>> = freqs
            .iter()
            .filter(|(_, &c)| std > 0.0 && c as f64 > hot_bound)
            .map(|(k, _)| k.clone())
            .collect();
        hot.sort();
        (hot, mean, std)
    }

    /// Apply the Table 4 rules to one epoch's observation.
    pub fn decide(&self, obs: &EpochObservation) -> Vec<PolicyAction> {
        if obs.epochs_since_last_action < self.config.grace_epochs {
            return Vec::new();
        }
        let num_nodes = obs.occupancy.len();
        if num_nodes == 0 {
            return Vec::new();
        }
        let slo_violated = obs.avg_latency_ms > self.config.avg_latency_ms
            || obs.p99_latency_ms > self.config.tail_latency_ms;
        let min_occupancy = obs
            .occupancy
            .iter()
            .map(|(_, o)| *o)
            .fold(f64::INFINITY, f64::min);
        let (hot_keys, mean, std) = self.hot_and_cold(&obs.key_frequencies);

        if slo_violated {
            // SLO violated + every node busy -> add a node.
            if min_occupancy > self.config.overutil_lower_bound {
                if num_nodes < self.config.max_nodes {
                    return vec![PolicyAction::AddNode];
                }
                return Vec::new();
            }
            // SLO violated but nodes are not busy -> a few hot keys are the
            // bottleneck: grow their replication factor.
            if obs.supports_replication && !hot_keys.is_empty() {
                let mut actions = Vec::new();
                for key in hot_keys {
                    let current = obs
                        .replicated_keys
                        .iter()
                        .find(|(k, _)| *k == key)
                        .map_or(1, |(_, f)| *f);
                    if current < num_nodes {
                        let next = (current * 2).min(num_nodes);
                        actions.push(PolicyAction::ReplicateKey(key, next));
                    }
                }
                return actions;
            }
            return Vec::new();
        }

        // SLOs met: release under-utilized resources.
        if let Some((id, _)) = obs
            .occupancy
            .iter()
            .filter(|(_, o)| *o < self.config.underutil_upper_bound)
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        {
            if num_nodes > self.config.min_nodes {
                return vec![PolicyAction::RemoveNode(*id)];
            }
        }
        // SLOs met and nothing to remove: de-replicate keys that went cold.
        if obs.supports_replication {
            let cold_bound = mean - self.config.cold_sigma * std;
            let mut actions = Vec::new();
            for (key, factor) in &obs.replicated_keys {
                if *factor > 1 {
                    let freq = obs.key_frequencies.get(key).copied().unwrap_or(0) as f64;
                    if freq < cold_bound || freq == 0.0 {
                        actions.push(PolicyAction::DereplicateKey(key.clone()));
                    }
                }
            }
            return actions;
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(avg: f64, p99: f64, occupancy: &[f64]) -> EpochObservation {
        EpochObservation {
            avg_latency_ms: avg,
            p99_latency_ms: p99,
            occupancy: occupancy
                .iter()
                .enumerate()
                .map(|(i, &o)| (i as u32, o))
                .collect(),
            supports_replication: true,
            epochs_since_last_action: 100,
            ..EpochObservation::default()
        }
    }

    #[test]
    fn slo_violation_with_busy_nodes_adds_a_node() {
        let engine = PolicyEngine::new(SloConfig::default());
        let decision = engine.decide(&obs(5.0, 5.0, &[0.9, 0.8]));
        assert_eq!(decision, vec![PolicyAction::AddNode]);
    }

    #[test]
    fn grace_period_suppresses_actions() {
        let engine = PolicyEngine::new(SloConfig::default());
        let mut o = obs(5.0, 5.0, &[0.9, 0.8]);
        o.epochs_since_last_action = 0;
        assert!(engine.decide(&o).is_empty());
    }

    #[test]
    fn max_nodes_caps_growth() {
        let engine = PolicyEngine::new(SloConfig {
            max_nodes: 2,
            ..SloConfig::default()
        });
        assert!(engine.decide(&obs(5.0, 5.0, &[0.9, 0.8])).is_empty());
    }

    #[test]
    fn slo_violation_with_idle_nodes_replicates_hot_keys() {
        let engine = PolicyEngine::new(SloConfig::default());
        let mut o = obs(5.0, 5.0, &[0.05, 0.06, 0.05, 0.05]);
        // One very hot key among many cold ones.
        for i in 0..100u32 {
            o.key_frequencies.insert(format!("k{i}").into_bytes(), 2);
        }
        o.key_frequencies.insert(b"hot".to_vec(), 10_000);
        let decision = engine.decide(&o);
        assert_eq!(decision.len(), 1);
        match &decision[0] {
            PolicyAction::ReplicateKey(key, factor) => {
                assert_eq!(key, &b"hot".to_vec());
                assert!(*factor >= 2);
            }
            other => panic!("unexpected action {other:?}"),
        }
        // A system without selective replication gets no such action.
        o.supports_replication = false;
        assert!(engine.decide(&o).is_empty());
    }

    #[test]
    fn replication_factor_grows_until_cluster_size() {
        let engine = PolicyEngine::new(SloConfig::default());
        let mut o = obs(5.0, 5.0, &[0.05; 4]);
        for i in 0..100u32 {
            o.key_frequencies.insert(format!("k{i}").into_bytes(), 2);
        }
        o.key_frequencies.insert(b"hot".to_vec(), 10_000);
        o.replicated_keys = vec![(b"hot".to_vec(), 2)];
        let decision = engine.decide(&o);
        assert_eq!(
            decision,
            vec![PolicyAction::ReplicateKey(b"hot".to_vec(), 4)]
        );
        // Fully replicated: no further action.
        o.replicated_keys = vec![(b"hot".to_vec(), 4)];
        assert!(engine.decide(&o).is_empty());
    }

    #[test]
    fn met_slo_with_idle_node_removes_it() {
        let engine = PolicyEngine::new(SloConfig::default());
        let decision = engine.decide(&obs(0.1, 0.5, &[0.4, 0.03]));
        assert_eq!(decision, vec![PolicyAction::RemoveNode(1)]);
        // But never below min_nodes.
        let engine = PolicyEngine::new(SloConfig {
            min_nodes: 2,
            ..SloConfig::default()
        });
        assert!(engine.decide(&obs(0.1, 0.5, &[0.4, 0.03])).is_empty());
    }

    #[test]
    fn met_slo_dereplicates_cold_keys() {
        let engine = PolicyEngine::new(SloConfig::default());
        let mut o = obs(0.1, 0.5, &[0.4, 0.5]);
        for i in 0..50u32 {
            o.key_frequencies
                .insert(format!("k{i}").into_bytes(), 1_000);
        }
        o.key_frequencies.insert(b"was-hot".to_vec(), 1);
        o.replicated_keys = vec![(b"was-hot".to_vec(), 4)];
        let decision = engine.decide(&o);
        assert_eq!(
            decision,
            vec![PolicyAction::DereplicateKey(b"was-hot".to_vec())]
        );
    }

    #[test]
    fn healthy_cluster_takes_no_action() {
        let engine = PolicyEngine::new(SloConfig::default());
        assert!(engine.decide(&obs(0.1, 0.5, &[0.4, 0.5])).is_empty());
        assert!(engine.decide(&EpochObservation::default()).is_empty());
    }
}
