//! A uniform interface over the systems under test.

use dinomo_core::{Kvs, KvsStats, Result};
use dinomo_workload::Operation;

/// A per-thread session (client handle) against a store.
pub trait KvSession: Send {
    /// Execute one operation, returning the read value for lookups.
    fn execute(&self, op: &Operation) -> Result<Option<Vec<u8>>>;

    /// Execute a batch of operations, returning one result per op in op
    /// order. The default loops over [`KvSession::execute`]; stores with a
    /// native batched path (Dinomo's owner-grouped `KvsClient::execute`)
    /// override it.
    fn execute_batch(&self, ops: &[Operation]) -> Vec<Result<Option<Vec<u8>>>> {
        ops.iter().map(|op| self.execute(op)).collect()
    }
}

/// The cluster-level interface the control plane needs from a store.
pub trait ElasticKvs: Send + Sync {
    /// Short system name ("dinomo", "dinomo-n", "clover", ...).
    fn name(&self) -> String;

    /// Open a new client session.
    fn session(&self) -> Box<dyn KvSession>;

    /// Identifiers of the live KVS nodes.
    fn node_ids(&self) -> Vec<u32>;

    /// Add a KVS node; returns its id.
    fn add_node(&self) -> Result<u32>;

    /// Remove a KVS node.
    fn remove_node(&self, id: u32) -> Result<()>;

    /// Fail a KVS node (fail-stop) and run the system's recovery path.
    fn fail_node(&self, id: u32) -> Result<()>;

    /// Share ownership of a hot key across `factor` nodes, if the system
    /// supports selective replication.
    fn replicate_key(&self, key: &[u8], factor: usize) -> Result<()>;

    /// Collapse a replicated key back to one owner.
    fn dereplicate_key(&self, key: &[u8]) -> Result<()>;

    /// `true` if the system can act on replicate/dereplicate requests.
    fn supports_selective_replication(&self) -> bool;

    /// Current replication factor of a key (1 if not replicated).
    fn replication_factor(&self, key: &[u8]) -> usize;

    /// Cluster statistics (cumulative counters).
    fn stats(&self) -> KvsStats;

    /// Flush buffered writes / run background maintenance (called between
    /// epochs by the driver).
    fn maintenance(&self);

    /// The store's metrics registry, if it has one (the driver reads
    /// migrated counters — busy rejections, cell-registry waits, epoch
    /// bag flushes — as generic per-epoch snapshot deltas from it).
    fn metrics(&self) -> Option<std::sync::Arc<dinomo_obs::Registry>> {
        None
    }
}

// ------------------------------------------------------------------ Dinomo

struct DinomoSession {
    client: dinomo_core::KvsClient,
}

/// Convert a workload operation into the core request model.
fn to_op(op: &Operation) -> dinomo_core::Op {
    match op {
        Operation::Read(k) => dinomo_core::Op::lookup(k),
        Operation::Update(k, v) => dinomo_core::Op::update(k, v),
        Operation::Insert(k, v) => dinomo_core::Op::insert(k, v),
        Operation::Delete(k) => dinomo_core::Op::delete(k),
        Operation::Scan(start, n) => dinomo_core::Op::scan(start, *n),
    }
}

impl KvSession for DinomoSession {
    fn execute(&self, op: &Operation) -> Result<Option<Vec<u8>>> {
        match op {
            Operation::Read(k) => self.client.lookup(k),
            Operation::Update(k, v) => self.client.update(k, v).map(|()| None),
            Operation::Insert(k, v) => self.client.insert(k, v).map(|()| None),
            Operation::Delete(k) => self.client.delete(k).map(|()| None),
            // The session interface reports one value per op; the scan
            // runs in full (fan-out, merge) and reduces to its first pair.
            Operation::Scan(start, n) => self
                .client
                .scan(start, *n)
                .map(|pairs| pairs.into_iter().next().map(|(_, v)| v)),
        }
    }

    fn execute_batch(&self, ops: &[Operation]) -> Vec<Result<Option<Vec<u8>>>> {
        self.client
            .execute(ops.iter().map(to_op).collect())
            .into_iter()
            .map(dinomo_core::Reply::into_value)
            .collect()
    }
}

impl ElasticKvs for Kvs {
    fn name(&self) -> String {
        self.config().variant.name().to_string()
    }

    fn session(&self) -> Box<dyn KvSession> {
        Box::new(DinomoSession {
            client: self.client(),
        })
    }

    fn node_ids(&self) -> Vec<u32> {
        self.kn_ids()
    }

    fn add_node(&self) -> Result<u32> {
        self.add_kn()
    }

    fn remove_node(&self, id: u32) -> Result<()> {
        self.remove_kn(id)
    }

    fn fail_node(&self, id: u32) -> Result<()> {
        self.fail_kn(id)
    }

    fn replicate_key(&self, key: &[u8], factor: usize) -> Result<()> {
        self.replicate_key(key, factor).map(|_| ())
    }

    fn dereplicate_key(&self, key: &[u8]) -> Result<()> {
        self.dereplicate_key(key)
    }

    fn supports_selective_replication(&self) -> bool {
        self.config().variant.supports_selective_replication()
    }

    fn replication_factor(&self, key: &[u8]) -> usize {
        self.ownership().read().replication_factor(key)
    }

    fn stats(&self) -> KvsStats {
        Kvs::stats(self)
    }

    fn maintenance(&self) {
        let _ = self.flush_all();
        self.dpm().run_gc();
    }

    fn metrics(&self) -> Option<std::sync::Arc<dinomo_obs::Registry>> {
        Some(Kvs::metrics(self))
    }
}

// ------------------------------------------------------------------ Clover

struct CloverSession {
    client: dinomo_clover::CloverClient,
}

impl KvSession for CloverSession {
    fn execute(&self, op: &Operation) -> Result<Option<Vec<u8>>> {
        match op {
            Operation::Read(k) => self.client.lookup(k),
            Operation::Update(k, v) => self.client.update(k, v).map(|()| None),
            Operation::Insert(k, v) => self.client.insert(k, v).map(|()| None),
            Operation::Delete(k) => self.client.delete(k).map(|()| None),
            // Clover has no ordered index (the baseline is point-op-only);
            // a scan degrades to a point read of its start key so mixed
            // workloads stay runnable. Scan benchmarks target Dinomo only.
            Operation::Scan(start, _) => self.client.lookup(start),
        }
    }
}

impl ElasticKvs for dinomo_clover::CloverKvs {
    fn name(&self) -> String {
        "clover".to_string()
    }

    fn session(&self) -> Box<dyn KvSession> {
        Box::new(CloverSession {
            client: self.client(),
        })
    }

    fn node_ids(&self) -> Vec<u32> {
        self.kn_ids()
    }

    fn add_node(&self) -> Result<u32> {
        Ok(self.add_kn())
    }

    fn remove_node(&self, id: u32) -> Result<()> {
        self.remove_kn(id)
    }

    fn fail_node(&self, id: u32) -> Result<()> {
        self.fail_kn(id)
    }

    fn replicate_key(&self, _key: &[u8], _factor: usize) -> Result<()> {
        // Clover is shared-everything: every node already serves every key.
        Ok(())
    }

    fn dereplicate_key(&self, _key: &[u8]) -> Result<()> {
        Ok(())
    }

    fn supports_selective_replication(&self) -> bool {
        false
    }

    fn replication_factor(&self, _key: &[u8]) -> usize {
        1
    }

    fn stats(&self) -> KvsStats {
        CloverKvs_stats(self)
    }

    fn maintenance(&self) {
        self.run_gc();
    }
}

// Free function to avoid the method-name collision with the inherent
// `CloverKvs::stats`.
#[allow(non_snake_case)]
fn CloverKvs_stats(kvs: &dinomo_clover::CloverKvs) -> KvsStats {
    kvs.stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinomo_clover::{CloverConfig, CloverKvs};
    use dinomo_core::KvsConfig;

    fn ops() -> Vec<Operation> {
        vec![
            Operation::Insert(b"k1".to_vec(), b"v1".to_vec()),
            Operation::Read(b"k1".to_vec()),
            Operation::Update(b"k1".to_vec(), b"v2".to_vec()),
            Operation::Read(b"k1".to_vec()),
            Operation::Delete(b"k1".to_vec()),
            Operation::Read(b"k1".to_vec()),
        ]
    }

    fn exercise(store: &dyn ElasticKvs) {
        let session = store.session();
        let results: Vec<_> = ops()
            .iter()
            .map(|op| session.execute(op).unwrap())
            .collect();
        assert_eq!(results[1], Some(b"v1".to_vec()));
        assert_eq!(results[3], Some(b"v2".to_vec()));
        assert_eq!(results[5], None);
        assert!(!store.node_ids().is_empty());
        store.maintenance();
        assert!(store.stats().total_ops() >= 6);
        assert_eq!(store.replication_factor(b"k1"), 1);
    }

    #[test]
    fn execute_batch_matches_per_op_execution() {
        // Dinomo overrides execute_batch with the owner-grouped path;
        // Clover uses the default per-op loop. Both must agree with
        // sequential execution.
        let dinomo = Kvs::new(KvsConfig::small_for_tests()).unwrap();
        let clover = CloverKvs::new(CloverConfig::small_for_tests()).unwrap();
        for store in [&dinomo as &dyn ElasticKvs, &clover as &dyn ElasticKvs] {
            let session = store.session();
            let results = session.execute_batch(&ops());
            assert_eq!(results.len(), 6, "{}", store.name());
            assert_eq!(
                results[1].as_ref().unwrap(),
                &Some(b"v1".to_vec()),
                "{}",
                store.name()
            );
            assert_eq!(
                results[3].as_ref().unwrap(),
                &Some(b"v2".to_vec()),
                "{}",
                store.name()
            );
            assert_eq!(results[5].as_ref().unwrap(), &None, "{}", store.name());
        }
    }

    #[test]
    fn dinomo_implements_the_trait() {
        let kvs = Kvs::new(KvsConfig::small_for_tests()).unwrap();
        exercise(&kvs);
        assert_eq!(ElasticKvs::name(&kvs), "dinomo");
        assert!(kvs.supports_selective_replication());
        let added = ElasticKvs::add_node(&kvs).unwrap();
        assert!(kvs.node_ids().contains(&added));
    }

    #[test]
    fn clover_implements_the_trait() {
        let kvs = CloverKvs::new(CloverConfig::small_for_tests()).unwrap();
        exercise(&kvs);
        assert_eq!(ElasticKvs::name(&kvs), "clover");
        assert!(!kvs.supports_selective_replication());
        ElasticKvs::replicate_key(&kvs, b"k1", 4).unwrap();
    }
}
