//! Closed-loop experiment driver for the timeline experiments (Figures 6–8).
//!
//! The driver plays the role of the paper's client nodes *and* of the M-node:
//! client threads issue a closed-loop workload against the store, and once
//! per monitoring epoch the driver collects latency/occupancy/key-frequency
//! statistics, lets the [`PolicyEngine`] decide on reconfigurations, applies
//! them, and appends a [`TimelineRow`] to the experiment's output.

use crate::policy::{EpochObservation, PolicyAction, PolicyEngine};
use crate::store::ElasticKvs;
use dinomo_core::LogHistogram;
use dinomo_workload::{KeyDistribution, WorkloadConfig, WorkloadGenerator, WorkloadMix};
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Driver configuration.
#[derive(Debug, Clone, Copy)]
pub struct DriverConfig {
    /// Length of one monitoring epoch in milliseconds.
    pub epoch_ms: u64,
    /// Number of epochs to run.
    pub total_epochs: usize,
    /// Number of client threads to spawn (the maximum the script can enable).
    pub max_clients: usize,
    /// Client threads active at the start.
    pub initial_clients: usize,
    /// The workload description (key count, value size, mix, skew, seed).
    pub workload: WorkloadConfig,
    /// Whether to load the key space before the measurement phase.
    pub preload: bool,
    /// Sample one in this many operations for key-frequency tracking.
    pub key_sample_every: usize,
    /// Operations each client submits per request. `1` issues classic
    /// per-op requests; larger values drive the store's batched path
    /// ([`crate::KvSession::execute_batch`]), amortizing per-request
    /// overhead as the paper's KNs amortize per-write overhead.
    pub batch_size: usize,
    /// Per-op latency objective, milliseconds: each epoch reports the
    /// fraction of operations at or under it
    /// ([`TimelineRow::slo_attainment`]).
    pub slo_ms: f64,
    /// Ceilings on the per-epoch contention counters; a run that exceeds
    /// them panics after the clients drain (see [`ContentionLimits`]).
    pub contention: ContentionLimits,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            epoch_ms: 100,
            total_epochs: 10,
            max_clients: 4,
            initial_clients: 1,
            workload: WorkloadConfig::default(),
            preload: true,
            key_sample_every: 8,
            batch_size: 1,
            slo_ms: 20.0,
            contention: ContentionLimits::default(),
        }
    }
}

/// Scenario-configurable ceilings on the contention counters the timeline
/// surfaces ([`TimelineRow::cell_registry_waits`] /
/// [`TimelineRow::epoch_bag_flushes`]). The columns exist precisely to
/// catch serialization creeping back into the swing/reclamation paths —
/// but a column nobody asserts on just scrolls past. With a limit set, an
/// epoch that exceeds it records the violation in the row's `actions` and
/// fails the scenario once the clients have drained; `None` (the default)
/// leaves that counter unchecked.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContentionLimits {
    /// Maximum indirection-cell swing races tolerated in any one epoch.
    pub max_cell_registry_waits_per_epoch: Option<u64>,
    /// Maximum epoch-shim bag flushes tolerated in any one epoch.
    pub max_epoch_bag_flushes_per_epoch: Option<u64>,
}

/// Evaluate `limits` over a finished timeline; one human-readable
/// violation string per offending epoch and counter. Pure, so scenarios
/// can also run it over saved timelines.
pub fn check_contention(rows: &[TimelineRow], limits: ContentionLimits) -> Vec<String> {
    let mut violations = Vec::new();
    for row in rows {
        if let Some(max) = limits.max_cell_registry_waits_per_epoch {
            if row.cell_registry_waits > max {
                violations.push(format!(
                    "epoch {}: {} cell-registry waits exceed the limit of {max}",
                    row.epoch, row.cell_registry_waits
                ));
            }
        }
        if let Some(max) = limits.max_epoch_bag_flushes_per_epoch {
            if row.epoch_bag_flushes > max {
                violations.push(format!(
                    "epoch {}: {} epoch-bag flushes exceed the limit of {max}",
                    row.epoch, row.epoch_bag_flushes
                ));
            }
        }
    }
    violations
}

/// A change the experiment script applies at the start of an epoch.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// Change the number of active client threads (load increase/decrease).
    SetClients(usize),
    /// Switch the key-popularity distribution (e.g. Zipf 0.5 → 2.0).
    SetDistribution(KeyDistribution),
    /// Switch the request mix.
    SetMix(WorkloadMix),
    /// Fail a specific node.
    FailNode(u32),
    /// Fail whichever node currently has the lowest id.
    FailRandomNode,
    /// Add a node outside of the policy engine's control.
    AddNode,
    /// Remove a specific node (planned scale-in, with the full drain +
    /// flush + hand-off protocol — unlike the fail-stop events above).
    RemoveNode(u32),
    /// Remove whichever node currently has the highest id.
    RemoveRandomNode,
}

/// A scripted event bound to an epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct ScriptedEvent {
    /// Epoch (0-based) at whose start the event fires.
    pub at_epoch: usize,
    /// What happens.
    pub event: EventKind,
}

/// Deterministically generate a membership-churn script from a seed: at
/// most one event per epoch, drawn from add/fail/remove/load-shift with a
/// bias toward growth (so random scripts don't starve the cluster down to
/// its one-node floor and stall there).
///
/// The script is a **pure function of `(seed, epochs, max_clients)`** —
/// the property the checker's determinism guarantee rests on: a failing
/// run's churn schedule is reproducible from the seed alone. Combine with
/// a seeded [`crate::DriverConfig::workload`] for a fully seed-determined
/// experiment (thread timing aside).
pub fn random_churn_script(seed: u64, epochs: usize, max_clients: usize) -> Vec<ScriptedEvent> {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc1u64.rotate_left(33));
    let mut events = Vec::new();
    for at_epoch in 0..epochs {
        // Churn roughly every other epoch, leaving quiet epochs in which
        // the cluster serves from a steady configuration.
        if !rng.gen_bool(0.5) {
            continue;
        }
        let event = match rng.gen_range(0u32..6) {
            0 | 1 => EventKind::AddNode,
            2 => EventKind::FailRandomNode,
            3 => EventKind::RemoveRandomNode,
            // Inclusive upper bound: a load-shift event must be able to
            // restore the full `max_clients` concurrency.
            4 => EventKind::SetClients(rng.gen_range(1..max_clients.max(1) + 1)),
            _ => EventKind::AddNode,
        };
        events.push(ScriptedEvent { at_epoch, event });
    }
    events
}

/// One epoch of the timeline (one point on the x-axis of Figures 6–8).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimelineRow {
    /// Epoch index.
    pub epoch: usize,
    /// Elapsed simulated-experiment time at the end of the epoch, seconds.
    pub seconds: f64,
    /// Operations completed during the epoch.
    pub ops: u64,
    /// Throughput in operations/second.
    pub throughput: f64,
    /// Mean latency over the epoch, milliseconds.
    pub avg_latency_ms: f64,
    /// Median latency over the epoch, milliseconds.
    pub p50_latency_ms: f64,
    /// 99th-percentile latency over the epoch, milliseconds.
    pub p99_latency_ms: f64,
    /// 99.9th-percentile latency over the epoch, milliseconds.
    pub p999_latency_ms: f64,
    /// Fraction of the epoch's operations at or under
    /// [`DriverConfig::slo_ms`] (1.0 for an idle epoch).
    pub slo_attainment: f64,
    /// Live KVS nodes at the end of the epoch.
    pub num_nodes: usize,
    /// Normalised standard deviation of per-node load during the epoch.
    pub load_imbalance: f64,
    /// Active client threads during the epoch.
    pub active_clients: usize,
    /// Number of keys currently selectively replicated.
    pub replicated_keys: usize,
    /// Sub-batches rejected with `Busy` during the epoch (bounded
    /// shard-worker queues exerting backpressure; the clients retried
    /// them). Persistently high values mean the executor queues are too
    /// shallow for the offered load — or the cluster needs more nodes.
    pub busy_rejections: u64,
    /// Victim segments the DPM log-cleaning compactor emptied and freed
    /// during the epoch.
    pub segments_compacted: u64,
    /// Live-entry bytes the compactor relocated during the epoch (its
    /// write amplification; bounded by the configured byte-rate
    /// throttle).
    pub bytes_relocated: u64,
    /// End-of-epoch DPM space amplification: allocated segment bytes
    /// divided by live bytes (0.0 while the store is empty). The
    /// compactor's job is keeping this bounded under skewed overwrites.
    pub space_amplification: f64,
    /// Indirection-cell swings that lost a race during the epoch (see
    /// `DpmStats::cell_registry_waits`). The cell-contention signal:
    /// rising values mean hot shared keys are serializing on their cells.
    pub cell_registry_waits: u64,
    /// Epoch-shim garbage bags sealed into the global buckets during the
    /// epoch (`crossbeam::epoch::stats`). Each seal is one short global
    /// lock acquisition — the only cross-thread serialization left in the
    /// reclamation scheme — so this is the future-cliff counter for
    /// memory reclamation.
    pub epoch_bag_flushes: u64,
    /// Human-readable record of events and policy actions this epoch.
    pub actions: Vec<String>,
}

#[derive(Debug, Default)]
struct EpochSamples {
    /// Per-op latencies, log-bucketed (≤1.6 % relative error) — fixed
    /// size however many ops an epoch completes, unlike the sample
    /// vector it replaced, and queryable at any percentile.
    latency: LogHistogram,
    key_counts: HashMap<Vec<u8>, u64>,
    errors: u64,
}

struct SharedState {
    stop: AtomicBool,
    active_clients: AtomicUsize,
    workload: RwLock<WorkloadConfig>,
    workload_version: AtomicU64,
    ops: AtomicU64,
    samples: Mutex<EpochSamples>,
    key_sample_every: usize,
    batch_size: usize,
}

/// The experiment driver. See the module docs.
pub struct SimulationDriver {
    store: Arc<dyn ElasticKvs>,
    config: DriverConfig,
    policy: Option<PolicyEngine>,
}

impl SimulationDriver {
    /// Create a driver for `store`.
    pub fn new(store: Arc<dyn ElasticKvs>, config: DriverConfig) -> Self {
        SimulationDriver {
            store,
            config,
            policy: None,
        }
    }

    /// Attach an M-node policy engine (without one, only scripted events
    /// drive reconfiguration).
    pub fn with_policy(mut self, engine: PolicyEngine) -> Self {
        self.policy = Some(engine);
        self
    }

    /// Load the key space (the paper's load phase).
    pub fn preload(&self) {
        let session = self.store.session();
        let generator = WorkloadGenerator::new(self.config.workload);
        for (key, value) in generator.load_phase() {
            let _ = session.execute(&dinomo_workload::Operation::Insert(key, value));
        }
        self.store.maintenance();
    }

    /// Run the experiment and return one row per epoch.
    pub fn run(&self, events: &[ScriptedEvent]) -> Vec<TimelineRow> {
        if self.config.preload {
            self.preload();
        }
        let shared = Arc::new(SharedState {
            stop: AtomicBool::new(false),
            active_clients: AtomicUsize::new(
                self.config.initial_clients.min(self.config.max_clients),
            ),
            workload: RwLock::new(self.config.workload),
            workload_version: AtomicU64::new(0),
            ops: AtomicU64::new(0),
            samples: Mutex::new(EpochSamples::default()),
            key_sample_every: self.config.key_sample_every.max(1),
            batch_size: self.config.batch_size.max(1),
        });

        let mut handles = Vec::new();
        for client_idx in 0..self.config.max_clients {
            let shared = Arc::clone(&shared);
            let store = Arc::clone(&self.store);
            handles.push(std::thread::spawn(move || {
                client_loop(client_idx, &store, &shared)
            }));
        }

        let mut rows = Vec::with_capacity(self.config.total_epochs);
        let mut replicated: HashMap<Vec<u8>, usize> = HashMap::new();
        let mut epochs_since_action = usize::MAX / 2;
        let mut prev_stats = self.store.stats();
        // Counters migrated onto the metrics registry (busy rejections,
        // cell-registry waits, epoch bag flushes) read as generic
        // per-epoch snapshot deltas; stores without a registry (Clover)
        // fall back to per-node stats and the process-global epoch shim.
        let metrics = self.store.metrics();
        let mut prev_snap = metrics.as_ref().map(|r| r.snapshot());
        let mut prev_bag_flushes = crossbeam::epoch::stats().bag_flushes;
        let epoch = Duration::from_millis(self.config.epoch_ms);
        let start = Instant::now();

        for epoch_idx in 0..self.config.total_epochs {
            let mut actions: Vec<String> = Vec::new();
            // Scripted events fire at the start of the epoch.
            for ev in events.iter().filter(|e| e.at_epoch == epoch_idx) {
                actions.push(self.apply_event(&ev.event, &shared));
            }

            let ops_before = shared.ops.load(Ordering::Relaxed);
            std::thread::sleep(epoch);
            let ops_after = shared.ops.load(Ordering::Relaxed);
            let samples = std::mem::take(&mut *shared.samples.lock());

            // Epoch statistics.
            let stats = self.store.stats();
            let (avg_ms, p50_ms, p99_ms, p999_ms) = latency_stats(&samples.latency);
            let slo_attainment = if samples.latency.is_empty() {
                1.0
            } else {
                let slo_ns = (self.config.slo_ms.max(0.0) * 1e6) as u64;
                samples.latency.count_at_or_below(slo_ns) as f64 / samples.latency.count() as f64
            };
            let ops = ops_after - ops_before;
            let elapsed_epoch = epoch.as_secs_f64();
            let node_ids = self.store.node_ids();
            let occupancy: Vec<(u32, f64)> = stats
                .kns
                .iter()
                .map(|kn| {
                    let before = prev_stats
                        .kns
                        .iter()
                        .find(|p| p.id == kn.id)
                        .copied()
                        .unwrap_or_default();
                    (kn.id, kn.since(&before).occupancy(epoch.as_nanos() as u64))
                })
                .collect();
            let segments_compacted = stats
                .dpm
                .segments_compacted
                .saturating_sub(prev_stats.dpm.segments_compacted);
            let bytes_relocated = stats
                .dpm
                .bytes_relocated
                .saturating_sub(prev_stats.dpm.bytes_relocated);
            let (busy_rejections, cell_registry_waits, epoch_bag_flushes) =
                match (&metrics, &mut prev_snap) {
                    (Some(registry), Some(prev)) => {
                        // One snapshot serves every migrated counter; the
                        // row fields keep their names.
                        let snap = registry.snapshot();
                        let deltas = (
                            snap.counter_delta(prev, "kn_busy_rejections"),
                            snap.counter_delta(prev, "dpm_cell_registry_waits"),
                            snap.counter_delta(prev, "epoch_bag_flushes"),
                        );
                        *prev = snap;
                        deltas
                    }
                    _ => {
                        let busy = stats
                            .kns
                            .iter()
                            .map(|kn| {
                                let before = prev_stats
                                    .kns
                                    .iter()
                                    .find(|p| p.id == kn.id)
                                    .map(|p| p.busy_rejections)
                                    .unwrap_or(0);
                                kn.busy_rejections.saturating_sub(before)
                            })
                            .sum();
                        let cell = stats
                            .dpm
                            .cell_registry_waits
                            .saturating_sub(prev_stats.dpm.cell_registry_waits);
                        // Process-global (the epoch shim is shared by every
                        // store in this process), but experiments run one
                        // store at a time, so the per-epoch delta is
                        // attributable to this run.
                        let epoch_stats = crossbeam::epoch::stats();
                        let flushes = epoch_stats.bag_flushes.saturating_sub(prev_bag_flushes);
                        prev_bag_flushes = epoch_stats.bag_flushes;
                        (busy, cell, flushes)
                    }
                };
            let space_amplification = if stats.dpm.live_bytes == 0 {
                0.0
            } else {
                stats.dpm.segment_bytes_allocated as f64 / stats.dpm.live_bytes as f64
            };
            let load_imbalance = {
                let delta = dinomo_core::KvsStats {
                    kns: stats
                        .kns
                        .iter()
                        .map(|kn| {
                            let before = prev_stats
                                .kns
                                .iter()
                                .find(|p| p.id == kn.id)
                                .copied()
                                .unwrap_or_default();
                            kn.since(&before)
                        })
                        .collect(),
                    ..Default::default()
                };
                delta.load_imbalance()
            };
            prev_stats = stats;

            // The M-node applies its policy.
            if let Some(engine) = &self.policy {
                let obs = EpochObservation {
                    avg_latency_ms: avg_ms,
                    p99_latency_ms: p99_ms,
                    occupancy: occupancy.clone(),
                    key_frequencies: samples.key_counts,
                    replicated_keys: replicated.iter().map(|(k, f)| (k.clone(), *f)).collect(),
                    supports_replication: self.store.supports_selective_replication(),
                    epochs_since_last_action: epochs_since_action,
                };
                let decisions = engine.decide(&obs);
                if decisions.is_empty() {
                    epochs_since_action = epochs_since_action.saturating_add(1);
                } else {
                    epochs_since_action = 0;
                }
                for action in decisions {
                    actions.push(self.apply_action(&action, &mut replicated));
                }
            }

            self.store.maintenance();
            rows.push(TimelineRow {
                epoch: epoch_idx,
                seconds: start.elapsed().as_secs_f64(),
                ops,
                throughput: ops as f64 / elapsed_epoch,
                avg_latency_ms: avg_ms,
                p50_latency_ms: p50_ms,
                p99_latency_ms: p99_ms,
                p999_latency_ms: p999_ms,
                slo_attainment,
                num_nodes: node_ids.len(),
                load_imbalance,
                active_clients: shared.active_clients.load(Ordering::Relaxed),
                replicated_keys: replicated.len(),
                busy_rejections,
                segments_compacted,
                bytes_relocated,
                space_amplification,
                cell_registry_waits,
                epoch_bag_flushes,
                actions,
            });
        }

        shared.stop.store(true, Ordering::Release);
        for h in handles {
            let _ = h.join();
        }

        // Contention gate (after the clients drain, so a violation can't
        // leak running threads): a breached ceiling fails the scenario
        // loudly instead of scrolling past as a column.
        let violations = check_contention(&rows, self.config.contention);
        if !violations.is_empty() {
            if let Some(last) = rows.last_mut() {
                last.actions
                    .extend(violations.iter().map(|v| format!("contention limit: {v}")));
            }
            panic!(
                "contention limits exceeded ({} violation(s)):\n  {}",
                violations.len(),
                violations.join("\n  ")
            );
        }
        rows
    }

    fn apply_event(&self, event: &EventKind, shared: &SharedState) -> String {
        match event {
            EventKind::SetClients(n) => {
                shared
                    .active_clients
                    .store((*n).min(self.config.max_clients), Ordering::Release);
                format!("load: {n} clients")
            }
            EventKind::SetDistribution(dist) => {
                shared.workload.write().distribution = *dist;
                shared.workload_version.fetch_add(1, Ordering::Release);
                format!("workload: distribution -> {dist:?}")
            }
            EventKind::SetMix(mix) => {
                shared.workload.write().mix = *mix;
                shared.workload_version.fetch_add(1, Ordering::Release);
                format!("workload: mix -> {}", mix.name)
            }
            EventKind::FailNode(id) => {
                let _ = self.store.fail_node(*id);
                format!("failure injected: node {id}")
            }
            EventKind::FailRandomNode => {
                let id = self.store.node_ids().into_iter().next();
                if let Some(id) = id {
                    let _ = self.store.fail_node(id);
                    format!("failure injected: node {id}")
                } else {
                    "failure skipped: no nodes".to_string()
                }
            }
            EventKind::AddNode => match self.store.add_node() {
                Ok(id) => format!("scripted add: node {id}"),
                Err(e) => format!("scripted add failed: {e}"),
            },
            EventKind::RemoveNode(id) => match self.store.remove_node(*id) {
                Ok(()) => format!("scripted remove: node {id}"),
                Err(e) => format!("scripted remove of node {id} failed: {e}"),
            },
            EventKind::RemoveRandomNode => {
                let id = self.store.node_ids().into_iter().next_back();
                if let Some(id) = id {
                    match self.store.remove_node(id) {
                        Ok(()) => format!("scripted remove: node {id}"),
                        Err(e) => format!("scripted remove of node {id} failed: {e}"),
                    }
                } else {
                    "remove skipped: no nodes".to_string()
                }
            }
        }
    }

    fn apply_action(
        &self,
        action: &PolicyAction,
        replicated: &mut HashMap<Vec<u8>, usize>,
    ) -> String {
        match action {
            PolicyAction::AddNode => match self.store.add_node() {
                Ok(id) => format!("policy: add node {id}"),
                Err(e) => format!("policy: add node failed: {e}"),
            },
            PolicyAction::RemoveNode(id) => match self.store.remove_node(*id) {
                Ok(()) => format!("policy: remove node {id}"),
                Err(e) => format!("policy: remove node {id} failed: {e}"),
            },
            PolicyAction::ReplicateKey(key, factor) => {
                match self.store.replicate_key(key, *factor) {
                    Ok(()) => {
                        replicated.insert(key.clone(), *factor);
                        format!("policy: replicate key x{factor}")
                    }
                    Err(e) => format!("policy: replicate failed: {e}"),
                }
            }
            PolicyAction::DereplicateKey(key) => match self.store.dereplicate_key(key) {
                Ok(()) => {
                    replicated.remove(key);
                    "policy: dereplicate key".to_string()
                }
                Err(e) => format!("policy: dereplicate failed: {e}"),
            },
        }
    }
}

fn client_loop(client_idx: usize, store: &Arc<dyn ElasticKvs>, shared: &Arc<SharedState>) {
    let session = store.session();
    let mut workload_version = shared.workload_version.load(Ordering::Acquire);
    let mut config = *shared.workload.read();
    config.seed = config.seed.wrapping_add(client_idx as u64 * 7919);
    let mut generator = WorkloadGenerator::new(config);
    let mut local_latencies: Vec<u64> = Vec::with_capacity(256);
    let mut local_keys: Vec<Vec<u8>> = Vec::new();
    let mut local_errors: u64 = 0;
    let mut op_count: usize = 0;

    while !shared.stop.load(Ordering::Acquire) {
        if client_idx >= shared.active_clients.load(Ordering::Acquire) {
            flush_samples(
                shared,
                &mut local_latencies,
                &mut local_keys,
                &mut local_errors,
            );
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }
        let current_version = shared.workload_version.load(Ordering::Acquire);
        if current_version != workload_version {
            workload_version = current_version;
            let mut c = *shared.workload.read();
            c.seed = c.seed.wrapping_add(client_idx as u64 * 7919);
            generator = WorkloadGenerator::new(c);
        }
        // Closed loop: submit `batch_size` ops per request (1 = classic
        // per-op traffic). Batch latency is attributed evenly across the
        // batch's ops so epoch latency statistics stay per-operation.
        let ops = generator.next_batch(shared.batch_size);
        let start = Instant::now();
        let results = session.execute_batch(&ops);
        let elapsed = start.elapsed().as_nanos() as u64;
        let per_op_latency = elapsed / ops.len().max(1) as u64;
        for (op, result) in ops.iter().zip(&results) {
            local_latencies.push(per_op_latency);
            op_count += 1;
            if op_count.is_multiple_of(shared.key_sample_every) {
                local_keys.push(op.key().to_vec());
            }
            local_errors += u64::from(result.is_err());
        }
        shared.ops.fetch_add(ops.len() as u64, Ordering::Relaxed);
        if local_latencies.len() >= 128 {
            flush_samples(
                shared,
                &mut local_latencies,
                &mut local_keys,
                &mut local_errors,
            );
        }
    }
    flush_samples(
        shared,
        &mut local_latencies,
        &mut local_keys,
        &mut local_errors,
    );
}

fn flush_samples(
    shared: &SharedState,
    latencies: &mut Vec<u64>,
    keys: &mut Vec<Vec<u8>>,
    errors: &mut u64,
) {
    if latencies.is_empty() && keys.is_empty() && *errors == 0 {
        return;
    }
    let mut samples = shared.samples.lock();
    for l in latencies.drain(..) {
        samples.latency.record(l);
    }
    for k in keys.drain(..) {
        *samples.key_counts.entry(k).or_insert(0) += 1;
    }
    samples.errors += std::mem::take(errors);
}

/// `(mean, p50, p99, p999)` in milliseconds over an epoch's latency
/// histogram — all zeros for an idle epoch.
fn latency_stats(hist: &LogHistogram) -> (f64, f64, f64, f64) {
    if hist.is_empty() {
        return (0.0, 0.0, 0.0, 0.0);
    }
    (
        hist.mean() / 1e6,
        hist.value_at_quantile(0.50) as f64 / 1e6,
        hist.value_at_quantile(0.99) as f64 / 1e6,
        hist.value_at_quantile(0.999) as f64 / 1e6,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::SloConfig;
    use dinomo_core::{Kvs, KvsConfig};

    fn small_workload() -> WorkloadConfig {
        WorkloadConfig {
            num_keys: 200,
            value_len: 64,
            mix: WorkloadMix::WRITE_HEAVY_UPDATE,
            distribution: KeyDistribution::MODERATE_SKEW,
            seed: 1,
            key_len: 8,
            max_scan_len: 16,
        }
    }

    #[test]
    fn timeline_runs_and_reports_throughput() {
        let kvs = Arc::new(Kvs::new(KvsConfig::small_for_tests()).unwrap());
        let driver = SimulationDriver::new(
            kvs,
            DriverConfig {
                epoch_ms: 30,
                total_epochs: 4,
                max_clients: 2,
                initial_clients: 1,
                workload: small_workload(),
                preload: true,
                key_sample_every: 4,
                batch_size: 1,
                ..DriverConfig::default()
            },
        );
        let rows = driver.run(&[]);
        assert_eq!(rows.len(), 4);
        assert!(
            rows.iter().map(|r| r.ops).sum::<u64>() > 0,
            "clients made no progress"
        );
        assert!(rows.iter().all(|r| r.num_nodes == 2));
        assert!(rows.iter().any(|r| r.avg_latency_ms > 0.0));
        // The histogram-backed percentile columns are populated and
        // ordered, and SLO attainment is a fraction.
        for r in rows.iter().filter(|r| r.ops > 0) {
            assert!(r.p50_latency_ms > 0.0, "{r:?}");
            assert!(r.p50_latency_ms <= r.p99_latency_ms, "{r:?}");
            assert!(r.p99_latency_ms <= r.p999_latency_ms, "{r:?}");
            assert!((0.0..=1.0).contains(&r.slo_attainment), "{r:?}");
        }
    }

    #[test]
    fn check_contention_flags_only_exceeded_limits() {
        let mut row = TimelineRow {
            epoch: 3,
            seconds: 0.1,
            ops: 10,
            throughput: 100.0,
            avg_latency_ms: 1.0,
            p50_latency_ms: 1.0,
            p99_latency_ms: 2.0,
            p999_latency_ms: 3.0,
            slo_attainment: 1.0,
            num_nodes: 2,
            load_imbalance: 0.0,
            active_clients: 1,
            replicated_keys: 0,
            busy_rejections: 0,
            segments_compacted: 0,
            bytes_relocated: 0,
            space_amplification: 1.0,
            cell_registry_waits: 40,
            epoch_bag_flushes: 7,
            actions: Vec::new(),
        };
        // Defaults check nothing.
        assert!(
            check_contention(std::slice::from_ref(&row), ContentionLimits::default()).is_empty()
        );
        let limits = ContentionLimits {
            max_cell_registry_waits_per_epoch: Some(40),
            max_epoch_bag_flushes_per_epoch: Some(6),
        };
        // At the limit passes; above it is one violation naming the epoch.
        let violations = check_contention(std::slice::from_ref(&row), limits);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("epoch 3") && violations[0].contains("bag flushes"));
        row.cell_registry_waits = 41;
        assert_eq!(
            check_contention(std::slice::from_ref(&row), limits).len(),
            2
        );
    }

    #[test]
    #[should_panic(expected = "contention limits exceeded")]
    fn zero_contention_limit_fails_a_churning_run() {
        let kvs = Arc::new(Kvs::new(KvsConfig::small_for_tests()).unwrap());
        let driver = SimulationDriver::new(
            kvs,
            DriverConfig {
                epoch_ms: 30,
                total_epochs: 3,
                max_clients: 2,
                initial_clients: 2,
                workload: small_workload(),
                // A write-heavy run always retires garbage, so a ceiling
                // of zero bag flushes must trip the gate.
                contention: ContentionLimits {
                    max_epoch_bag_flushes_per_epoch: Some(0),
                    ..ContentionLimits::default()
                },
                ..DriverConfig::default()
            },
        );
        driver.run(&[]);
    }

    #[test]
    fn batched_clients_make_progress_and_report_per_op_latency() {
        let kvs = Arc::new(Kvs::new(KvsConfig::small_for_tests()).unwrap());
        let driver = SimulationDriver::new(
            kvs,
            DriverConfig {
                epoch_ms: 30,
                total_epochs: 4,
                max_clients: 2,
                initial_clients: 2,
                workload: small_workload(),
                preload: true,
                key_sample_every: 4,
                batch_size: 16,
                ..DriverConfig::default()
            },
        );
        let rows = driver.run(&[]);
        assert_eq!(rows.len(), 4);
        let total_ops: u64 = rows.iter().map(|r| r.ops).sum();
        assert!(total_ops >= 16, "batched clients made no progress");
        assert!(rows.iter().any(|r| r.avg_latency_ms > 0.0));
    }

    #[test]
    fn scripted_events_change_load_and_membership() {
        let kvs = Arc::new(Kvs::new(KvsConfig::small_for_tests()).unwrap());
        let driver = SimulationDriver::new(
            Arc::clone(&kvs) as Arc<dyn ElasticKvs>,
            DriverConfig {
                epoch_ms: 30,
                total_epochs: 5,
                max_clients: 2,
                initial_clients: 1,
                workload: small_workload(),
                preload: true,
                key_sample_every: 4,
                batch_size: 1,
                ..DriverConfig::default()
            },
        );
        let events = vec![
            ScriptedEvent {
                at_epoch: 1,
                event: EventKind::SetClients(2),
            },
            ScriptedEvent {
                at_epoch: 2,
                event: EventKind::AddNode,
            },
            ScriptedEvent {
                at_epoch: 3,
                event: EventKind::FailRandomNode,
            },
        ];
        let rows = driver.run(&events);
        assert_eq!(rows[1].active_clients, 2);
        assert!(
            rows[2].num_nodes >= 3,
            "scripted AddNode should grow the cluster"
        );
        assert!(
            rows[4].num_nodes < rows[2].num_nodes,
            "failure should shrink the cluster"
        );
        assert!(rows.iter().any(|r| !r.actions.is_empty()));
    }

    #[test]
    fn random_churn_scripts_are_seed_deterministic_and_runnable() {
        // Pure function of the seed: the checker's reproducibility story
        // depends on this.
        let a = random_churn_script(0xfeed, 24, 4);
        let b = random_churn_script(0xfeed, 24, 4);
        assert_eq!(a, b);
        let c = random_churn_script(0xbeef, 24, 4);
        assert_ne!(a, c, "different seeds should churn differently");
        // Epochs are strictly increasing, at most one event each, and the
        // script actually contains churn.
        assert!(a.windows(2).all(|w| w[0].at_epoch < w[1].at_epoch));
        assert!(!a.is_empty());

        // And a generated script drives a real cluster without wedging it.
        let kvs = Arc::new(Kvs::new(KvsConfig::small_for_tests()).unwrap());
        let events = random_churn_script(7, 5, 2);
        let driver = SimulationDriver::new(
            Arc::clone(&kvs) as Arc<dyn ElasticKvs>,
            DriverConfig {
                epoch_ms: 25,
                total_epochs: 5,
                max_clients: 2,
                initial_clients: 2,
                workload: small_workload(),
                preload: true,
                key_sample_every: 4,
                batch_size: 8,
                ..DriverConfig::default()
            },
        );
        let rows = driver.run(&events);
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().map(|r| r.ops).sum::<u64>() > 0);
    }

    #[test]
    fn policy_engine_can_autoscale_under_pressure() {
        let kvs = Arc::new(Kvs::new(KvsConfig::small_for_tests()).unwrap());
        // Absurdly tight SLO so any load triggers the add-node rule.
        let slo = SloConfig {
            avg_latency_ms: 0.000001,
            tail_latency_ms: 0.000001,
            overutil_lower_bound: 0.0,
            grace_epochs: 1,
            max_nodes: 3,
            ..SloConfig::default()
        };
        let driver = SimulationDriver::new(
            Arc::clone(&kvs) as Arc<dyn ElasticKvs>,
            DriverConfig {
                epoch_ms: 30,
                total_epochs: 6,
                max_clients: 2,
                initial_clients: 2,
                workload: small_workload(),
                preload: true,
                key_sample_every: 4,
                batch_size: 1,
                ..DriverConfig::default()
            },
        )
        .with_policy(PolicyEngine::new(slo));
        let rows = driver.run(&[]);
        assert!(
            rows.last().unwrap().num_nodes > 2,
            "policy should have added a node: {:?}",
            rows.iter()
                .map(|r| (r.num_nodes, r.actions.clone()))
                .collect::<Vec<_>>()
        );
    }
}
