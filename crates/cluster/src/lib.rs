//! # dinomo-cluster — the control plane
//!
//! The paper's monitoring/management node (M-node) watches the cluster and
//! triggers reconfigurations: adding or removing KVS nodes when latency SLOs
//! are violated or nodes sit idle, selectively replicating hot keys when a
//! skewed workload overloads a single owner, and recovering from KVS-node
//! failures (§3.5, Table 4).  This crate implements that control plane plus
//! the closed-loop experiment driver used for the timeline figures
//! (Figures 6–8):
//!
//! * [`ElasticKvs`] / [`KvSession`] — a uniform interface over the Dinomo
//!   variants and the Clover baseline so the same driver and policy engine
//!   can exercise all of them;
//! * [`SloConfig`] / [`PolicyEngine`] — the Table 4 policy rules (latency
//!   SLOs, over/under-utilization occupancy bounds, key hotness/coldness
//!   bounds, grace periods);
//! * [`SimulationDriver`] — closed-loop client threads, per-epoch statistics
//!   (throughput, average and p99 latency, per-node load), scripted load and
//!   skew changes, failure injection, and application of the policy engine's
//!   decisions.

#![warn(missing_docs)]

pub mod driver;
pub mod policy;
pub mod store;

pub use driver::{
    check_contention, random_churn_script, ContentionLimits, DriverConfig, EventKind,
    ScriptedEvent, SimulationDriver, TimelineRow,
};
pub use policy::{EpochObservation, PolicyAction, PolicyEngine, SloConfig};
pub use store::{ElasticKvs, KvSession};
