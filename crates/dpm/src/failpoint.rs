//! Instance-scoped failpoints for crash-injection tests.
//!
//! A [`FailpointSet`] lives on each [`crate::DpmNode`] (never global state:
//! tests run in parallel and a process-wide registry would leak armed points
//! across unrelated DPM instances). Production code calls
//! [`FailpointSet::hit`] at the instrumented site; the call is a single
//! relaxed atomic load while no point is armed, so the instrumentation is
//! free on the hot path.
//!
//! Protocol: a test arms a named point with a countdown (`1` = fire on the
//! next hit), drives the workload, and the instrumented site observes
//! `hit() == true` exactly once, simulating a fail-stop at that instant —
//! typically by aborting the surrounding operation with
//! `PmemError::InjectedFailure` and letting the caller run
//! `simulate_crash` + `recover`. [`FailpointSet::fired`] reports how many
//! times a point has tripped so drivers can confirm a crash really landed
//! inside the intended window.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

#[derive(Debug, Default)]
struct Point {
    /// Remaining hits before the point fires; `None` when disarmed.
    armed: Option<u64>,
    /// Times this point has fired since the set was created.
    fired: u64,
}

/// Named failpoints with per-point countdowns and fire counters.
#[derive(Debug, Default)]
pub struct FailpointSet {
    /// Number of currently-armed points: the hot-path fast gate.
    armed_count: AtomicU64,
    points: Mutex<HashMap<&'static str, Point>>,
}

impl FailpointSet {
    /// An empty set with nothing armed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm `name` to fire on its `countdown`-th upcoming hit
    /// (`countdown == 1` fires on the very next hit). Re-arming an
    /// already-armed point replaces its countdown.
    pub fn arm(&self, name: &'static str, countdown: u64) {
        assert!(countdown > 0, "failpoint countdown must be >= 1");
        let mut points = self.points.lock();
        let point = points.entry(name).or_default();
        if point.armed.is_none() {
            self.armed_count.fetch_add(1, Ordering::Relaxed);
        }
        point.armed = Some(countdown);
    }

    /// Disarm `name` without firing it. The fire counter is kept.
    pub fn disarm(&self, name: &'static str) {
        let mut points = self.points.lock();
        if let Some(point) = points.get_mut(name) {
            if point.armed.take().is_some() {
                self.armed_count.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }

    /// Instrumented-site check: decrement `name`'s countdown if armed and
    /// return `true` when it reaches zero (the point fires and disarms
    /// itself). Free (one relaxed load) while nothing is armed.
    pub fn hit(&self, name: &'static str) -> bool {
        if self.armed_count.load(Ordering::Relaxed) == 0 {
            return false;
        }
        let mut points = self.points.lock();
        let Some(point) = points.get_mut(name) else {
            return false;
        };
        match point.armed {
            Some(1) => {
                point.armed = None;
                point.fired += 1;
                self.armed_count.fetch_sub(1, Ordering::Relaxed);
                true
            }
            Some(n) => {
                point.armed = Some(n - 1);
                false
            }
            None => false,
        }
    }

    /// How many times `name` has fired since this set was created.
    pub fn fired(&self, name: &'static str) -> u64 {
        self.points.lock().get(name).map_or(0, |p| p.fired)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_points_never_fire() {
        let fp = FailpointSet::new();
        for _ in 0..10 {
            assert!(!fp.hit("gc.after-relocate"));
        }
        assert_eq!(fp.fired("gc.after-relocate"), 0);
    }

    #[test]
    fn countdown_fires_exactly_once_then_disarms() {
        let fp = FailpointSet::new();
        fp.arm("cell.before-swing", 3);
        assert!(!fp.hit("cell.before-swing"));
        assert!(!fp.hit("cell.before-swing"));
        assert!(fp.hit("cell.before-swing"));
        assert!(!fp.hit("cell.before-swing"));
        assert_eq!(fp.fired("cell.before-swing"), 1);
    }

    #[test]
    fn disarm_keeps_fired_count_and_stops_firing() {
        let fp = FailpointSet::new();
        fp.arm("handoff.before-flip", 1);
        assert!(fp.hit("handoff.before-flip"));
        fp.arm("handoff.before-flip", 5);
        fp.disarm("handoff.before-flip");
        assert!(!fp.hit("handoff.before-flip"));
        assert_eq!(fp.fired("handoff.before-flip"), 1);
    }

    #[test]
    fn points_are_independent() {
        let fp = FailpointSet::new();
        fp.arm("a", 1);
        assert!(!fp.hit("b"));
        assert!(fp.hit("a"));
        fp.arm("b", 1);
        assert!(!fp.hit("a"));
        assert!(fp.hit("b"));
    }
}
