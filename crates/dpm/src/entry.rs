//! Log-entry encoding.
//!
//! A log entry is written by a KVS node into its exclusive segment and later
//! parsed by a DPM processor thread during merging (and by the recovery
//! path).  Layout (8-byte aligned):
//!
//! ```text
//! offset  0: u32 key_len
//! offset  4: u32 val_len
//! offset  8: u64 seq            (cluster-global monotonic sequence number)
//! offset 16: u8  op             (1 = put, 2 = delete)
//! offset 17: 7 bytes padding
//! offset 24: key bytes
//! offset 24 + key_len: value bytes
//! ... padding to an 8-byte boundary ...
//! last 8 bytes: seal word = SEAL_MAGIC ^ seq   (commit marker)
//! ```
//!
//! The seal word is written last; recovery treats an entry whose seal does
//! not match as torn and discards it together with the rest of that batch
//! (log writes within a batch are sequential).

use crate::loc::PackedLoc;
use dinomo_pmem::{PmAddr, PmemPool};

/// Size of the fixed entry header in bytes.
pub const HEADER_BYTES: u64 = 24;
/// Size of the trailing seal word.
pub const SEAL_BYTES: u64 = 8;
/// Magic value mixed with the sequence number to form the seal.
pub const SEAL_MAGIC: u64 = 0xD140_40D1_5EA1_u64;

/// Operation recorded in a log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogOp {
    /// Insert or update.
    Put,
    /// Delete (tombstone).
    Delete,
}

impl LogOp {
    fn to_byte(self) -> u8 {
        match self {
            LogOp::Put => 1,
            LogOp::Delete => 2,
        }
    }

    fn from_byte(b: u8) -> Option<LogOp> {
        match b {
            1 => Some(LogOp::Put),
            2 => Some(LogOp::Delete),
            _ => None,
        }
    }
}

/// Decoded header of a log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryHeader {
    /// Key length in bytes.
    pub key_len: u32,
    /// Value length in bytes.
    pub val_len: u32,
    /// Cluster-global sequence number.
    pub seq: u64,
    /// Operation.
    pub op: LogOp,
}

/// Total encoded size of an entry with the given key/value lengths.
pub fn entry_size(key_len: usize, val_len: usize) -> u64 {
    let body = HEADER_BYTES + key_len as u64 + val_len as u64;
    body.next_multiple_of(8) + SEAL_BYTES
}

/// Encode an entry into `buf` (appending). Returns the byte offset, within
/// the appended region, at which the value starts.
pub fn encode_entry(buf: &mut Vec<u8>, key: &[u8], value: &[u8], op: LogOp, seq: u64) -> u64 {
    let start = buf.len() as u64;
    buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
    buf.extend_from_slice(&(value.len() as u32).to_le_bytes());
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.push(op.to_byte());
    buf.extend_from_slice(&[0u8; 7]);
    let value_offset = buf.len() as u64 - start + key.len() as u64;
    buf.extend_from_slice(key);
    buf.extend_from_slice(value);
    while !(buf.len() as u64 - start).is_multiple_of(8) {
        buf.push(0);
    }
    buf.extend_from_slice(&(SEAL_MAGIC ^ seq).to_le_bytes());
    debug_assert_eq!(buf.len() as u64 - start, entry_size(key.len(), value.len()));
    value_offset
}

/// A decoded view of an entry stored in the pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedEntry {
    /// Header fields.
    pub header: EntryHeader,
    /// The key bytes.
    pub key: Vec<u8>,
    /// Address of the value bytes inside the pool.
    pub value_addr: PmAddr,
    /// Total size of the entry on the log.
    pub total_len: u64,
    /// `true` if the seal word matched (the entry is committed).
    pub sealed: bool,
}

impl DecodedEntry {
    /// Location of the whole entry (as stored in the metadata index).
    pub fn entry_loc(&self, entry_addr: PmAddr) -> PackedLoc {
        PackedLoc::direct(entry_addr, self.total_len)
    }

    /// Read the value bytes from the pool.
    pub fn read_value(&self, pool: &PmemPool) -> Vec<u8> {
        let mut v = vec![0u8; self.header.val_len as usize];
        pool.read_bytes(self.value_addr, &mut v);
        v
    }
}

/// Decode the entry at `addr`. Returns `None` if the header is obviously
/// invalid (zero/oversized lengths or an unknown op code), which recovery
/// treats as the end of the written region.
pub fn decode_entry(pool: &PmemPool, addr: PmAddr, max_len: u64) -> Option<DecodedEntry> {
    if max_len < HEADER_BYTES + SEAL_BYTES {
        return None;
    }
    let mut header = [0u8; HEADER_BYTES as usize];
    pool.read_bytes(addr, &mut header);
    let key_len = u32::from_le_bytes(header[0..4].try_into().unwrap());
    let val_len = u32::from_le_bytes(header[4..8].try_into().unwrap());
    let seq = u64::from_le_bytes(header[8..16].try_into().unwrap());
    let op = LogOp::from_byte(header[16])?;
    let total = entry_size(key_len as usize, val_len as usize);
    if key_len == 0 || total > max_len {
        return None;
    }
    let mut key = vec![0u8; key_len as usize];
    pool.read_bytes(addr.offset(HEADER_BYTES), &mut key);
    let value_addr = addr.offset(HEADER_BYTES + u64::from(key_len));
    let seal_addr = addr.offset(total - SEAL_BYTES);
    let seal = pool.read_u64(seal_addr);
    Some(DecodedEntry {
        header: EntryHeader {
            key_len,
            val_len,
            seq,
            op,
        },
        key,
        value_addr,
        total_len: total,
        sealed: seal == SEAL_MAGIC ^ seq,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinomo_pmem::PmemConfig;

    #[test]
    fn encode_decode_round_trip() {
        let pool = PmemPool::new(PmemConfig::small_for_tests());
        let mut buf = Vec::new();
        let voff = encode_entry(&mut buf, b"user0001", &[7u8; 100], LogOp::Put, 55);
        assert_eq!(voff, HEADER_BYTES + 8);
        let addr = pool.alloc(buf.len() as u64).unwrap();
        pool.write_bytes(addr, &buf);
        let d = decode_entry(&pool, addr, buf.len() as u64).unwrap();
        assert_eq!(d.header.key_len, 8);
        assert_eq!(d.header.val_len, 100);
        assert_eq!(d.header.seq, 55);
        assert_eq!(d.header.op, LogOp::Put);
        assert_eq!(d.key, b"user0001");
        assert!(d.sealed);
        assert_eq!(d.read_value(&pool), vec![7u8; 100]);
        assert_eq!(d.total_len, entry_size(8, 100));
    }

    #[test]
    fn delete_entries_have_no_value() {
        let pool = PmemPool::new(PmemConfig::small_for_tests());
        let mut buf = Vec::new();
        encode_entry(&mut buf, b"k1", &[], LogOp::Delete, 9);
        let addr = pool.alloc(buf.len() as u64).unwrap();
        pool.write_bytes(addr, &buf);
        let d = decode_entry(&pool, addr, buf.len() as u64).unwrap();
        assert_eq!(d.header.op, LogOp::Delete);
        assert_eq!(d.header.val_len, 0);
        assert!(d.sealed);
    }

    #[test]
    fn torn_entry_is_detected() {
        let pool = PmemPool::new(PmemConfig::small_for_tests());
        let mut buf = Vec::new();
        encode_entry(&mut buf, b"key", &[1u8; 32], LogOp::Put, 3);
        // Corrupt the seal.
        let n = buf.len();
        buf[n - 1] ^= 0xFF;
        let addr = pool.alloc(buf.len() as u64).unwrap();
        pool.write_bytes(addr, &buf);
        let d = decode_entry(&pool, addr, buf.len() as u64).unwrap();
        assert!(!d.sealed);
    }

    #[test]
    fn garbage_region_decodes_to_none() {
        let pool = PmemPool::new(PmemConfig::small_for_tests());
        let addr = pool.alloc(64).unwrap();
        // All zeroes: key_len 0 -> invalid.
        assert!(decode_entry(&pool, addr, 64).is_none());
        // Too small a window.
        assert!(decode_entry(&pool, addr, 8).is_none());
    }

    #[test]
    fn entry_size_is_aligned_and_includes_seal() {
        for (k, v) in [(1usize, 0usize), (8, 100), (13, 1027)] {
            let s = entry_size(k, v);
            assert_eq!(s % 8, 0);
            assert!(s >= HEADER_BYTES + (k + v) as u64 + SEAL_BYTES);
        }
    }

    #[test]
    fn multiple_entries_back_to_back() {
        let pool = PmemPool::new(PmemConfig::small_for_tests());
        let mut buf = Vec::new();
        encode_entry(&mut buf, b"aaa", &[1u8; 10], LogOp::Put, 1);
        let second_start = buf.len() as u64;
        encode_entry(&mut buf, b"bbbb", &[2u8; 20], LogOp::Put, 2);
        let addr = pool.alloc(buf.len() as u64).unwrap();
        pool.write_bytes(addr, &buf);
        let first = decode_entry(&pool, addr, buf.len() as u64).unwrap();
        assert_eq!(first.key, b"aaa");
        let second = decode_entry(
            &pool,
            addr.offset(second_start),
            buf.len() as u64 - second_start,
        )
        .unwrap();
        assert_eq!(second.key, b"bbbb");
        assert_eq!(second.header.seq, 2);
    }
}
