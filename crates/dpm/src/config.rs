//! DPM node configuration.

use dinomo_pclht::PclhtConfig;
use dinomo_pmem::PmemConfig;

/// Configuration of the log-cleaning segment compactor (see
/// [`crate::gc`]).
///
/// `run_gc` alone only frees segments whose entries are *all* dead, so a
/// single long-lived key pins its segment's bytes forever under skewed
/// overwrite workloads. The compactor relocates the still-live entries of
/// mostly-dead sealed segments into fresh segments and frees the victims,
/// making the store's footprint proportional to live data instead of
/// write history.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GcConfig {
    /// Run the per-DPM background compactor thread. When `false` the
    /// compactor only runs through the synchronous
    /// [`crate::DpmNode::compact_once`] hook.
    pub background: bool,
    /// Pause between background compaction passes, in milliseconds.
    pub interval_ms: u64,
    /// Minimum dead-byte fraction for a sealed, fully-merged segment to be
    /// considered a victim. `run_gc`'s all-dead policy corresponds to 1.0;
    /// lower values trade relocation write amplification for space.
    pub dead_fraction: f64,
    /// Relocation byte budget per pass. Together with `interval_ms` this
    /// is the background thread's byte-rate throttle
    /// (`max_pass_bytes / interval_ms` bytes per millisecond); `u64::MAX`
    /// disables throttling.
    pub max_pass_bytes: u64,
    /// Maximum victims compacted per pass.
    pub max_segments_per_pass: usize,
    /// Seal the pass's destination segment at the end of a pass once it is
    /// at least this full. The destination is reused across passes so
    /// small passes don't each strand a near-empty segment — but an
    /// unsealed destination is invisible to victim selection, so without
    /// this cut-off one mostly-full, never-sealed segment per DPM would
    /// pin its dead bytes forever.
    pub destination_seal_fraction: f64,
}

impl Default for GcConfig {
    fn default() -> Self {
        GcConfig {
            background: false,
            interval_ms: 100,
            dead_fraction: 0.5,
            // Default byte-rate throttle: 8 MB per 100 ms pass (~80 MB/s),
            // far below the modeled fabric bandwidth so cleaning never
            // starves foreground flushes.
            max_pass_bytes: 8 << 20,
            max_segments_per_pass: 8,
            destination_seal_fraction: 0.5,
        }
    }
}

impl GcConfig {
    /// An aggressive configuration for tests and stress runs: every pass
    /// considers any segment with any dead bytes, with no byte budget.
    pub fn aggressive() -> Self {
        GcConfig {
            background: true,
            interval_ms: 5,
            dead_fraction: 0.05,
            max_pass_bytes: u64::MAX,
            max_segments_per_pass: usize::MAX,
            destination_seal_fraction: 0.5,
        }
    }
}

/// Configuration of a [`crate::DpmNode`].
#[derive(Debug, Clone, Copy)]
pub struct DpmConfig {
    /// Configuration of the backing persistent-memory pool.
    pub pool: PmemConfig,
    /// Size of each log segment. The paper uses 8 MB; tests use much smaller
    /// segments to exercise segment roll-over cheaply.
    pub segment_bytes: u64,
    /// KN-side batch threshold: a [`crate::LogWriter`] flushes automatically
    /// once this many bytes are buffered.
    pub flush_batch_bytes: usize,
    /// Number of DPM processor threads dedicated to merging (the paper finds
    /// 4 sufficient for 16 KNs on DRAM).
    pub merge_threads: usize,
    /// A KN blocks once it has this many sealed-but-unmerged segments
    /// (default 2, per §4).
    pub unmerged_segment_threshold: usize,
    /// Metadata-index configuration.
    pub index: PclhtConfig,
    /// When `true`, merge workers busy-wait for the modeled media cost of
    /// each merge (used by the Figure 4 harness to contrast DRAM and PM).
    pub inject_media_delay: bool,
    /// Log-cleaning segment compactor knobs (victim threshold, byte-rate
    /// throttle, background thread).
    pub gc: GcConfig,
}

impl Default for DpmConfig {
    fn default() -> Self {
        DpmConfig {
            pool: PmemConfig::default(),
            segment_bytes: 8 << 20,
            flush_batch_bytes: 64 << 10,
            merge_threads: 4,
            unmerged_segment_threshold: 2,
            index: PclhtConfig::default(),
            inject_media_delay: false,
            gc: GcConfig::default(),
        }
    }
}

impl DpmConfig {
    /// A small configuration for unit tests: tiny pool, tiny segments, a
    /// single merge thread, and persistence tracking enabled.
    pub fn small_for_tests() -> Self {
        DpmConfig {
            pool: PmemConfig {
                capacity_bytes: 16 << 20,
                track_persistence: false,
                ..PmemConfig::default()
            },
            segment_bytes: 32 << 10,
            flush_batch_bytes: 4 << 10,
            merge_threads: 1,
            unmerged_segment_threshold: 2,
            index: PclhtConfig {
                initial_buckets: 256,
                ..PclhtConfig::default()
            },
            inject_media_delay: false,
            // Tests opt into compaction explicitly (via `gc:
            // GcConfig::aggressive()` or `compact_once`), so default unit
            // tests exercise exactly the pre-compactor behaviour.
            gc: GcConfig {
                background: false,
                ..GcConfig::default()
            },
        }
    }

    /// Scale the pool and index for roughly `expected_keys` keys of
    /// `value_len` bytes each (plus slack for updates).
    pub fn sized_for(expected_keys: u64, value_len: usize, slack_factor: f64) -> Self {
        let entry = (value_len as u64 + 64).next_multiple_of(8);
        let bytes = ((expected_keys * entry) as f64 * slack_factor.max(1.2)) as u64 + (64 << 20);
        DpmConfig {
            pool: PmemConfig::with_capacity(bytes),
            index: PclhtConfig::for_capacity(expected_keys as usize * 2),
            ..DpmConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = DpmConfig::default();
        assert_eq!(c.segment_bytes, 8 << 20);
        assert_eq!(c.merge_threads, 4);
        assert_eq!(c.unmerged_segment_threshold, 2);
    }

    #[test]
    fn sized_for_scales_with_dataset() {
        let small = DpmConfig::sized_for(1_000, 64, 1.5);
        let big = DpmConfig::sized_for(1_000_000, 1024, 1.5);
        assert!(big.pool.capacity_bytes > small.pool.capacity_bytes);
        assert!(big.index.initial_buckets > small.index.initial_buckets);
    }
}
