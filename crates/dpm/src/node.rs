//! The DPM node: shared pool, metadata index, segment registry, merge engine,
//! garbage collection, indirect pointers, recovery and the metadata store.

use crate::config::DpmConfig;
use crate::entry::{decode_entry, DecodedEntry};
use crate::failpoint::FailpointSet;
use crate::gc::{compact_pass, CompactionReport, Compactor};
use crate::loc::PackedLoc;
use crate::merge::{apply_recovered_entry, MergeEngine, MergeTask};
use crate::ordered::{OrderedIndex, TreeStats};
use crate::segment::SegmentState;
use crossbeam::epoch::{Atomic, Owned};
use dinomo_obs::{LockId, Registry, Stage};
use dinomo_partition::key_hash;
use dinomo_pclht::{pin, Guard, Pclht};
use dinomo_pmem::{PmAddr, PmemError, PmemPool};
use dinomo_simnet::Nic;
use parking_lot::{Condvar, Mutex, MutexGuard, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Lock-free lookup table from pool address to live segment: `(base, end,
/// segment)` triples sorted by base. Readers binary-search it under their
/// existing epoch pin; writers rebuild and swap it (epoch-retiring the old
/// table) under the segment-registry write lock on every allocate/free —
/// both rare next to the per-read validations it serves.
type SegTable = Vec<(u64, u64, Arc<SegmentState>)>;

/// Callback invoked after the compactor relocates a key's log entry: the
/// key and the entry's **old** location. KVS-node caches hold shortcuts
/// (raw value addresses) into log segments; a relocation makes any
/// shortcut into the victim dangling, so the cluster layer registers an
/// observer that drops the key's cached locations on every node before
/// the victim segment is freed.
pub type RelocationObserver = Box<dyn Fn(&[u8], PackedLoc) + Send + Sync>;

/// Holder for the optional relocation observer (manual `Debug`: the boxed
/// callback has none).
#[derive(Default)]
pub(crate) struct ObserverSlot(RwLock<Option<RelocationObserver>>);

impl std::fmt::Debug for ObserverSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("ObserverSlot")
            .field(&self.0.read().is_some())
            .finish()
    }
}

/// Metric handles resolved once against the node's registry so the hot
/// paths never touch the registry's name map.
#[derive(Debug)]
pub(crate) struct DpmMetrics {
    pub(crate) registry: Arc<Registry>,
    /// `dpm_cell_registry_waits` — cell swings that lost a race.
    pub(crate) cell_swing_waits: dinomo_obs::Counter,
    /// `lock_wait_segment_table_ns` — segment-registry write lock.
    pub(crate) seg_table_wait: dinomo_obs::Histogram,
    /// `lock_wait_merge_engine_ns` — merge hand-off mutex.
    pub(crate) merge_engine_wait: dinomo_obs::Histogram,
    /// `stage_flush_wait_ns` — writer stalled for merge slack.
    pub(crate) stage_flush_wait: dinomo_obs::Histogram,
    /// `stage_merge_wait_ns` — caller drained the merge engine.
    pub(crate) stage_merge_wait: dinomo_obs::Histogram,
    /// `stage_dpm_lookup_ns` — the remote (KN cache-miss) read path.
    pub(crate) stage_dpm_lookup: dinomo_obs::Histogram,
}

impl DpmMetrics {
    fn new(registry: Arc<Registry>) -> Self {
        DpmMetrics {
            cell_swing_waits: registry.counter("dpm_cell_registry_waits"),
            seg_table_wait: registry.lock_wait(LockId::SegmentTable),
            merge_engine_wait: registry.lock_wait(LockId::MergeEngine),
            stage_flush_wait: registry.stage(Stage::FlushWait),
            stage_merge_wait: registry.stage(Stage::MergeWait),
            stage_dpm_lookup: registry.stage(Stage::DpmLookup),
            registry,
        }
    }
}

/// Result of resolving a key through the DPM (the KN cache-miss path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookupResult {
    /// The value bytes, if the key exists.
    pub value: Option<Vec<u8>>,
    /// Where the value bytes live (for caching a shortcut).
    pub value_loc: Option<(PmAddr, u32)>,
    /// Whether the key is reached through an indirection cell (selectively
    /// replicated keys cannot be value-cached, §5.3).
    pub indirect: bool,
    /// Network round trips this lookup consumed.
    pub rts: u32,
}

/// Aggregate DPM statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DpmStats {
    /// Log segments allocated so far.
    pub segments_allocated: u64,
    /// Log segments reclaimed by GC.
    pub segments_freed: u64,
    /// Log entries merged into the index.
    pub entries_merged: u64,
    /// Indirection cells currently installed.
    pub indirect_cells: u64,
    /// Keys currently in the metadata index.
    pub index_len: u64,
    /// Victim segments the log-cleaning compactor emptied and freed.
    pub segments_compacted: u64,
    /// Bytes of live entries the compactor relocated into fresh segments.
    pub bytes_relocated: u64,
    /// Live entries the compactor relocated.
    pub entries_relocated: u64,
    /// Bytes still referenced by live entries across all live segments
    /// (written minus invalidated). Allocated-segment bytes divided by
    /// this is the store's space amplification.
    pub live_bytes: u64,
    /// Total capacity of the currently allocated (non-freed) segments.
    pub segment_bytes_allocated: u64,
    /// Cell-swing operations (cell installs, shared-path publishes,
    /// `cas_indirect`) that lost a race to a concurrent swing, relocation
    /// or merge and had to retry or abandon. This is the contention signal
    /// that used to hide inside the global cell-registry mutex: a rising
    /// rate under load means hot shared keys are serializing on their
    /// cells.
    pub cell_registry_waits: u64,
}

/// Guard returned by [`DpmNode::pause_collectors`]: collector passes are
/// excluded while it lives.
pub struct CollectorPause<'a> {
    _guard: MutexGuard<'a, ()>,
}

/// State shared between the [`DpmNode`] facade and the merge workers.
#[derive(Debug)]
pub struct DpmInner {
    config: DpmConfig,
    pool: Arc<PmemPool>,
    index: Pclht,
    segments: RwLock<Vec<Arc<SegmentState>>>,
    next_segment_id: AtomicU64,
    merge_sync: (Mutex<()>, Condvar),
    /// Cluster-global log sequence number. Sequence numbers order entries
    /// for the merge engine's stale-entry detection; they must be
    /// comparable across KVS nodes because a key's ownership (and therefore
    /// its writer) moves between nodes, so they are drawn from one shared
    /// counter rather than per-writer counters.
    next_seq: AtomicU64,
    entries_merged: AtomicU64,
    segments_freed: AtomicU64,
    indirect_cells: AtomicU64,
    /// Lock-free address → segment lookup (see [`SegTable`]). The
    /// authoritative registry stays in `segments`; this is the read-path
    /// projection of it, rebuilt on every allocate/free.
    seg_table: Atomic<SegTable>,
    /// Metric handles over this node's registry (see [`DpmMetrics`];
    /// cell-swing races land in `metrics.cell_swing_waits` — swings are
    /// lock-free, a swing pins its target's segment before the cell/index
    /// CAS, so collectors check one per-segment counter instead of
    /// serializing every swing on a global registry mutex).
    metrics: DpmMetrics,
    /// Serializes compaction passes (background thread vs. the synchronous
    /// `compact_once` test hook).
    gc_pass_lock: Mutex<()>,
    /// The compactor's current destination segment, reused across passes
    /// until full (so small passes don't each strand a near-empty
    /// segment).
    gc_destination: Mutex<Option<Arc<SegmentState>>>,
    /// Observer notified after each successful relocation (see
    /// [`RelocationObserver`]).
    relocation_observer: ObserverSlot,
    /// Copy-on-write ordered secondary index over the merged key space
    /// (see [`crate::ordered`]). Maintained by the merge workers after
    /// each hash-index change and swung by the compactor on relocation;
    /// never consulted on the point-op path.
    ordered: OrderedIndex,
    segments_compacted: AtomicU64,
    bytes_relocated: AtomicU64,
    entries_relocated: AtomicU64,
    /// Highest merged delete sequence number per key (see
    /// [`DpmInner::record_merged_tombstone`]).
    merged_tombstones: Mutex<HashMap<Vec<u8>, u64>>,
    /// Entry count of `merged_tombstones`, kept in an atomic so the merge
    /// workers' common path (first insert of a new key, no deletes ever
    /// recorded) skips the map lock entirely instead of serializing on it.
    merged_tombstone_count: AtomicU64,
    metadata: Mutex<HashMap<String, Vec<u8>>>,
    metadata_region: Mutex<Vec<(PmAddr, u64)>>,
    /// Crash-injection points (armed only by tests and the check driver;
    /// a relaxed-load no-op otherwise — see [`crate::failpoint`]).
    failpoints: FailpointSet,
}

impl DpmInner {
    pub(crate) fn pool(&self) -> &PmemPool {
        &self.pool
    }

    pub(crate) fn index(&self) -> &Pclht {
        &self.index
    }

    pub(crate) fn config(&self) -> &DpmConfig {
        &self.config
    }

    pub(crate) fn notify_merge_progress(&self) {
        let _guard = self.merge_sync.0.lock();
        self.merge_sync.1.notify_all();
    }

    pub(crate) fn stats_entries_merged(&self, n: u64) {
        self.entries_merged.fetch_add(n, Ordering::Relaxed);
    }

    /// Modeled media cost of merging one entry (index-bucket write plus
    /// reading the entry header/key), used when `inject_media_delay` is set.
    pub(crate) fn media_merge_cost(&self, entry: &DecodedEntry) -> Duration {
        let profile = self.pool.profile();
        profile.read_time(crate::entry::HEADER_BYTES + u64::from(entry.header.key_len))
            + profile.write_time(64)
    }

    /// `true` if the raw index word refers to an entry (directly or through
    /// an indirection cell) whose stored key equals `key`.
    pub(crate) fn loc_matches_key(&self, raw: u64, key: &[u8]) -> bool {
        let loc = PackedLoc::from_raw(raw);
        let entry_loc = if loc.is_indirect() {
            match self.indirect_cell_target(loc.addr()) {
                Some(t) => t,
                None => return false,
            }
        } else {
            loc
        };
        match decode_entry(&self.pool, entry_loc.addr(), entry_loc.len()) {
            Some(e) => e.key == key,
            None => false,
        }
    }

    /// Sequence number of the entry a direct location points at.
    pub(crate) fn entry_seq(&self, loc: PackedLoc) -> Option<u64> {
        decode_entry(&self.pool, loc.addr(), loc.len()).map(|e| e.header.seq)
    }

    /// `true` when the indexed state for a key — the direct entry, or the
    /// entry its indirection cell currently points at — carries a newer
    /// sequence number than `seq`.
    pub(crate) fn indexed_state_newer_than(&self, raw: u64, seq: u64) -> bool {
        let loc = PackedLoc::from_raw(raw);
        let entry_loc = if loc.is_indirect() {
            match self.indirect_cell_target(loc.addr()) {
                Some(t) => t,
                None => return false,
            }
        } else {
            loc
        };
        self.entry_seq(entry_loc) > Some(seq)
    }

    /// The entry an indirection cell identifies, for **key-identity**
    /// purposes: the live entry, or — when the cell carries a delete
    /// tombstone (bit 63 set; a cell's stored target is otherwise always a
    /// direct location) — the tombstoned-over last entry, so the index
    /// stays resolvable for the key until the merge removes it.
    pub(crate) fn indirect_cell_target(&self, cell: PmAddr) -> Option<PackedLoc> {
        let raw = self.pool.read_u64(cell);
        if raw == 0 {
            return None;
        }
        let loc = PackedLoc::from_raw(raw);
        Some(PackedLoc::direct(loc.addr(), loc.len()))
    }

    /// The sequence number of the state an indirection cell currently
    /// publishes: the live target entry's seq, or — when the cell carries
    /// a delete tombstone — the tombstoning delete's seq from the cell's
    /// second word. `None` when the cell is empty (released).
    pub(crate) fn cell_published_seq(&self, cell: PmAddr) -> Option<u64> {
        let raw = self.pool.read_u64(cell);
        if raw == 0 {
            return None;
        }
        let loc = PackedLoc::from_raw(raw);
        if loc.is_indirect() {
            Some(self.pool.read_u64(cell.offset(8)))
        } else {
            self.entry_seq(loc)
        }
    }

    /// The entry an indirection cell currently serves to **readers**:
    /// `None` when the cell is empty or tombstoned by a shared-path delete.
    pub(crate) fn indirect_cell_live_target(&self, cell: PmAddr) -> Option<PackedLoc> {
        let raw = self.pool.read_u64(cell);
        let loc = PackedLoc::from_raw(raw);
        if raw == 0 || loc.is_indirect() {
            None
        } else {
            Some(loc)
        }
    }

    /// Mark the entry at `loc` invalid in its segment's accounting
    /// (idempotent per entry — see `SegmentState::record_invalidated`).
    /// Lock-free: resolves the segment through the epoch-protected lookup
    /// table (this runs on every overwrite the merge engine applies).
    pub(crate) fn invalidate_entry(&self, loc: PackedLoc) {
        let guard = pin();
        if let Some(seg) = self.segment_at(&guard, loc.addr()) {
            seg.record_invalidated(loc.addr().0 - seg.base.0, loc.len());
        }
    }

    /// Resolve `addr` to the live segment containing it, without any lock:
    /// binary search over the epoch-protected [`SegTable`]. The reference
    /// is valid for the guard's lifetime; the segment may still be marked
    /// freed concurrently — callers that care re-check
    /// [`SegmentState::is_freed`].
    pub(crate) fn segment_at<'g>(
        &self,
        guard: &'g Guard,
        addr: PmAddr,
    ) -> Option<&'g Arc<SegmentState>> {
        let table = self.seg_table.load(Ordering::SeqCst, guard);
        // SAFETY: the table is only replaced via `publish_seg_table`, which
        // retires the old vector through the epoch scheme; loading under
        // `guard` keeps this snapshot alive.
        let entries = unsafe { table.deref() };
        let i = entries.partition_point(|e| e.1 <= addr.0);
        let e = entries.get(i)?;
        (e.0 <= addr.0 && addr.0 < e.1).then_some(&e.2)
    }

    /// Rebuild and swap the lock-free segment lookup table. Must be called
    /// with the `segments` write lock held (allocate/free paths), which
    /// serializes rebuilds; the superseded table is epoch-retired so
    /// in-flight readers finish against their snapshot.
    fn publish_seg_table(&self, segments: &[Arc<SegmentState>]) {
        let mut entries: SegTable = segments
            .iter()
            .map(|s| (s.base.0, s.base.0 + s.capacity, Arc::clone(s)))
            .collect();
        entries.sort_unstable_by_key(|e| e.0);
        let guard = pin();
        let old = self
            .seg_table
            .swap(Owned::new(entries), Ordering::SeqCst, &guard);
        // SAFETY: `old` was just unlinked by the swap and is never
        // re-published; readers still traversing it are epoch-pinned.
        unsafe { guard.defer_destroy(old) };
    }

    /// Pin `addr`'s segment against relocation and free (a cell is about
    /// to reference an entry in it). Pins **before** validating: the
    /// freed re-check after the increment means a collector either sees
    /// the pin at its free-time check or this returns `None` and the
    /// caller retries against fresh index state. `None` when the address
    /// no longer lies in a live segment.
    pub(crate) fn pin_live_segment_at(
        &self,
        guard: &Guard,
        addr: PmAddr,
    ) -> Option<Arc<SegmentState>> {
        let seg = self.segment_at(guard, addr)?;
        seg.pin_cell();
        if seg.is_freed() {
            seg.unpin_cell();
            return None;
        }
        Some(Arc::clone(seg))
    }

    /// Release the cell pin on the segment containing `addr` (the cell
    /// swung away from, or dismantled its reference to, an entry there).
    /// Pinned segments are never freed, so the lookup cannot miss while
    /// the pin is held.
    pub(crate) fn unpin_segment_at(&self, guard: &Guard, addr: PmAddr) {
        if let Some(seg) = self.segment_at(guard, addr) {
            seg.unpin_cell();
        } else {
            debug_assert!(false, "unpin of {addr:?} found no live segment");
        }
    }

    /// Count a cell swing that lost a race and retried or abandoned (see
    /// [`DpmStats::cell_registry_waits`]).
    pub(crate) fn record_cell_wait(&self) {
        self.metrics.cell_swing_waits.inc();
    }

    /// Snapshot of the live segment list.
    pub(crate) fn segments_snapshot(&self) -> Vec<Arc<SegmentState>> {
        self.segments.read().clone()
    }

    /// The id the next allocated segment will get (monotonic; used as the
    /// compactor's logical clock for segment age).
    pub(crate) fn next_segment_id_hint(&self) -> u64 {
        self.next_segment_id.load(Ordering::Relaxed)
    }

    /// Allocate and register a fresh log segment owned by `kn`.
    pub(crate) fn allocate_segment_inner(&self, kn: u32) -> Result<Arc<SegmentState>, PmemError> {
        let base = self.pool.alloc(self.config.segment_bytes)?;
        let id = self.next_segment_id.fetch_add(1, Ordering::Relaxed);
        let seg = Arc::new(SegmentState::new(id, kn, base, self.config.segment_bytes));
        let mut segments = self.metrics.seg_table_wait.time(|| self.segments.write());
        segments.push(Arc::clone(&seg));
        self.publish_seg_table(&segments);
        Ok(seg)
    }

    /// The copy-on-write ordered secondary index.
    pub(crate) fn ordered(&self) -> &OrderedIndex {
        &self.ordered
    }

    /// This node's crash-injection points.
    pub(crate) fn failpoints(&self) -> &FailpointSet {
        &self.failpoints
    }

    /// Serialize compaction passes.
    pub(crate) fn lock_gc_pass(&self) -> MutexGuard<'_, ()> {
        self.gc_pass_lock.lock()
    }

    /// The compactor's persistent destination-segment slot.
    pub(crate) fn gc_destination(&self) -> MutexGuard<'_, Option<Arc<SegmentState>>> {
        self.gc_destination.lock()
    }

    /// Free a segment's pool bytes once every epoch guard pinned at call
    /// time has dropped, and drop it from the registry now. Readers
    /// resolve a location and decode the entry under one epoch pin, so
    /// deferring the free closes the window where a reader that loaded a
    /// location just before it was invalidated would decode freed (and
    /// possibly reused) memory. Returns `false` if the segment was
    /// already freed.
    pub(crate) fn free_segment_deferred(&self, seg: &Arc<SegmentState>) -> bool {
        if !seg.mark_freed() {
            return false;
        }
        {
            let mut segments = self.metrics.seg_table_wait.time(|| self.segments.write());
            segments.retain(|s| s.id != seg.id);
            self.publish_seg_table(&segments);
        }
        let pool = Arc::clone(&self.pool);
        let base = seg.base;
        let capacity = seg.capacity;
        let guard = pin();
        // SAFETY: the segment is unreachable from the index (every entry is
        // invalid) and unreferenced by any indirection cell (cell-pin count
        // is zero); the freed flag above diverts shortcut validation. Only
        // readers pinned before this call can still hold raw addresses into
        // it, and the epoch scheme delays the closure past their unpin.
        unsafe {
            guard.defer_unchecked(move || pool.free(base, capacity));
        }
        // Seal this thread's garbage bag immediately: segment frees must
        // reach the global buckets on their own, not ride on this thread's
        // future pin cadence (it may be a short-lived compactor worker).
        guard.flush();
        self.segments_freed.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Record a successful relocation: swing the ordered index to the new
    /// location, then notify the observer. The ordered swing happens
    /// before the victim segment can be freed (the compactor frees only
    /// at the end of its pass, through [`DpmInner::free_segment_deferred`]),
    /// so the current tree generation never points into freed memory; a
    /// mismatch means a concurrent merge already superseded the entry and
    /// the newer location must stay.
    pub(crate) fn notify_relocated(&self, key: &[u8], old_loc: PackedLoc, new_loc: PackedLoc) {
        self.entries_relocated.fetch_add(1, Ordering::Relaxed);
        self.bytes_relocated
            .fetch_add(old_loc.len(), Ordering::Relaxed);
        let guard = pin();
        self.ordered.relocate(&guard, key, old_loc, new_loc);
        if let Some(observer) = &*self.relocation_observer.0.read() {
            observer(key, old_loc);
        }
    }

    /// Count a victim segment fully emptied and freed by the compactor.
    pub(crate) fn record_segment_compacted(&self) {
        self.segments_compacted.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a merged delete, so a stale put (older sequence number, e.g.
    /// from another KN's lagging segment) that merges later cannot re-insert
    /// the deleted key. An entry is dropped when a newer put re-inserts the
    /// key; keys deleted and never rewritten keep one entry each — bounded
    /// by the set of dead keys, acceptable at this simulation's scale.
    pub(crate) fn record_merged_tombstone(&self, key: &[u8], seq: u64) {
        let mut map = self.merged_tombstones.lock();
        match map.entry(key.to_vec()) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                if *e.get() < seq {
                    e.insert(seq);
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(seq);
                self.merged_tombstone_count.fetch_add(1, Ordering::Release);
            }
        }
    }

    /// `true` when a delete newer than `seq` has already merged for `key`.
    pub(crate) fn tombstone_newer_than(&self, key: &[u8], seq: u64) -> bool {
        if self.merged_tombstone_count.load(Ordering::Acquire) == 0 {
            return false;
        }
        self.merged_tombstones
            .lock()
            .get(key)
            .is_some_and(|&d| d > seq)
    }

    /// Drop `key`'s merged-tombstone record (a newer put re-inserted it;
    /// staleness is decided against the indexed entry from here on).
    pub(crate) fn forget_merged_tombstone(&self, key: &[u8]) {
        if self.merged_tombstone_count.load(Ordering::Acquire) == 0 {
            return;
        }
        if self.merged_tombstones.lock().remove(key).is_some() {
            self.merged_tombstone_count.fetch_sub(1, Ordering::Release);
        }
    }

    /// Drop an indirection cell (its 16 bytes are returned to the allocator).
    pub(crate) fn release_indirect_cell(&self, cell: PmAddr) {
        self.pool.free(cell, 16);
        self.indirect_cells.fetch_sub(1, Ordering::Relaxed);
    }

    fn unmerged_sealed_segments(&self, kn: u32) -> usize {
        self.segments
            .read()
            .iter()
            .filter(|s| s.owner_kn == kn && s.is_sealed() && !s.is_fully_merged())
            .count()
    }

    fn unmerged_segments(&self, kn: u32) -> usize {
        self.segments
            .read()
            .iter()
            .filter(|s| s.owner_kn == kn && !s.is_fully_merged())
            .count()
    }
}

/// The DPM node (shared persistent-memory pool plus its limited processors).
///
/// One `DpmNode` instance represents the entire disaggregated PM tier of the
/// cluster.  It is shared (behind an `Arc`) by every KVS node, the Clover
/// baseline's metadata server, and the control plane.
#[derive(Debug)]
pub struct DpmNode {
    inner: Arc<DpmInner>,
    merge: Mutex<MergeEngine>,
    /// Background log-cleaning compactor (present only when
    /// `config.gc.background` is set).
    gc: Mutex<Option<Compactor>>,
}

impl DpmNode {
    /// Create a DPM node (allocating its pool and index, and spawning the
    /// merge workers) with a private metrics registry.
    pub fn new(config: DpmConfig) -> Result<Self, PmemError> {
        Self::with_metrics(config, Registry::new_shared())
    }

    /// [`DpmNode::new`], recording into a caller-supplied registry (the
    /// KVS shares one registry between its client/KN layers and the DPM).
    pub fn with_metrics(config: DpmConfig, registry: Arc<Registry>) -> Result<Self, PmemError> {
        let pool = Arc::new(PmemPool::new(config.pool));
        let index = Pclht::new(Arc::clone(&pool), config.index)?;
        let metrics = DpmMetrics::new(registry);
        let ordered =
            OrderedIndex::with_lock_profile(metrics.registry.lock_wait(LockId::OrderedRoot));
        let inner = Arc::new(DpmInner {
            config,
            pool,
            index,
            segments: RwLock::new(Vec::new()),
            next_segment_id: AtomicU64::new(1),
            merge_sync: (Mutex::new(()), Condvar::new()),
            next_seq: AtomicU64::new(0),
            entries_merged: AtomicU64::new(0),
            segments_freed: AtomicU64::new(0),
            indirect_cells: AtomicU64::new(0),
            seg_table: Atomic::new(Vec::new()),
            metrics,
            gc_pass_lock: Mutex::new(()),
            gc_destination: Mutex::new(None),
            relocation_observer: ObserverSlot::default(),
            ordered,
            segments_compacted: AtomicU64::new(0),
            bytes_relocated: AtomicU64::new(0),
            entries_relocated: AtomicU64::new(0),
            merged_tombstones: Mutex::new(HashMap::new()),
            merged_tombstone_count: AtomicU64::new(0),
            metadata: Mutex::new(HashMap::new()),
            metadata_region: Mutex::new(Vec::new()),
            failpoints: FailpointSet::new(),
        });
        let merge = MergeEngine::start(Arc::clone(&inner), config.merge_threads);
        let gc = config
            .gc
            .background
            .then(|| Compactor::start(Arc::clone(&inner)));
        Ok(DpmNode {
            inner,
            merge: Mutex::new(merge),
            gc: Mutex::new(gc),
        })
    }

    /// Register the callback invoked after every successful entry
    /// relocation (see [`RelocationObserver`]). The cluster layer uses it
    /// to drop each relocated key's cached shortcut locations before the
    /// victim segment is freed.
    pub fn set_relocation_observer(&self, observer: RelocationObserver) {
        *self.inner.relocation_observer.0.write() = Some(observer);
    }

    /// The configuration this node was created with.
    pub fn config(&self) -> &DpmConfig {
        &self.inner.config
    }

    /// The backing persistent-memory pool.
    pub fn pool(&self) -> &Arc<PmemPool> {
        &self.inner.pool
    }

    /// The metadata index (exposed for baselines, recovery checks and tests).
    pub fn index(&self) -> &Pclht {
        &self.inner.index
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> DpmStats {
        let (live_segments, live_bytes, segment_bytes_allocated) = {
            let segments = self.inner.segments.read();
            let mut live = 0u64;
            let mut capacity = 0u64;
            for seg in segments.iter().filter(|s| !s.is_freed()) {
                live += seg.live_bytes();
                capacity += seg.capacity;
            }
            (segments.len() as u64, live, capacity)
        };
        DpmStats {
            segments_allocated: live_segments,
            segments_freed: self.inner.segments_freed.load(Ordering::Relaxed),
            entries_merged: self.inner.entries_merged.load(Ordering::Relaxed),
            indirect_cells: self.inner.indirect_cells.load(Ordering::Relaxed),
            index_len: self.inner.index.len(),
            segments_compacted: self.inner.segments_compacted.load(Ordering::Relaxed),
            bytes_relocated: self.inner.bytes_relocated.load(Ordering::Relaxed),
            entries_relocated: self.inner.entries_relocated.load(Ordering::Relaxed),
            live_bytes,
            segment_bytes_allocated,
            cell_registry_waits: self.inner.metrics.cell_swing_waits.value(),
        }
    }

    /// The metrics registry this node records into.
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.inner.metrics.registry
    }

    // ---------------------------------------------------------------- logs

    /// Allocate a fresh log segment owned by `kn`.
    pub fn allocate_segment(&self, kn: u32) -> Result<Arc<SegmentState>, PmemError> {
        self.inner.allocate_segment_inner(kn)
    }

    /// `true` while `addr` lies inside a live (non-freed) segment. The
    /// KN shortcut-cache hit path validates its cached value address with
    /// this under an epoch pin: the compactor sets the freed flag *before*
    /// deferring the pool free, so a reader that passes the check while
    /// pinned can never observe the bytes being reused.
    ///
    /// O(1): one binary search over the epoch-protected segment table plus
    /// one freed-bit load — no lock, no scan (this runs on every
    /// shortcut-cache hit). Pins internally; callers already holding a
    /// guard should use [`DpmNode::value_addr_is_live_in`].
    pub fn value_addr_is_live(&self, addr: PmAddr) -> bool {
        let guard = pin();
        self.value_addr_is_live_in(&guard, addr)
    }

    /// [`DpmNode::value_addr_is_live`] under a caller-held epoch pin. The
    /// guard must be the same one protecting the subsequent value read:
    /// the liveness answer only holds as long as that pin does.
    pub fn value_addr_is_live_in(&self, guard: &Guard, addr: PmAddr) -> bool {
        self.inner
            .segment_at(guard, addr)
            .is_some_and(|s| !s.is_freed())
    }

    /// Number of segments of `kn` that are not yet fully merged.
    pub fn unmerged_segments(&self, kn: u32) -> usize {
        self.inner.unmerged_segments(kn)
    }

    /// Draw the next cluster-global log sequence number (see
    /// `DpmInner::next_seq` for why it is global).
    pub fn next_seq(&self) -> u64 {
        self.inner.next_seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Block while `kn` has at least `unmerged_segment_threshold` sealed but
    /// unmerged segments (the paper's write-path back-pressure).
    pub fn wait_for_merge_slack(&self, kn: u32) {
        self.inner.metrics.stage_flush_wait.time(|| {
            let threshold = self.inner.config.unmerged_segment_threshold.max(1);
            let mut guard = self.inner.merge_sync.0.lock();
            while self.inner.unmerged_sealed_segments(kn) >= threshold {
                self.inner
                    .merge_sync
                    .1
                    .wait_for(&mut guard, Duration::from_millis(50));
            }
        })
    }

    /// Block until every segment of `kn` is fully merged (used before
    /// reconfiguration and during failure handling, §3.5).
    pub fn wait_until_merged(&self, kn: u32) {
        self.inner.metrics.stage_merge_wait.time(|| {
            let mut guard = self.inner.merge_sync.0.lock();
            while self.inner.unmerged_segments(kn) > 0 {
                self.inner
                    .merge_sync
                    .1
                    .wait_for(&mut guard, Duration::from_millis(50));
            }
        })
    }

    /// Block until every segment of every KN is fully merged.
    pub fn wait_until_all_merged(&self) {
        let kns: Vec<u32> = {
            let segs = self.inner.segments.read();
            let mut v: Vec<u32> = segs.iter().map(|s| s.owner_kn).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        for kn in kns {
            self.wait_until_merged(kn);
        }
    }

    /// Queue a committed byte range for asynchronous merging.
    pub(crate) fn submit_merge_batch(&self, segment: &Arc<SegmentState>, start: u64, len: u64) {
        let engine = self
            .inner
            .metrics
            .merge_engine_wait
            .time(|| self.merge.lock());
        engine.submit(MergeTask {
            segment: Arc::clone(segment),
            start,
            len,
        });
    }

    // ------------------------------------------------------------- lookups

    /// DPM-side (local) lookup of a key's packed location.
    pub fn local_lookup(&self, key: &[u8]) -> Option<PackedLoc> {
        self.local_lookup_in(&pin(), key)
    }

    /// [`DpmNode::local_lookup`] under a caller-supplied epoch guard, so a
    /// batch of lookups pays for one pin (see [`dinomo_pclht::pin`]).
    pub fn local_lookup_in(&self, guard: &Guard, key: &[u8]) -> Option<PackedLoc> {
        self.inner
            .index
            .get_in(guard, key_hash(key), |raw| {
                self.inner.loc_matches_key(raw, key)
            })
            .map(PackedLoc::from_raw)
    }

    /// DPM-side (local) read of a key's current value.
    pub fn local_read(&self, key: &[u8]) -> Option<Vec<u8>> {
        // One pin across lookup *and* decode: the compactor defers a freed
        // victim's pool free past every guard pinned when it swung the
        // index, so the location resolved here stays readable even if the
        // entry is relocated mid-read.
        let guard = pin();
        let loc = self.local_lookup_in(&guard, key)?;
        let entry_loc = if loc.is_indirect() {
            self.inner.indirect_cell_live_target(loc.addr())?
        } else {
            loc
        };
        let entry = decode_entry(&self.inner.pool, entry_loc.addr(), entry_loc.len())?;
        Some(entry.read_value(&self.inner.pool))
    }

    /// The full cache-miss path as a KVS node would execute it over the
    /// network: traverse the index with one-sided reads, then fetch the entry
    /// (and, for shared keys, the indirection cell first).
    pub fn remote_read(&self, nic: &Nic, key: &[u8]) -> LookupResult {
        self.remote_read_in(&pin(), nic, key)
    }

    /// [`DpmNode::remote_read`] under a caller-supplied epoch guard — the
    /// KN batch path pins once per batch instead of once per miss.
    pub fn remote_read_in(&self, guard: &Guard, nic: &Nic, key: &[u8]) -> LookupResult {
        self.inner
            .metrics
            .stage_dpm_lookup
            .time(|| self.remote_read_in_untimed(guard, nic, key))
    }

    fn remote_read_in_untimed(&self, guard: &Guard, nic: &Nic, key: &[u8]) -> LookupResult {
        let (raw, mut rts) = self
            .inner
            .index
            .remote_get_in(guard, nic, key_hash(key), |raw| {
                self.inner.loc_matches_key(raw, key)
            });
        let Some(raw) = raw else {
            return LookupResult {
                value: None,
                value_loc: None,
                indirect: false,
                rts,
            };
        };
        let loc = PackedLoc::from_raw(raw);
        let (entry_loc, indirect) = if loc.is_indirect() {
            nic.one_sided_read(8);
            rts += 1;
            match self.inner.indirect_cell_live_target(loc.addr()) {
                Some(t) => (t, true),
                None => {
                    return LookupResult {
                        value: None,
                        value_loc: None,
                        indirect: true,
                        rts,
                    }
                }
            }
        } else {
            (loc, false)
        };
        nic.one_sided_read(entry_loc.len() as usize);
        rts += 1;
        match decode_entry(&self.inner.pool, entry_loc.addr(), entry_loc.len()) {
            Some(entry) if entry.key == key => {
                let value = entry.read_value(&self.inner.pool);
                LookupResult {
                    value_loc: Some((entry.value_addr, entry.header.val_len)),
                    value: Some(value),
                    indirect,
                    rts,
                }
            }
            _ => LookupResult {
                value: None,
                value_loc: None,
                indirect,
                rts,
            },
        }
    }

    /// Shortcut-hit path: fetch `len` value bytes at `addr` with a single
    /// one-sided read.
    pub fn read_value_at(&self, nic: &Nic, addr: PmAddr, len: u32) -> Vec<u8> {
        nic.one_sided_read(len as usize);
        let mut buf = vec![0u8; len as usize];
        self.inner.pool.read_bytes(addr, &mut buf);
        buf
    }

    // ------------------------------------------------------- ordered index

    /// The copy-on-write ordered secondary index (see [`crate::ordered`]).
    /// Scans pin an epoch guard, take a [`OrderedIndex::snapshot`], and
    /// walk it; the guard keeps both the tree generation and every segment
    /// its locations point into alive.
    pub fn ordered(&self) -> &OrderedIndex {
        self.inner.ordered()
    }

    /// Scan-path value fetch: decode the log entry at a **direct** location
    /// taken from an ordered-index snapshot and return its value bytes
    /// (one one-sided read). The caller's guard must be the one the
    /// snapshot was taken under — it is what keeps the entry's segment
    /// from being freed and reused.
    pub fn read_entry_value_in(
        &self,
        _guard: &Guard,
        nic: &Nic,
        loc: PackedLoc,
    ) -> Option<Vec<u8>> {
        nic.one_sided_read(loc.len() as usize);
        let entry = decode_entry(&self.inner.pool, loc.addr(), loc.len())?;
        Some(entry.read_value(&self.inner.pool))
    }

    /// Verify the ordered index against the hash index and the segment
    /// registry. Meaningful only at a quiescent point (e.g. after
    /// [`DpmNode::wait_until_all_merged`]): checks the tree's structural
    /// invariants, that every ordered key resolves in the hash index, that
    /// direct keys store the same location the hash index does and that
    /// the location lies in a live segment, and that every hash-indexed
    /// key appears in the ordered index.
    pub fn check_ordered(&self) -> Result<TreeStats, String> {
        let guard = pin();
        let stats = self.inner.ordered.check_tree(&|key, loc| {
            let Some(raw) = self.inner.index.get_in(&guard, key_hash(key), |raw| {
                self.inner.loc_matches_key(raw, key)
            }) else {
                return Err(format!("ordered key {key:?} missing from the hash index"));
            };
            let indexed = PackedLoc::from_raw(raw);
            if indexed.is_indirect() {
                // Shared key: the ordered location is deliberately stale
                // (scans read through the cell) — nothing to validate.
                return Ok(());
            }
            if indexed != loc {
                return Err(format!(
                    "ordered key {key:?} stores {loc:?} but the hash index has {indexed:?}"
                ));
            }
            if !self.value_addr_is_live(loc.addr()) {
                return Err(format!(
                    "ordered key {key:?} points into a freed segment: {loc:?}"
                ));
            }
            Ok(())
        })?;
        // Reverse containment: every hash-indexed key must have an ordered
        // entry (shared keys included — they keep their pre-sharing entry).
        let mut missing: Option<String> = None;
        self.inner.index.for_each_in(&guard, |_tag, raw| {
            if missing.is_some() {
                return;
            }
            let loc = PackedLoc::from_raw(raw);
            let entry_loc = if loc.is_indirect() {
                match self.inner.indirect_cell_target(loc.addr()) {
                    Some(t) => t,
                    None => return,
                }
            } else {
                loc
            };
            let Some(entry) = decode_entry(&self.inner.pool, entry_loc.addr(), entry_loc.len())
            else {
                return;
            };
            if self.inner.ordered.get(&guard, &entry.key).is_none() {
                missing = Some(format!(
                    "hash-indexed key {:?} missing from the ordered index",
                    entry.key
                ));
            }
        });
        if let Some(msg) = missing {
            return Err(msg);
        }
        Ok(stats)
    }

    // --------------------------------------------------- indirect pointers

    /// Install an indirection cell for `key` so its ownership can be shared
    /// across KNs.  Returns the cell address (or `None` if the key does not
    /// exist yet).  Idempotent: an already-shared key returns its cell.
    ///
    /// Lock-free against the compactor: the target entry's segment is
    /// pinned ([`SegmentState::pin_cell`]) *before* the index swing, and
    /// the swing CAS only succeeds against the exact location the pin was
    /// taken for. If the compactor relocated the entry in between, the CAS
    /// fails, the pin is released, and the install retries against the
    /// fresh index state.
    pub fn make_indirect(&self, key: &[u8]) -> Result<Option<PmAddr>, PmemError> {
        let tag = key_hash(key);
        let guard = pin();
        loop {
            let Some(raw) = self
                .inner
                .index
                .get(tag, |raw| self.inner.loc_matches_key(raw, key))
            else {
                return Ok(None);
            };
            let loc = PackedLoc::from_raw(raw);
            if loc.is_indirect() {
                return Ok(Some(loc.addr()));
            }
            // Pin the entry's segment so the compactor can neither relocate
            // the entry nor free the segment while the cell references it.
            let Some(target_seg) = self.inner.pin_live_segment_at(&guard, loc.addr()) else {
                // The entry moved (its old segment is gone): the index now
                // holds the relocated location — retry against it.
                self.inner.record_cell_wait();
                continue;
            };
            let cell = self.inner.pool.alloc(16)?;
            self.inner.pool.write_u64(cell, loc.raw());
            self.inner.pool.write_u64(cell.offset(8), 0);
            self.inner.pool.persist(cell, 16);
            self.inner.pool.drain();
            if self.inner.failpoints.hit("cell.before-swing") {
                // Simulated fail-stop between publishing the cell and
                // swinging the index onto it: the cell is durable but
                // unreachable, so recovery-wise it never existed. Free it
                // here (the in-process stand-in for a recovery-time cell
                // sweep) and abort.
                self.inner.pool.free(cell, 16);
                target_seg.unpin_cell();
                return Err(PmemError::InjectedFailure);
            }
            let new_raw = PackedLoc::indirect(cell, 16).raw();
            if self
                .inner
                .index
                .update(tag, |r| r == raw, new_raw)
                .is_some()
            {
                self.inner.indirect_cells.fetch_add(1, Ordering::Relaxed);
                return Ok(Some(cell));
            }
            // Lost the swing race (concurrent merge or relocation changed
            // the location): undo and retry.
            target_seg.unpin_cell();
            self.inner.pool.free(cell, 16);
            self.inner.record_cell_wait();
        }
    }

    /// Remove the indirection for `key`: a cell publishing a live value
    /// collapses back to a direct index pointer; a cell carrying a delete
    /// tombstone (the key's acknowledged final state is *absent*) takes
    /// its index entry down with it — leaving the indirect entry behind
    /// would make the next owned-path write merge look like a stale
    /// shared put and be discarded. Returns `true` if the key was
    /// indirect.
    pub fn remove_indirect(&self, key: &[u8]) -> bool {
        // No global serialization: dereplication runs with the key's owner
        // KNs closed and drained (see the cluster layer), so no concurrent
        // swing targets this cell. The compactor never relocates entries a
        // pinned cell references, and the pin is released only after the
        // cell is collapsed back to a direct (or removed) index state.
        let tag = key_hash(key);
        let Some(raw) = self
            .inner
            .index
            .get(tag, |raw| self.inner.loc_matches_key(raw, key))
        else {
            return false;
        };
        let loc = PackedLoc::from_raw(raw);
        if !loc.is_indirect() {
            return false;
        }
        // The cell's key-identity target — live or tombstoned-over — is the
        // address whose segment holds this cell's pin.
        let pinned_addr = self
            .inner
            .indirect_cell_target(loc.addr())
            .map(|t| t.addr());
        // Re-sync the ordered index with the collapsed state: while the
        // key was shared, writes published through the cell without index
        // (or ordered-index) updates, so the ordered entry is stale —
        // scans read shared keys through the cell, never through the
        // stored location. From here on the key is direct again and the
        // ordered location is load-bearing.
        let guard = pin();
        match self.inner.indirect_cell_live_target(loc.addr()) {
            Some(target) => {
                self.inner.index.update(tag, |r| r == raw, target.raw());
                self.inner.ordered.upsert(&guard, key, target);
            }
            None => {
                // Tombstoned (or already-empty) cell: the key is deleted;
                // the owned path must see a clean miss. The tombstoned-over
                // entry was invalidated when the delete published.
                self.inner.index.remove(tag, |r| r == raw);
                self.inner.ordered.remove(&guard, key);
            }
        }
        self.inner.release_indirect_cell(loc.addr());
        if let Some(addr) = pinned_addr {
            self.inner.unpin_segment_at(&guard, addr);
        }
        true
    }

    /// The indirection cell address for `key`, if it is currently shared.
    pub fn indirect_cell_of(&self, key: &[u8]) -> Option<PmAddr> {
        let loc = self.local_lookup(key)?;
        loc.is_indirect().then(|| loc.addr())
    }

    /// Read an indirection cell over the network (1 RT) and return the entry
    /// it points to — `None` when the cell is empty **or carries a delete
    /// tombstone**, so shared readers observe an acknowledged delete
    /// immediately.
    pub fn remote_read_indirect(&self, nic: &Nic, cell: PmAddr) -> Option<PackedLoc> {
        // Billed to the lookup stage: for a shared key this read is the
        // index traversal (cell → entry), the replicated-read analogue of
        // [`DpmNode::remote_read_in`].
        self.inner.metrics.stage_dpm_lookup.time(|| {
            nic.one_sided_read(8);
            self.inner.indirect_cell_live_target(cell)
        })
    }

    /// Atomically swing an indirection cell from `old` to `new` with a
    /// one-sided CAS (1 RT).  On success the superseded entry is invalidated
    /// for GC purposes.
    ///
    /// Pin transfer (see [`DpmNode::make_indirect`]): `new`'s segment is
    /// pinned before the CAS so the compactor cannot move the entry the
    /// cell is about to reference; on success the pin the cell held on
    /// `old`'s segment is released, on failure the speculative pin is.
    pub fn cas_indirect(
        &self,
        nic: &Nic,
        cell: PmAddr,
        old: PackedLoc,
        new: PackedLoc,
    ) -> Result<(), PackedLoc> {
        let guard = pin();
        let Some(new_seg) = self.inner.pin_live_segment_at(&guard, new.addr()) else {
            // `new` was already relocated out from under us (its entry is
            // superseded); report the current cell state as a CAS miss.
            self.inner.record_cell_wait();
            nic.one_sided_read(8);
            return Err(PackedLoc::from_raw(self.inner.pool.read_u64(cell)));
        };
        nic.one_sided_cas();
        match self.inner.pool.cas_u64(cell, old.raw(), new.raw()) {
            Ok(_) => {
                self.inner.pool.persist(cell, 8);
                self.inner.invalidate_entry(old);
                self.inner.unpin_segment_at(&guard, old.addr());
                Ok(())
            }
            Err(actual) => {
                new_seg.unpin_cell();
                self.inner.record_cell_wait();
                Err(PackedLoc::from_raw(actual))
            }
        }
    }

    /// Publish a shared-path put: loop a one-sided CAS until the cell is
    /// swung to `new` — over a live value or a delete tombstone (the put
    /// re-installs read visibility after a shared-path delete).
    ///
    /// The swing only happens when `new_seq` is **newer** than the state the
    /// cell currently publishes (the live entry's sequence number, or the
    /// tombstoning delete's from the cell's second word). Keeping the cell
    /// seq-monotonic makes its publish order agree with the merge engine's
    /// append-seq arbitration: a put that lost the publish race to a newer
    /// delete (or newer put) stays invisible *both* at the cell and after
    /// its log record merges, instead of flickering into view only to be
    /// deleted by the older-history merge. Returns `false` when nothing was
    /// swung (cell released, or `new_seq` is stale).
    pub fn publish_shared_put(
        &self,
        nic: &Nic,
        cell: PmAddr,
        new: PackedLoc,
        new_seq: u64,
    ) -> bool {
        // Pin `new`'s segment for the duration of the publish attempt so a
        // delayed publish cannot swing the cell onto an entry whose
        // all-dead segment GC frees concurrently (the entry's merge may
        // have invalidated it as "cell never pointed here"). A pin failure
        // means the segment was already freed — only possible when the
        // entry was invalidated because newer state superseded `new_seq`,
        // so the publish is stale and abandons.
        let guard = pin();
        let Some(new_seg) = self.inner.pin_live_segment_at(&guard, new.addr()) else {
            self.inner.record_cell_wait();
            self.inner.invalidate_entry(new);
            return false;
        };
        loop {
            nic.one_sided_read(8);
            let raw = self.inner.pool.read_u64(cell);
            if raw == 0 {
                // Cell released: this entry will never be published. Its
                // merge left it valid pending this swing (see the merge
                // engine's shared-put arm); mark it dead so its segment
                // can reclaim.
                new_seg.unpin_cell();
                self.inner.invalidate_entry(new);
                return false;
            }
            let old = PackedLoc::from_raw(raw);
            let published_seq = if old.is_indirect() {
                nic.one_sided_read(8);
                Some(self.inner.pool.read_u64(cell.offset(8)))
            } else {
                self.inner.entry_seq(old)
            };
            if published_seq >= Some(new_seq) {
                // Lost the publish race to newer state: abandoned, never
                // referenced — invalidate it (see above).
                new_seg.unpin_cell();
                self.inner.invalidate_entry(new);
                return false;
            }
            nic.one_sided_cas();
            if self.inner.pool.cas_u64(cell, raw, new.raw()).is_ok() {
                self.inner.pool.persist(cell, 8);
                // Transfer the cell's pin: it now references `new`, not the
                // predecessor (`PackedLoc::addr` masks the tombstone bit,
                // so this is the key-identity address either way).
                self.inner.unpin_segment_at(&guard, old.addr());
                // A tombstoned predecessor was already invalidated by the
                // delete that marked it.
                if !old.is_indirect() {
                    self.inner.invalidate_entry(old);
                }
                return true;
            }
            self.inner.record_cell_wait();
        }
    }

    /// Publish a shared-path delete: loop a one-sided CAS until the cell
    /// carries the delete tombstone, so shared readers on **every** replica
    /// observe the delete immediately — before the log tombstone is flushed
    /// or merged. The cell keeps the last entry's address (with the
    /// tombstone flag set) so the index stays resolvable for the key until
    /// the merge engine removes the entry and releases the cell; the
    /// delete's sequence number is stored in the cell's second word so a
    /// put that lost the publish race can recognize itself as stale.
    ///
    /// Seq-monotonic like [`DpmNode::publish_shared_put`]: a delete older
    /// than the currently published state is a no-op.
    pub fn publish_shared_delete(&self, nic: &Nic, cell: PmAddr, del_seq: u64) {
        // Pin-neutral: the tombstone swing keeps the cell's key-identity
        // target address (only the tombstone bit changes), so the pin the
        // cell holds on that segment carries over untouched and no
        // compactor coordination is needed beyond it.
        loop {
            nic.one_sided_read(8);
            let raw = self.inner.pool.read_u64(cell);
            let loc = PackedLoc::from_raw(raw);
            if raw == 0 {
                return; // released
            }
            if loc.is_indirect() {
                // Already tombstoned: only advance the recorded delete seq.
                nic.one_sided_read(8);
                if self.inner.pool.read_u64(cell.offset(8)) < del_seq {
                    nic.one_sided_write(8);
                    self.inner.pool.write_u64(cell.offset(8), del_seq);
                    self.inner.pool.persist(cell.offset(8), 8);
                }
                return;
            }
            if self.inner.entry_seq(loc) > Some(del_seq) {
                return; // a newer put won the publish race
            }
            // Stamp the delete seq before the swing so observers of the
            // tombstone bit always see a seq at least this new.
            nic.one_sided_write(8);
            self.inner.pool.write_u64(cell.offset(8), del_seq);
            self.inner.pool.persist(cell.offset(8), 8);
            nic.one_sided_cas();
            let tombstoned = PackedLoc::indirect(loc.addr(), loc.len());
            if self.inner.pool.cas_u64(cell, raw, tombstoned.raw()).is_ok() {
                self.inner.pool.persist(cell, 8);
                self.inner.invalidate_entry(loc);
                return;
            }
            self.inner.record_cell_wait();
        }
    }

    // ------------------------------------------------------------------ GC

    /// Reclaim every segment whose entries are all invalid. Returns how many
    /// segments were freed.
    ///
    /// A segment an indirection cell still references is never freed, even
    /// when fully invalidated: a *tombstoned* cell keeps the dead entry's
    /// address for key identity until dereplication dismantles it, and
    /// freeing (then reusing) those bytes would make the cell resolve to
    /// garbage. Cell references show up as the segment's own pin count
    /// ([`SegmentState::cell_pins`]), checked again immediately before the
    /// free: a swing pins its target's segment *before* publishing the
    /// reference, so a segment observed unpinned here either stays
    /// unreferenced or the racing swing's CAS fails (its entry was
    /// invalid) and the speculative pin is withdrawn.
    pub fn run_gc(&self) -> usize {
        // Serialized with compaction passes: `compact_pass` scans victim
        // bytes across its pass, so no other collector may free a segment
        // out from under it.
        let _pass = self.inner.lock_gc_pass();
        let reclaimable: Vec<Arc<SegmentState>> = {
            let segments = self.inner.segments.read();
            segments
                .iter()
                .filter(|s| s.is_reclaimable() && s.cell_pins() == 0)
                .cloned()
                .collect()
        };
        let mut freed = 0;
        for seg in reclaimable {
            if seg.cell_pins() == 0 && self.inner.free_segment_deferred(&seg) {
                freed += 1;
            }
        }
        freed
    }

    /// Run one synchronous log-cleaning compaction pass (the test hook of
    /// the background compactor; see [`crate::gc`]). Victim selection and
    /// throttling follow `config.gc`; the pass is serialized against the
    /// background thread.
    pub fn compact_once(&self) -> CompactionReport {
        compact_pass(&self.inner, &self.inner.config.gc)
    }

    // ------------------------------------------------------------ recovery

    /// This node's crash-injection points (see [`crate::failpoint`]). The
    /// check driver arms a point, drives the workload until it fires, then
    /// runs the crash/recover sequence.
    pub fn failpoints(&self) -> &FailpointSet {
        self.inner.failpoints()
    }

    /// Simulate a DPM power failure: drop every written-but-unpersisted
    /// cache line in the pool (see [`PmemPool::simulate_crash`]; a no-op
    /// unless the pool tracks persistence) and clear the DRAM-resident
    /// ordered index, which does not survive power loss. Callers must
    /// quiesce the merge workers first ([`DpmNode::wait_until_all_merged`])
    /// — a merge mid-flight through the crash would observe half-dropped
    /// state — and follow with [`DpmNode::recover`] +
    /// [`DpmNode::rebuild_ordered`].
    ///
    /// The segment registry and the soft metadata maps live in this
    /// process's DRAM and survive; they stand in for the state a real
    /// restart would rebuild from the persisted metadata region.
    pub fn simulate_crash(&self) {
        // Collector exclusion is the caller's job: a crash driver running
        // with the background compactor live must bracket the whole
        // crash → recover → invariant-check sequence in
        // [`DpmNode::pause_collectors`] — a pass walks pool bytes the
        // crash is about to rewrite, and a pass concurrent with the
        // post-recovery check can be observed between its hash-index
        // swing and the ordered-index swing. Cell swings need no explicit
        // exclusion — the crash driver (`crash_dpm_and_recover` in the
        // cluster layer) closes and drains every KN before calling this,
        // so no swing is in flight.
        self.inner.pool.simulate_crash();
        let guard = pin();
        self.inner.ordered.clear(&guard);
    }

    /// Block until any in-flight collector pass completes and exclude all
    /// further passes (background compactor, [`DpmNode::run_gc`],
    /// [`DpmNode::compact_once`]) while the returned guard lives. Crash
    /// drivers hold this across [`DpmNode::simulate_crash`], recovery and
    /// the invariant walk: a relocation swings the hash index and the
    /// ordered index in two steps, and a checker between the steps would
    /// report a phantom mismatch.
    pub fn pause_collectors(&self) -> CollectorPause<'_> {
        CollectorPause {
            _guard: self.inner.lock_gc_pass(),
        }
    }

    /// Rebuild the DRAM ordered index from the persistent hash index after
    /// a crash (the recovery path promised by the ordered-index module
    /// docs). Walks every hash-indexed entry and re-inserts its key:
    /// direct locations as-is; indirect keys under the entry their cell
    /// identifies (matching what [`DpmNode::check_ordered`] validates —
    /// scans read shared keys through the cell, so the stored location
    /// only pins key membership). Returns the number of keys inserted.
    pub fn rebuild_ordered(&self) -> u64 {
        let guard = pin();
        self.inner.ordered.clear(&guard);
        let mut inserted = 0u64;
        self.inner.index.for_each_in(&guard, |_tag, raw| {
            let loc = PackedLoc::from_raw(raw);
            let entry_loc = if loc.is_indirect() {
                match self.inner.indirect_cell_target(loc.addr()) {
                    Some(t) => t,
                    None => return,
                }
            } else {
                loc
            };
            let Some(entry) = decode_entry(&self.inner.pool, entry_loc.addr(), entry_loc.len())
            else {
                return;
            };
            self.inner.ordered.upsert(&guard, &entry.key, entry_loc);
            inserted += 1;
        });
        inserted
    }

    /// Re-scan every live segment and merge any sealed entry the index does
    /// not yet reflect.  Torn (unsealed) entries are counted and skipped.
    /// Used after a simulated DPM power failure and after KN failures to
    /// guarantee no committed write is lost.
    pub fn recover(&self) -> RecoveryReport {
        let segments: Vec<Arc<SegmentState>> = self.inner.segments.read().clone();
        let mut report = RecoveryReport::default();
        for seg in segments {
            if seg.is_freed() {
                continue;
            }
            // Scan the whole written region; merging is idempotent.
            let guard = pin();
            let mut offset = 0u64;
            let written = seg.written();
            let mut merged_floor_bytes = 0u64;
            let mut merged_floor_entries = 0u64;
            while offset < written {
                let addr = seg.base.offset(offset);
                match decode_entry(&self.inner.pool, addr, written - offset) {
                    Some(e) if e.sealed => {
                        apply_recovered_entry(&self.inner, &seg, &guard, offset, &e);
                        // New appends after recovery must order after every
                        // recovered entry.
                        self.inner
                            .next_seq
                            .fetch_max(e.header.seq, Ordering::Relaxed);
                        report.entries_recovered += 1;
                        merged_floor_entries += 1;
                        offset += e.total_len;
                    }
                    Some(e) => {
                        report.torn_entries += 1;
                        offset += e.total_len;
                    }
                    None => break,
                }
                merged_floor_bytes = offset;
            }
            // Everything the scan just processed is reflected in the index
            // (torn entries hold no committed data, matching `merge_task`,
            // which counts the bytes it skips at a torn entry as merged), so
            // floor — never re-add: the scan runs again on double recovery —
            // the merged counters up to the scanned extent.
            seg.record_merged_at_least(merged_floor_bytes, merged_floor_entries);
        }
        report.index_len_after = self.inner.index.len();
        report
    }

    /// Synchronously merge everything a failed KN left behind (step 3 of the
    /// reconfiguration protocol for the failure case).
    pub fn merge_pending_for_kn(&self, kn: u32) {
        self.wait_until_merged(kn);
    }

    // ----------------------------------------------------------- metadata

    /// Persist a named metadata blob (ownership tables, replication state).
    pub fn put_metadata(&self, name: &str, data: &[u8]) -> Result<(), PmemError> {
        let addr = self.inner.pool.alloc(data.len().max(1) as u64)?;
        self.inner.pool.write_bytes(addr, data);
        self.inner.pool.persist(addr, data.len() as u64);
        self.inner.pool.drain();
        self.inner
            .metadata_region
            .lock()
            .push((addr, data.len() as u64));
        self.inner
            .metadata
            .lock()
            .insert(name.to_string(), data.to_vec());
        Ok(())
    }

    /// Fetch a named metadata blob.
    pub fn get_metadata(&self, name: &str) -> Option<Vec<u8>> {
        self.inner.metadata.lock().get(name).cloned()
    }

    /// Stop the background compactor and the merge workers (also happens
    /// on drop).
    pub fn shutdown(&self) {
        if let Some(mut gc) = self.gc.lock().take() {
            gc.shutdown();
        }
        self.merge.lock().shutdown();
    }
}

/// Outcome of a [`DpmNode::recover`] scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sealed entries (re-)merged during the scan.
    pub entries_recovered: u64,
    /// Torn entries discarded.
    pub torn_entries: u64,
    /// Index size after recovery.
    pub index_len_after: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::LogWriter;
    use dinomo_simnet::{FabricConfig, Nic};

    fn dpm() -> Arc<DpmNode> {
        Arc::new(DpmNode::new(DpmConfig::small_for_tests()).unwrap())
    }

    fn nic() -> Nic {
        Nic::new(FabricConfig::default())
    }

    #[test]
    fn stale_tombstone_does_not_remove_newer_put() {
        // A key written through two KNs (replication, reconfiguration)
        // merges on workers with no mutual order, so an older delete's
        // tombstone can merge after a newer acknowledged put. The Delete
        // arm must skip the removal (seq check, symmetric to the Put arm).
        let dpm = dpm();
        let nic = nic();
        let mut wa = LogWriter::new(Arc::clone(&dpm), 0, nic.clone());
        let mut wb = LogWriter::new(Arc::clone(&dpm), 1, nic.clone());
        wa.append_put(b"k", b"v1");
        wa.flush().unwrap();
        dpm.wait_until_merged(0);
        // Older delete (KN 0), newer put (KN 1)...
        wa.append_delete(b"k");
        wb.append_put(b"k", b"v2");
        // ...but the put merges first.
        wb.flush().unwrap();
        dpm.wait_until_merged(1);
        assert_eq!(dpm.local_read(b"k"), Some(b"v2".to_vec()));
        wa.flush().unwrap();
        dpm.wait_until_merged(0);
        assert_eq!(
            dpm.local_read(b"k"),
            Some(b"v2".to_vec()),
            "stale tombstone must not remove the newer acknowledged put"
        );
    }

    #[test]
    fn stale_put_does_not_resurrect_newer_delete() {
        // The mirror of `stale_tombstone_does_not_remove_newer_put`: a put
        // whose segment merge lags a newer delete's must not re-insert the
        // deleted key when it finally merges against an empty index slot.
        let dpm = dpm();
        let nic = nic();
        let mut wa = LogWriter::new(Arc::clone(&dpm), 0, nic.clone());
        let mut wb = LogWriter::new(Arc::clone(&dpm), 1, nic.clone());
        wa.append_put(b"k", b"v1");
        wa.flush().unwrap();
        dpm.wait_until_merged(0);
        // Older put (KN 0, merge lagging), newer delete (KN 1)...
        wa.append_put(b"k", b"v2");
        wb.append_delete(b"k");
        // ...and the delete merges first, removing the key.
        wb.flush().unwrap();
        dpm.wait_until_merged(1);
        assert_eq!(dpm.local_read(b"k"), None);
        wa.flush().unwrap();
        dpm.wait_until_merged(0);
        assert_eq!(
            dpm.local_read(b"k"),
            None,
            "stale put must not resurrect the acknowledged delete"
        );
        // A put *newer* than the delete re-inserts the key normally.
        wa.append_put(b"k", b"v3");
        wa.flush().unwrap();
        dpm.wait_until_merged(0);
        assert_eq!(dpm.local_read(b"k"), Some(b"v3".to_vec()));
    }

    #[test]
    fn write_merge_read_round_trip() {
        let dpm = dpm();
        let nic = nic();
        let mut w = LogWriter::new(Arc::clone(&dpm), 0, nic.clone());
        w.append_put(b"alpha", b"value-alpha");
        w.append_put(b"beta", b"value-beta");
        let commits = w.flush().unwrap();
        assert_eq!(commits.len(), 2);
        dpm.wait_until_merged(0);
        assert_eq!(dpm.local_read(b"alpha"), Some(b"value-alpha".to_vec()));
        assert_eq!(dpm.local_read(b"beta"), Some(b"value-beta".to_vec()));
        assert_eq!(dpm.local_read(b"gamma"), None);
        assert_eq!(dpm.stats().entries_merged, 2);
    }

    #[test]
    fn updates_supersede_and_deletes_remove() {
        let dpm = dpm();
        let mut w = LogWriter::new(Arc::clone(&dpm), 0, nic());
        w.append_put(b"k", b"v1");
        w.flush().unwrap();
        dpm.wait_until_merged(0);
        w.append_put(b"k", b"v2");
        w.flush().unwrap();
        dpm.wait_until_merged(0);
        assert_eq!(dpm.local_read(b"k"), Some(b"v2".to_vec()));
        w.append_delete(b"k");
        w.flush().unwrap();
        dpm.wait_until_merged(0);
        assert_eq!(dpm.local_read(b"k"), None);
        assert_eq!(dpm.local_lookup(b"k"), None);
    }

    #[test]
    fn remote_read_counts_round_trips() {
        let dpm = dpm();
        let nic = nic();
        let mut w = LogWriter::new(Arc::clone(&dpm), 0, nic.clone());
        w.append_put(b"user0001", &[9u8; 128]);
        w.flush().unwrap();
        dpm.wait_until_merged(0);
        let before = nic.snapshot();
        let r = dpm.remote_read(&nic, b"user0001");
        assert_eq!(r.value, Some(vec![9u8; 128]));
        assert!(!r.indirect);
        assert!(r.rts >= 2, "index traversal plus entry read");
        let delta = nic.snapshot().since(&before);
        assert_eq!(delta.one_sided_reads, u64::from(r.rts));
        // Shortcut path costs exactly one RT.
        let (addr, len) = r.value_loc.unwrap();
        let before = nic.snapshot();
        assert_eq!(dpm.read_value_at(&nic, addr, len), vec![9u8; 128]);
        assert_eq!(nic.snapshot().since(&before).one_sided_reads, 1);
    }

    #[test]
    fn remote_read_of_missing_key_reports_miss() {
        let dpm = dpm();
        let nic = nic();
        let r = dpm.remote_read(&nic, b"missing");
        assert_eq!(r.value, None);
        assert!(r.rts >= 1);
    }

    #[test]
    fn batched_flush_uses_single_one_sided_write() {
        let dpm = dpm();
        let nic = nic();
        let mut w = LogWriter::new(Arc::clone(&dpm), 3, nic.clone());
        for i in 0..10u32 {
            w.append_put(format!("key{i}").as_bytes(), &[i as u8; 64]);
        }
        let before = nic.snapshot();
        let commits = w.flush().unwrap();
        let delta = nic.snapshot().since(&before);
        assert_eq!(commits.len(), 10);
        assert_eq!(delta.one_sided_writes, 1, "a batch is one one-sided write");
        // Committed writes carry usable value locations.
        dpm.wait_until_merged(3);
        for (i, c) in commits.iter().enumerate() {
            let v = dpm.read_value_at(&nic, c.value_addr, c.value_len);
            assert_eq!(v, vec![i as u8; 64]);
        }
    }

    #[test]
    fn segments_roll_over_and_track_unmerged_counts() {
        let dpm = dpm();
        let mut w = LogWriter::new(Arc::clone(&dpm), 1, nic());
        // Write enough to fill several 32 KiB segments.
        for i in 0..200u32 {
            w.append_put(format!("key{i:04}").as_bytes(), &[0u8; 512]);
            if w.buffered_bytes() > 4096 {
                w.flush().unwrap();
            }
        }
        w.flush().unwrap();
        dpm.wait_until_merged(1);
        assert!(dpm.stats().segments_allocated >= 2);
        assert_eq!(dpm.unmerged_segments(1), 0);
        for i in (0..200u32).step_by(17) {
            assert_eq!(
                dpm.local_read(format!("key{i:04}").as_bytes()),
                Some(vec![0u8; 512]),
                "key{i:04}"
            );
        }
    }

    #[test]
    fn gc_reclaims_fully_invalidated_segments() {
        let mut config = DpmConfig::small_for_tests();
        config.segment_bytes = 8 << 10;
        let dpm = Arc::new(DpmNode::new(config).unwrap());
        let mut w = LogWriter::new(Arc::clone(&dpm), 0, nic());
        // Overwrite the same small key set many times so old segments become
        // fully invalid.
        for round in 0..40u32 {
            for i in 0..8u32 {
                w.append_put(format!("key{i}").as_bytes(), &[round as u8; 256]);
            }
            w.flush().unwrap();
        }
        w.seal_current();
        dpm.wait_until_merged(0);
        let before = dpm.stats().segments_allocated;
        let freed = dpm.run_gc();
        assert!(
            freed > 0,
            "expected some segments to be reclaimed (of {before})"
        );
        // Data is still readable after GC.
        for i in 0..8u32 {
            assert_eq!(
                dpm.local_read(format!("key{i}").as_bytes()),
                Some(vec![39u8; 256])
            );
        }
    }

    #[test]
    fn indirect_pointers_round_trip_and_cas() {
        let dpm = dpm();
        let nic = nic();
        let mut w = LogWriter::new(Arc::clone(&dpm), 0, nic.clone());
        w.append_put(b"hot", b"v1");
        w.flush().unwrap();
        dpm.wait_until_merged(0);

        let cell = dpm.make_indirect(b"hot").unwrap().unwrap();
        assert_eq!(dpm.indirect_cell_of(b"hot"), Some(cell));
        assert_eq!(dpm.stats().indirect_cells, 1);
        // Reads still work, now through the cell.
        assert_eq!(dpm.local_read(b"hot"), Some(b"v1".to_vec()));
        let r = dpm.remote_read(&nic, b"hot");
        assert!(r.indirect);
        assert_eq!(r.value, Some(b"v1".to_vec()));

        // A (replica) KN updates the shared key: log write + CAS on the cell.
        let old = dpm.remote_read_indirect(&nic, cell).unwrap();
        let commits = {
            let mut w2 = LogWriter::new(Arc::clone(&dpm), 1, nic.clone());
            w2.append_put(b"hot", b"v2");
            w2.flush().unwrap()
        };
        dpm.cas_indirect(&nic, cell, old, commits[0].entry_loc)
            .unwrap();
        assert_eq!(dpm.local_read(b"hot"), Some(b"v2".to_vec()));
        // A stale CAS fails and reports the current target.
        let err = dpm
            .cas_indirect(&nic, cell, old, commits[0].entry_loc)
            .unwrap_err();
        assert_eq!(err, commits[0].entry_loc);

        // Collapse back to a direct pointer.
        assert!(dpm.remove_indirect(b"hot"));
        assert!(!dpm.remove_indirect(b"hot"));
        assert_eq!(dpm.local_read(b"hot"), Some(b"v2".to_vec()));
        assert_eq!(dpm.stats().indirect_cells, 0);
    }

    #[test]
    fn make_indirect_on_missing_key_is_none() {
        let dpm = dpm();
        assert_eq!(dpm.make_indirect(b"nope").unwrap(), None);
    }

    #[test]
    fn recovery_replays_sealed_entries() {
        let dpm = dpm();
        let mut w = LogWriter::new(Arc::clone(&dpm), 0, nic());
        for i in 0..20u32 {
            w.append_put(format!("key{i}").as_bytes(), &[7u8; 64]);
        }
        w.flush().unwrap();
        dpm.wait_until_merged(0);
        // Recovery is idempotent: re-running it changes nothing.
        let report = dpm.recover();
        assert_eq!(report.torn_entries, 0);
        assert_eq!(report.index_len_after, 20);
        assert_eq!(dpm.local_read(b"key3"), Some(vec![7u8; 64]));
        assert_eq!(dpm.stats().index_len, 20);
    }

    #[test]
    fn metadata_blobs_round_trip() {
        let dpm = dpm();
        dpm.put_metadata("ownership", b"ring-v1").unwrap();
        assert_eq!(dpm.get_metadata("ownership"), Some(b"ring-v1".to_vec()));
        assert_eq!(dpm.get_metadata("missing"), None);
        dpm.put_metadata("ownership", b"ring-v2").unwrap();
        assert_eq!(dpm.get_metadata("ownership"), Some(b"ring-v2".to_vec()));
    }

    #[test]
    fn concurrent_kns_write_disjoint_keys() {
        let dpm = dpm();
        let mut handles = Vec::new();
        for kn in 0..4u32 {
            let dpm = Arc::clone(&dpm);
            handles.push(std::thread::spawn(move || {
                let mut w = LogWriter::new(Arc::clone(&dpm), kn, nic());
                for i in 0..100u32 {
                    w.append_put(format!("kn{kn}-key{i}").as_bytes(), &[kn as u8; 128]);
                    if w.buffered_bytes() > 2048 {
                        w.flush().unwrap();
                    }
                }
                w.flush().unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        dpm.wait_until_all_merged();
        for kn in 0..4u32 {
            for i in (0..100u32).step_by(13) {
                assert_eq!(
                    dpm.local_read(format!("kn{kn}-key{i}").as_bytes()),
                    Some(vec![kn as u8; 128])
                );
            }
        }
        assert_eq!(dpm.stats().index_len, 400);
    }

    fn crash_dpm() -> Arc<DpmNode> {
        let mut config = DpmConfig::small_for_tests();
        // `simulate_crash` is a no-op unless the pool tracks persistence.
        config.pool.track_persistence = true;
        Arc::new(DpmNode::new(config).unwrap())
    }

    #[test]
    fn cell_swing_crash_leaves_key_direct_and_recoverable() {
        // Fail-stop between publishing an indirection cell and swinging
        // the index onto it: the durable-but-unreachable cell must be as
        // if it never existed — the key stays direct, survives the crash,
        // and a later replication installs a fresh cell cleanly.
        let dpm = crash_dpm();
        let mut w = LogWriter::new(Arc::clone(&dpm), 0, nic());
        w.append_put(b"hot", b"v1");
        w.flush().unwrap();
        dpm.wait_until_merged(0);

        dpm.failpoints().arm("cell.before-swing", 1);
        let err = dpm.make_indirect(b"hot").unwrap_err();
        dpm.failpoints().disarm("cell.before-swing");
        assert_eq!(err, PmemError::InjectedFailure);
        assert_eq!(dpm.failpoints().fired("cell.before-swing"), 1);
        assert_eq!(dpm.indirect_cell_of(b"hot"), None, "the swing never ran");

        dpm.simulate_crash();
        let report = dpm.recover();
        assert_eq!(report.torn_entries, 0);
        assert!(dpm.rebuild_ordered() >= 1);
        dpm.check_ordered().unwrap();
        assert_eq!(dpm.local_read(b"hot"), Some(b"v1".to_vec()));

        // And the abandoned attempt must not block a clean install.
        let cell = dpm.make_indirect(b"hot").unwrap().unwrap();
        assert_eq!(dpm.indirect_cell_of(b"hot"), Some(cell));
        assert_eq!(dpm.local_read(b"hot"), Some(b"v1".to_vec()));
    }

    #[test]
    fn double_recovery_is_a_no_op_and_keeps_accounting_honest() {
        // `recover()` must be idempotent — and, crucially, its re-merge
        // must not inflate segment merged-counters past `written`: an
        // owner appending to its still-open segment after recovery would
        // then look already-merged to `wait_until_merged` before the new
        // batch's merge actually applied (an acked write invisible at the
        // next reconfiguration's step 3).
        let dpm = crash_dpm();
        let mut w = LogWriter::new(Arc::clone(&dpm), 0, nic());
        for i in 0..30u32 {
            w.append_put(format!("key{i:02}").as_bytes(), &[5u8; 64]);
        }
        w.flush().unwrap();
        dpm.wait_until_merged(0);

        dpm.simulate_crash();
        let first = dpm.recover();
        let rebuilt_first = dpm.rebuild_ordered();
        dpm.check_ordered().unwrap();
        let second = dpm.recover();
        assert_eq!(first, second, "second recovery must change nothing");
        assert_eq!(dpm.rebuild_ordered(), rebuilt_first);
        dpm.check_ordered().unwrap();
        assert_eq!(dpm.local_read(b"key07"), Some(vec![5u8; 64]));

        // Post-recovery appends to the same (never sealed) segment must
        // still be seen as unmerged until their merge applies.
        w.append_put(b"key07", b"after-crash");
        w.flush().unwrap();
        dpm.wait_until_merged(0);
        assert_eq!(dpm.local_read(b"key07"), Some(b"after-crash".to_vec()));
        assert_eq!(dpm.unmerged_segments(0), 0);
    }

    #[test]
    fn recovery_skips_torn_tail_without_replaying_it() {
        // A power failure mid-append leaves a torn tail: the entry's body
        // made it to media but the trailing seal word's cache line never
        // persisted. Recovery must count it, not replay it.
        let dpm = crash_dpm();
        let mut w = LogWriter::new(Arc::clone(&dpm), 0, nic());
        w.append_put(b"durable", b"v1");
        w.flush().unwrap();
        dpm.wait_until_merged(0);

        // Hand-craft the torn append in a fresh segment: write the full
        // entry, persist every cache line *before* the seal word's, then
        // crash — `simulate_crash` destroys the seal's dirty line.
        let seg = dpm.inner.allocate_segment_inner(1).unwrap();
        let mut buf = Vec::new();
        crate::entry::encode_entry(&mut buf, b"torn-key", &[9u8; 96], crate::LogOp::Put, 999);
        let offset = seg.record_append(buf.len() as u64, 1);
        let addr = seg.base.offset(offset);
        dpm.inner.pool.write_bytes(addr, &buf);
        let seal_addr = addr.offset(buf.len() as u64 - crate::entry::SEAL_BYTES);
        let seal_line_start = seal_addr.0 / 64 * 64;
        assert!(
            seal_line_start > addr.0,
            "entry sized so the seal gets its own line"
        );
        dpm.inner.pool.persist(addr, seal_line_start - addr.0);
        dpm.inner.pool.drain();

        dpm.simulate_crash();
        let report = dpm.recover();
        assert_eq!(report.torn_entries, 1);
        assert_eq!(
            dpm.local_read(b"torn-key"),
            None,
            "a torn entry holds no committed data and must not replay"
        );
        assert_eq!(dpm.local_read(b"durable"), Some(b"v1".to_vec()));
        dpm.rebuild_ordered();
        dpm.check_ordered().unwrap();
    }

    #[test]
    fn ordered_rebuild_matches_pre_crash_scan() {
        // The DRAM ordered index dies with a crash; the rebuild from the
        // persistent PCLHT must reproduce exactly the pre-crash key
        // sequence (including a shared key served through its cell) and
        // pass the structural walk.
        let dpm = crash_dpm();
        let mut w = LogWriter::new(Arc::clone(&dpm), 0, nic());
        for i in 0..40u32 {
            w.append_put(format!("key{i:02}").as_bytes(), &[3u8; 32]);
        }
        w.flush().unwrap();
        dpm.wait_until_merged(0);
        dpm.make_indirect(b"key05").unwrap().unwrap();

        let scan_keys = |dpm: &DpmNode| -> Vec<Vec<u8>> {
            let guard = pin();
            dpm.ordered()
                .snapshot(&guard)
                .range_from(b"")
                .map(|(key, _)| key.to_vec())
                .collect()
        };
        let before = scan_keys(&dpm);
        assert_eq!(before.len(), 40);

        dpm.simulate_crash();
        dpm.recover();
        assert_eq!(dpm.rebuild_ordered(), 40);
        let tree = dpm.check_ordered().unwrap();
        assert_eq!(tree.keys, 40);
        assert_eq!(scan_keys(&dpm), before, "rebuilt scan order must match");
        assert_eq!(dpm.local_read(b"key05"), Some(vec![3u8; 32]));
    }
}
