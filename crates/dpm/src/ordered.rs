//! The copy-on-write ordered secondary index kept beside the P-CLHT.
//!
//! The hash index answers point lookups; this module adds the ordered view
//! that `scan(start, n)` needs, without touching the hot log→flush→merge
//! write path:
//!
//! * **Maintained at merge time only.** Merge workers upsert/remove ordered
//!   entries *after* the hash-index update succeeds (see
//!   `merge::apply_entry`), so the ordered index is a strictly asynchronous
//!   replica of the merged state — a write is never acknowledged against it
//!   and merge arbitration never consults it.
//! * **Copy-on-write B-tree.** A writer (merge worker, compactor, cell
//!   dismantling) path-copies the nodes from the root to the touched leaf,
//!   publishes the new root with one release store, and retires every
//!   replaced node through the `crossbeam::epoch` shim. Nodes are immutable
//!   once published, so readers never see a half-edited node.
//! * **Epoch-pinned lock-free readers.** A reader pins an epoch guard,
//!   loads the root, and walks an immutable generation of the tree; every
//!   node of that generation (and every DPM segment a leaf location points
//!   into — segment frees go through the same deferred scheme) stays alive
//!   until the guard drops, however many writers publish newer generations
//!   meanwhile.
//! * **Relocation-aware.** Leaves store the entry's [`PackedLoc`]; when the
//!   log-cleaning compactor relocates an entry it swings the stored
//!   location through [`OrderedIndex::relocate`] (conditional on the old
//!   location, exactly like the hash-index CAS) before the victim segment
//!   can be freed, so a scan of the *current* generation never dereferences
//!   a freed segment, and a scan of an older pinned generation is protected
//!   by its guard.
//!
//! Writers serialize on one mutex — merge workers are few and ordered
//! maintenance is off the ack path, so writer concurrency is not the
//! bottleneck; reader scalability is, and readers take no lock at all.
//!
//! Deletes do not rebalance: a removal path-copies the leaf (dropping nodes
//! that become empty) but never borrows from siblings, so interior nodes
//! can run under-full. Height never grows from deletes and inserts split as
//! usual, so the tree stays within one split of balanced for the
//! insert-heavy workloads the store serves; [`OrderedIndex::check_tree`]
//! verifies the invariants that actually hold (order, bounds, uniform leaf
//! depth, occupancy ceilings, live locations).

use crate::loc::PackedLoc;
use dinomo_pclht::Guard;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

/// Maximum keys per node (leaf or internal). Small enough that unit tests
/// exercise splits and multi-level trees with a few dozen keys.
pub const MAX_NODE_KEYS: usize = 8;

/// One immutable tree node. `pivots[i]` is a lower bound for every key in
/// `children[i]` and an exclusive upper bound for `children[i-1]` — exact
/// at insert time, possibly slack after deletes (removing a subtree's
/// minimum leaves the pivot as a valid lower bound).
enum Node {
    Leaf {
        keys: Vec<Vec<u8>>,
        locs: Vec<PackedLoc>,
    },
    Internal {
        pivots: Vec<Vec<u8>>,
        children: Vec<*const Node>,
    },
}

// SAFETY: nodes are immutable after publication and only dropped through
// epoch retirement (or `Drop` with exclusive access), so sharing the raw
// pointers across threads is sound.
unsafe impl Send for Node {}
unsafe impl Sync for Node {}

impl Node {
    fn len(&self) -> usize {
        match self {
            Node::Leaf { keys, .. } => keys.len(),
            Node::Internal { children, .. } => children.len(),
        }
    }

    /// Index of the child a `key` belongs to: the last pivot `<= key`
    /// (clamped to 0, so keys below every pivot route to the leftmost
    /// child and become its new minimum).
    fn child_index(pivots: &[Vec<u8>], key: &[u8]) -> usize {
        match pivots.binary_search_by(|p| p.as_slice().cmp(key)) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        }
    }
}

/// What one writer operation replaced; every pointer in here is retired
/// through the caller's epoch guard once the new root is published.
type Retired = Vec<*const Node>;

/// Caller-supplied per-entry validation for [`OrderedIndex::check_tree`]:
/// given a key and its stored location, return `Err` with a description if
/// the location is invalid (e.g. points into a freed segment).
pub type LocValidator<'a> = dyn Fn(&[u8], PackedLoc) -> Result<(), String> + 'a;

/// Statistics returned by a successful [`OrderedIndex::check_tree`] walk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TreeStats {
    /// Live keys in the tree.
    pub keys: u64,
    /// Leaf nodes.
    pub leaves: u64,
    /// Internal nodes.
    pub internal_nodes: u64,
    /// Tree height (0 for an empty tree, 1 for a root leaf).
    pub depth: u64,
}

/// The copy-on-write ordered index. See the module docs.
pub struct OrderedIndex {
    /// Current root generation (null = empty tree). Writers publish with a
    /// release store under [`OrderedIndex::write_lock`]; readers load with
    /// acquire under an epoch pin.
    root: AtomicPtr<Node>,
    /// Serializes writers (merge workers, the compactor, cell teardown).
    write_lock: Mutex<()>,
    /// Acquisition wait on `write_lock` (`lock_wait_ordered_root_ns`) —
    /// registry-backed when the owning DPM node has a metrics registry,
    /// detached otherwise.
    write_wait: dinomo_obs::Histogram,
    /// Live key count (maintained by writers; racy reads are fine — it is
    /// a statistic, not a correctness input).
    len: AtomicU64,
}

impl std::fmt::Debug for OrderedIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrderedIndex")
            .field("len", &self.len())
            .finish()
    }
}

impl Default for OrderedIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl OrderedIndex {
    /// An empty index with a detached (unregistered) wait histogram.
    pub fn new() -> Self {
        Self::with_lock_profile(dinomo_obs::Histogram::detached())
    }

    /// An empty index whose writer-lock wait times record into `wait`
    /// (the DPM node passes its registry's
    /// [`dinomo_obs::LockId::OrderedRoot`] histogram here).
    pub fn with_lock_profile(wait: dinomo_obs::Histogram) -> Self {
        OrderedIndex {
            root: AtomicPtr::new(std::ptr::null_mut()),
            write_lock: Mutex::new(()),
            write_wait: wait,
            len: AtomicU64::new(0),
        }
    }

    /// Acquire the single-writer lock, billing the wait to the
    /// `lock_wait_ordered_root_ns` histogram.
    fn lock_write(&self) -> parking_lot::MutexGuard<'_, ()> {
        self.write_wait.time(|| self.write_lock.lock())
    }

    /// Live keys in the index.
    pub fn len(&self) -> u64 {
        self.len.load(Ordering::Relaxed)
    }

    /// `true` if the index holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert `key -> loc`, replacing the stored location if the key is
    /// already present. The guard is the merge worker's existing pin; the
    /// replaced path nodes are retired through it.
    pub fn upsert(&self, guard: &Guard, key: &[u8], loc: PackedLoc) {
        let _w = self.lock_write();
        let root = self.root.load(Ordering::Acquire);
        let mut retired: Retired = Vec::new();
        let (new_root, inserted) = if root.is_null() {
            let leaf = Box::into_raw(Box::new(Node::Leaf {
                keys: vec![key.to_vec()],
                locs: vec![loc],
            }));
            (leaf as *const Node, true)
        } else {
            // SAFETY: `root` was published by a previous writer and cannot
            // be retired while we hold the write lock.
            match unsafe { insert_rec(root, key, loc, &mut retired) } {
                (InsertResult::One(n), inserted) => (n, inserted),
                (InsertResult::Split(left, pivot, right), inserted) => {
                    let left_min = unsafe { subtree_min(left) };
                    let new_root = Box::into_raw(Box::new(Node::Internal {
                        pivots: vec![left_min, pivot],
                        children: vec![left, right],
                    }));
                    (new_root as *const Node, inserted)
                }
            }
        };
        if inserted {
            self.len.fetch_add(1, Ordering::Relaxed);
        }
        self.publish(guard, new_root as *mut Node, retired);
    }

    /// Remove `key`; returns `true` if it was present.
    pub fn remove(&self, guard: &Guard, key: &[u8]) -> bool {
        let _w = self.lock_write();
        let root = self.root.load(Ordering::Acquire);
        if root.is_null() {
            return false;
        }
        let mut retired: Retired = Vec::new();
        // SAFETY: as in `upsert` — the root is protected by the write lock.
        match unsafe { remove_rec(root, key, &mut retired) } {
            RemoveResult::NotFound => false,
            RemoveResult::Replaced(new_root) => {
                self.len.fetch_sub(1, Ordering::Relaxed);
                // Collapse single-child internal roots so height shrinks
                // back as the tree empties.
                let mut new_root = new_root;
                while let Some(n) = new_root {
                    // SAFETY: freshly built (or surviving) nodes of the new
                    // generation, not yet shared.
                    match unsafe { &*n } {
                        Node::Internal { children, .. } if children.len() == 1 => {
                            let child = children[0];
                            retired.push(n);
                            new_root = Some(child);
                        }
                        _ => break,
                    }
                }
                let ptr = new_root.unwrap_or(std::ptr::null());
                self.publish(guard, ptr as *mut Node, retired);
                true
            }
        }
    }

    /// Conditionally swing `key`'s stored location from `old` to `new` —
    /// the ordered-index half of a compactor relocation. Returns `false`
    /// (and changes nothing) if the key is absent or stores a different
    /// location (a concurrent merge already superseded the entry; the
    /// newer location must win).
    pub fn relocate(&self, guard: &Guard, key: &[u8], old: PackedLoc, new: PackedLoc) -> bool {
        let _w = self.lock_write();
        let root = self.root.load(Ordering::Acquire);
        if root.is_null() {
            return false;
        }
        // SAFETY: root protected by the write lock (see `upsert`).
        if unsafe { lookup(root, key) } != Some(old) {
            return false;
        }
        let mut retired: Retired = Vec::new();
        let (result, _) = unsafe { insert_rec(root, key, new, &mut retired) };
        let InsertResult::One(new_root) = result else {
            unreachable!("replacing an existing key cannot split");
        };
        self.publish(guard, new_root as *mut Node, retired);
        true
    }

    /// Current stored location of `key`, if any, read under the caller's
    /// pin (test and diagnostic helper; scans use [`OrderedIndex::snapshot`]).
    pub fn get(&self, _guard: &Guard, key: &[u8]) -> Option<PackedLoc> {
        let root = self.root.load(Ordering::Acquire);
        if root.is_null() {
            return None;
        }
        // SAFETY: the caller's pin keeps this generation alive.
        unsafe { lookup(root, key) }
    }

    /// Pin-protected snapshot of the current generation. The returned
    /// handle borrows the guard, so it cannot outlive the pin that keeps
    /// its nodes (and the segments its locations point into) alive.
    pub fn snapshot<'g>(&self, _guard: &'g Guard) -> Snapshot<'g> {
        Snapshot {
            root: self.root.load(Ordering::Acquire),
            _guard: std::marker::PhantomData,
        }
    }

    /// Drop every key: retire the whole current generation and publish an
    /// empty tree. This is the crash path — the ordered index is DRAM-only
    /// and does not survive a power failure, so a simulated crash clears
    /// it and recovery rebuilds it from the persistent hash index
    /// ([`crate::DpmNode::rebuild_ordered`]).
    pub fn clear(&self, guard: &Guard) {
        let _w = self.lock_write();
        let root = self.root.load(Ordering::Acquire);
        self.len.store(0, Ordering::Relaxed);
        if root.is_null() {
            return;
        }
        let mut retired: Retired = Vec::new();
        // SAFETY: the write lock keeps the current generation from being
        // retired by anyone else while we collect it.
        unsafe { collect_rec(root, &mut retired) };
        self.publish(guard, std::ptr::null_mut(), retired);
    }

    /// Swap in `new_root` and retire the replaced generation's nodes.
    fn publish(&self, guard: &Guard, new_root: *mut Node, retired: Retired) {
        self.root.store(new_root, Ordering::Release);
        for node in retired {
            // SAFETY: `node` belonged to the replaced generation — no new
            // reader can reach it after the release store above, and the
            // write lock guarantees it is retired exactly once.
            unsafe {
                let raw = node as *mut Node;
                guard.defer_unchecked(move || drop(Box::from_raw(raw)));
            }
        }
    }

    /// Walk the whole tree verifying its structural invariants: strictly
    /// increasing pivots, keys within their pivot bounds, uniform leaf
    /// depth, node occupancy within `1..=MAX_NODE_KEYS`, a strictly
    /// increasing global leaf chain, and `validate(key, loc)` for every
    /// stored location (the caller supplies segment-liveness checking).
    /// Returns tree statistics on success, a description of the first
    /// violated invariant otherwise.
    ///
    /// Runs under the write lock so the walked generation is the current
    /// one and cannot be retired mid-walk.
    pub fn check_tree(&self, validate: &LocValidator) -> Result<TreeStats, String> {
        let _w = self.lock_write();
        let root = self.root.load(Ordering::Acquire);
        let mut stats = TreeStats::default();
        if root.is_null() {
            if !self.is_empty() {
                return Err(format!("empty tree but len() = {}", self.len()));
            }
            return Ok(stats);
        }
        let mut last_key: Option<Vec<u8>> = None;
        let mut leaf_depth: Option<u64> = None;
        // SAFETY: the write lock excludes retirement of the current
        // generation for the duration of the walk.
        unsafe {
            check_rec(
                root,
                None,
                None,
                1,
                &mut stats,
                &mut last_key,
                &mut leaf_depth,
                validate,
            )?;
        }
        if stats.keys != self.len() {
            return Err(format!(
                "key count mismatch: walked {} keys, len() = {}",
                stats.keys,
                self.len()
            ));
        }
        Ok(stats)
    }
}

impl Drop for OrderedIndex {
    fn drop(&mut self) {
        // Exclusive access: free the current generation directly. Nodes of
        // older generations were retired through epoch guards and are
        // reclaimed by the epoch machinery.
        let root = *self.root.get_mut();
        if !root.is_null() {
            // SAFETY: `&mut self` — no reader or writer can be live.
            unsafe { drop_rec(root) };
        }
    }
}

/// A pinned, immutable generation of the tree.
#[derive(Clone, Copy)]
pub struct Snapshot<'g> {
    root: *const Node,
    _guard: std::marker::PhantomData<&'g Guard>,
}

impl<'g> Snapshot<'g> {
    /// Iterate `(key, loc)` pairs in key order, starting at the smallest
    /// key `>= start`.
    pub fn range_from(&self, start: &[u8]) -> RangeIter<'g> {
        let mut iter = RangeIter {
            stack: Vec::new(),
            _guard: std::marker::PhantomData,
        };
        if self.root.is_null() {
            return iter;
        }
        // Descend towards `start`, recording the position in every node so
        // the iterator can resume upwards.
        let mut node = self.root;
        loop {
            // SAFETY: the snapshot's guard keeps the generation alive.
            match unsafe { &*node } {
                Node::Internal { pivots, children } => {
                    let idx = Node::child_index(pivots, start);
                    iter.stack.push((node, idx));
                    node = children[idx];
                }
                Node::Leaf { keys, .. } => {
                    let idx = match keys.binary_search_by(|k| k.as_slice().cmp(start)) {
                        Ok(i) | Err(i) => i,
                    };
                    iter.stack.push((node, idx));
                    return iter;
                }
            }
        }
    }
}

/// In-order `(key, loc)` iterator over a [`Snapshot`].
pub struct RangeIter<'g> {
    /// `(node, next index)` from the root down to the current leaf.
    stack: Vec<(*const Node, usize)>,
    _guard: std::marker::PhantomData<&'g Guard>,
}

impl<'g> Iterator for RangeIter<'g> {
    type Item = (Vec<u8>, PackedLoc);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let (node, idx) = self.stack.pop()?;
            // SAFETY: every pointer on the stack belongs to the pinned
            // generation.
            match unsafe { &*node } {
                Node::Leaf { keys, locs } => {
                    if idx < keys.len() {
                        self.stack.push((node, idx + 1));
                        return Some((keys[idx].clone(), locs[idx]));
                    }
                    // Leaf exhausted: fall through to the parent, whose
                    // stack entry already points at the next child.
                }
                Node::Internal { children, .. } => {
                    if idx + 1 < children.len() {
                        self.stack.push((node, idx + 1));
                        // Descend to the leftmost leaf of the next child.
                        let mut child = children[idx + 1];
                        loop {
                            match unsafe { &*child } {
                                Node::Internal { children, .. } => {
                                    self.stack.push((child, 0));
                                    child = children[0];
                                }
                                Node::Leaf { .. } => {
                                    self.stack.push((child, 0));
                                    break;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Result of a path-copying insert below some node.
enum InsertResult {
    /// The subtree was replaced by one new node.
    One(*const Node),
    /// The subtree split: `(left, right_min_pivot, right)`.
    Split(*const Node, Vec<u8>, *const Node),
}

/// Path-copying upsert. Returns the replacement subtree and whether the
/// key was newly inserted (`false` = replaced in place).
///
/// # Safety
///
/// `node` must point into a generation the caller keeps alive (write lock
/// held and not yet retired).
unsafe fn insert_rec(
    node: *const Node,
    key: &[u8],
    loc: PackedLoc,
    retired: &mut Retired,
) -> (InsertResult, bool) {
    match &*node {
        Node::Leaf { keys, locs } => {
            let mut keys = keys.clone();
            let mut locs = locs.clone();
            let inserted = match keys.binary_search_by(|k| k.as_slice().cmp(key)) {
                Ok(i) => {
                    locs[i] = loc;
                    false
                }
                Err(i) => {
                    keys.insert(i, key.to_vec());
                    locs.insert(i, loc);
                    true
                }
            };
            retired.push(node);
            (split_leaf(keys, locs), inserted)
        }
        Node::Internal { pivots, children } => {
            let idx = Node::child_index(pivots, key);
            let (child_result, inserted) = insert_rec(children[idx], key, loc, retired);
            let mut pivots = pivots.clone();
            let mut children = children.clone();
            // A key below every pivot becomes the leftmost subtree's new
            // minimum: keep the pivot a valid lower bound.
            if key < pivots[0].as_slice() {
                pivots[0] = key.to_vec();
            }
            match child_result {
                InsertResult::One(c) => children[idx] = c,
                InsertResult::Split(left, pivot, right) => {
                    children[idx] = left;
                    pivots.insert(idx + 1, pivot);
                    children.insert(idx + 1, right);
                }
            }
            retired.push(node);
            (split_internal(pivots, children), inserted)
        }
    }
}

/// Box a (possibly overfull) leaf, splitting it in half when needed.
fn split_leaf(keys: Vec<Vec<u8>>, locs: Vec<PackedLoc>) -> InsertResult {
    if keys.len() <= MAX_NODE_KEYS {
        let node = Box::into_raw(Box::new(Node::Leaf { keys, locs }));
        return InsertResult::One(node as *const Node);
    }
    let mid = keys.len() / 2;
    let mut keys = keys;
    let mut locs = locs;
    let right_keys = keys.split_off(mid);
    let right_locs = locs.split_off(mid);
    let pivot = right_keys[0].clone();
    let left = Box::into_raw(Box::new(Node::Leaf { keys, locs }));
    let right = Box::into_raw(Box::new(Node::Leaf {
        keys: right_keys,
        locs: right_locs,
    }));
    InsertResult::Split(left as *const Node, pivot, right as *const Node)
}

/// Box a (possibly overfull) internal node, splitting it when needed.
fn split_internal(pivots: Vec<Vec<u8>>, children: Vec<*const Node>) -> InsertResult {
    if children.len() <= MAX_NODE_KEYS {
        let node = Box::into_raw(Box::new(Node::Internal { pivots, children }));
        return InsertResult::One(node as *const Node);
    }
    let mid = children.len() / 2;
    let mut pivots = pivots;
    let mut children = children;
    let right_pivots = pivots.split_off(mid);
    let right_children = children.split_off(mid);
    let pivot = right_pivots[0].clone();
    let left = Box::into_raw(Box::new(Node::Internal { pivots, children }));
    let right = Box::into_raw(Box::new(Node::Internal {
        pivots: right_pivots,
        children: right_children,
    }));
    InsertResult::Split(left as *const Node, pivot, right as *const Node)
}

/// Result of a path-copying removal below some node.
enum RemoveResult {
    /// Key absent: nothing was copied or retired.
    NotFound,
    /// The subtree was replaced (`None` = it became empty).
    Replaced(Option<*const Node>),
}

/// Path-copying removal.
///
/// # Safety
///
/// Same generation-liveness contract as [`insert_rec`].
unsafe fn remove_rec(node: *const Node, key: &[u8], retired: &mut Retired) -> RemoveResult {
    match &*node {
        Node::Leaf { keys, locs } => {
            let Ok(i) = keys.binary_search_by(|k| k.as_slice().cmp(key)) else {
                return RemoveResult::NotFound;
            };
            retired.push(node);
            if keys.len() == 1 {
                return RemoveResult::Replaced(None);
            }
            let mut keys = keys.clone();
            let mut locs = locs.clone();
            keys.remove(i);
            locs.remove(i);
            let leaf = Box::into_raw(Box::new(Node::Leaf { keys, locs }));
            RemoveResult::Replaced(Some(leaf as *const Node))
        }
        Node::Internal { pivots, children } => {
            let idx = Node::child_index(pivots, key);
            match remove_rec(children[idx], key, retired) {
                RemoveResult::NotFound => RemoveResult::NotFound,
                RemoveResult::Replaced(new_child) => {
                    retired.push(node);
                    let mut pivots = pivots.clone();
                    let mut children = children.clone();
                    match new_child {
                        Some(c) => children[idx] = c,
                        None => {
                            // The child emptied out: drop it (no sibling
                            // rebalancing — the pivot bounds stay valid as
                            // slack lower bounds).
                            pivots.remove(idx);
                            children.remove(idx);
                        }
                    }
                    if children.is_empty() {
                        return RemoveResult::Replaced(None);
                    }
                    let n = Box::into_raw(Box::new(Node::Internal { pivots, children }));
                    RemoveResult::Replaced(Some(n as *const Node))
                }
            }
        }
    }
}

/// Point lookup within one generation.
///
/// # Safety
///
/// Same generation-liveness contract as [`insert_rec`].
unsafe fn lookup(node: *const Node, key: &[u8]) -> Option<PackedLoc> {
    match &*node {
        Node::Leaf { keys, locs } => keys
            .binary_search_by(|k| k.as_slice().cmp(key))
            .ok()
            .map(|i| locs[i]),
        Node::Internal { pivots, children } => {
            lookup(children[Node::child_index(pivots, key)], key)
        }
    }
}

/// Smallest key in a subtree.
///
/// # Safety
///
/// Same generation-liveness contract as [`insert_rec`].
unsafe fn subtree_min(node: *const Node) -> Vec<u8> {
    match &*node {
        Node::Leaf { keys, .. } => keys[0].clone(),
        Node::Internal { children, .. } => subtree_min(children[0]),
    }
}

/// Recursively free a generation (exclusive access only).
///
/// # Safety
///
/// Caller must have exclusive access to the whole tree.
unsafe fn drop_rec(node: *const Node) {
    let boxed = Box::from_raw(node as *mut Node);
    if let Node::Internal { children, .. } = &*boxed {
        for &c in children {
            drop_rec(c);
        }
    }
}

/// Collect every node of the subtree rooted at `node` into `retired`, for
/// whole-tree retirement by [`OrderedIndex::clear`].
///
/// # Safety
///
/// `node` must belong to the current generation and the caller must hold
/// the write lock (so no node is retired concurrently).
unsafe fn collect_rec(node: *const Node, retired: &mut Retired) {
    if let Node::Internal { children, .. } = &*node {
        for &c in children {
            collect_rec(c, retired);
        }
    }
    retired.push(node);
}

/// The recursive invariant walker behind [`OrderedIndex::check_tree`].
///
/// # Safety
///
/// Same generation-liveness contract as [`insert_rec`].
#[allow(clippy::too_many_arguments)]
unsafe fn check_rec(
    node: *const Node,
    lower: Option<&[u8]>,
    upper: Option<&[u8]>,
    depth: u64,
    stats: &mut TreeStats,
    last_key: &mut Option<Vec<u8>>,
    leaf_depth: &mut Option<u64>,
    validate: &LocValidator,
) -> Result<(), String> {
    let n = &*node;
    if n.len() == 0 {
        return Err(format!("empty node at depth {depth}"));
    }
    if n.len() > MAX_NODE_KEYS {
        return Err(format!(
            "node occupancy {} exceeds {MAX_NODE_KEYS} at depth {depth}",
            n.len()
        ));
    }
    match n {
        Node::Leaf { keys, locs } => {
            stats.leaves += 1;
            stats.depth = stats.depth.max(depth);
            match leaf_depth {
                Some(d) if *d != depth => {
                    return Err(format!(
                        "leaf depth {depth} differs from first leaf depth {d}"
                    ));
                }
                Some(_) => {}
                None => *leaf_depth = Some(depth),
            }
            if keys.len() != locs.len() {
                return Err(format!(
                    "leaf has {} keys but {} locations",
                    keys.len(),
                    locs.len()
                ));
            }
            for (key, &loc) in keys.iter().zip(locs) {
                if let Some(lo) = lower {
                    if key.as_slice() < lo {
                        return Err(format!("key {key:?} below its pivot lower bound"));
                    }
                }
                if let Some(hi) = upper {
                    if key.as_slice() >= hi {
                        return Err(format!("key {key:?} at or above its pivot upper bound"));
                    }
                }
                // The leaf chain: keys strictly increase across the whole
                // tree in traversal order.
                if let Some(last) = last_key {
                    if key <= last {
                        return Err(format!(
                            "leaf chain not strictly increasing: {last:?} then {key:?}"
                        ));
                    }
                }
                *last_key = Some(key.clone());
                validate(key, loc)?;
                stats.keys += 1;
            }
            Ok(())
        }
        Node::Internal { pivots, children } => {
            stats.internal_nodes += 1;
            if pivots.len() != children.len() {
                return Err(format!(
                    "internal node has {} pivots but {} children",
                    pivots.len(),
                    children.len()
                ));
            }
            for w in pivots.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!(
                        "pivots not strictly increasing: {:?} then {:?}",
                        w[0], w[1]
                    ));
                }
            }
            if let Some(lo) = lower {
                if pivots[0].as_slice() < lo {
                    return Err(format!(
                        "first pivot {:?} below the parent lower bound",
                        pivots[0]
                    ));
                }
            }
            for (i, &child) in children.iter().enumerate() {
                let hi = pivots.get(i + 1).map(Vec::as_slice).or(upper);
                check_rec(
                    child,
                    Some(&pivots[i]),
                    hi,
                    depth + 1,
                    stats,
                    last_key,
                    leaf_depth,
                    validate,
                )?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinomo_pclht::pin;
    use dinomo_pmem::PmAddr;
    use std::collections::BTreeMap;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    fn loc(v: u64) -> PackedLoc {
        PackedLoc::direct(PmAddr(v * 64), 64)
    }

    fn ok_loc(_k: &[u8], _l: PackedLoc) -> Result<(), String> {
        Ok(())
    }

    fn collect_from(index: &OrderedIndex, start: &[u8]) -> Vec<(Vec<u8>, PackedLoc)> {
        let guard = pin();
        index.snapshot(&guard).range_from(start).collect()
    }

    #[test]
    fn empty_tree_scans_and_checks() {
        let index = OrderedIndex::new();
        assert!(index.is_empty());
        assert!(collect_from(&index, b"").is_empty());
        let stats = index.check_tree(&ok_loc).unwrap();
        assert_eq!(stats, TreeStats::default());
        let guard = pin();
        assert!(!index.remove(&guard, b"missing"));
        assert!(!index.relocate(&guard, b"missing", loc(1), loc(2)));
    }

    #[test]
    fn inserts_splits_and_ordered_iteration() {
        let index = OrderedIndex::new();
        let guard = pin();
        // Insert in a scrambled order, enough to force multi-level splits.
        let mut ids: Vec<u64> = (0..200).collect();
        for i in 0..ids.len() {
            ids.swap(i, (i * 7919 + 13) % 200);
        }
        for &id in &ids {
            index.upsert(&guard, format!("k{id:04}").as_bytes(), loc(id));
        }
        assert_eq!(index.len(), 200);
        let stats = index.check_tree(&ok_loc).unwrap();
        assert_eq!(stats.keys, 200);
        assert!(stats.depth >= 3, "200 keys over fanout-8 nodes: {stats:?}");
        let all = collect_from(&index, b"");
        assert_eq!(all.len(), 200);
        for (i, (key, l)) in all.iter().enumerate() {
            assert_eq!(key, format!("k{i:04}").as_bytes());
            assert_eq!(*l, loc(i as u64));
        }
        // range_from starts at the smallest key >= start.
        let tail = collect_from(&index, b"k0190");
        assert_eq!(tail.len(), 10);
        assert_eq!(tail[0].0, b"k0190");
        let mid = collect_from(&index, b"k0100x");
        assert_eq!(mid[0].0, b"k0101");
        assert!(collect_from(&index, b"k9999").is_empty());
    }

    #[test]
    fn upsert_replaces_and_relocate_is_conditional() {
        let index = OrderedIndex::new();
        let guard = pin();
        index.upsert(&guard, b"a", loc(1));
        index.upsert(&guard, b"a", loc(2));
        assert_eq!(index.len(), 1);
        assert_eq!(index.get(&guard, b"a"), Some(loc(2)));
        // Wrong old location: refused.
        assert!(!index.relocate(&guard, b"a", loc(1), loc(9)));
        assert_eq!(index.get(&guard, b"a"), Some(loc(2)));
        // Matching old location: swung.
        assert!(index.relocate(&guard, b"a", loc(2), loc(3)));
        assert_eq!(index.get(&guard, b"a"), Some(loc(3)));
        index.check_tree(&ok_loc).unwrap();
    }

    #[test]
    fn removes_shrink_and_collapse_the_tree() {
        let index = OrderedIndex::new();
        let guard = pin();
        for id in 0..100u64 {
            index.upsert(&guard, format!("k{id:04}").as_bytes(), loc(id));
        }
        for id in (0..100u64).filter(|id| id % 3 != 0) {
            assert!(index.remove(&guard, format!("k{id:04}").as_bytes()));
        }
        assert!(!index.remove(&guard, b"k0001"), "double remove");
        let survivors = collect_from(&index, b"");
        assert_eq!(survivors.len(), 34);
        assert!(survivors
            .iter()
            .enumerate()
            .all(|(i, (k, _))| k == format!("k{:04}", i * 3).as_bytes()));
        index.check_tree(&ok_loc).unwrap();
        for id in (0..100u64).filter(|id| id % 3 == 0) {
            assert!(index.remove(&guard, format!("k{id:04}").as_bytes()));
        }
        assert!(index.is_empty());
        assert_eq!(index.check_tree(&ok_loc).unwrap(), TreeStats::default());
    }

    #[test]
    fn check_tree_reports_dangling_locations() {
        let index = OrderedIndex::new();
        let guard = pin();
        index.upsert(&guard, b"good", loc(1));
        index.upsert(&guard, b"bad", loc(666));
        let err = index
            .check_tree(&|key, l| {
                if l == loc(666) {
                    Err(format!("dangling location for {key:?}"))
                } else {
                    Ok(())
                }
            })
            .unwrap_err();
        assert!(err.contains("dangling"), "{err}");
    }

    #[test]
    fn pinned_readers_keep_observing_their_generation() {
        let index = Arc::new(OrderedIndex::new());
        {
            let guard = pin();
            for id in 0..50u64 {
                index.upsert(&guard, format!("k{id:04}").as_bytes(), loc(id));
            }
        }
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let index = Arc::clone(&index);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut round = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let guard = pin();
                    for id in 0..50u64 {
                        index.upsert(
                            &guard,
                            format!("k{id:04}").as_bytes(),
                            loc(1000 + round * 50 + id),
                        );
                    }
                    index.remove(&guard, format!("k{:04}", round % 50).as_bytes());
                    round += 1;
                }
            })
        };
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let index = Arc::clone(&index);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut scans = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let guard = pin();
                        let snap = index.snapshot(&guard);
                        // A generation is internally consistent however
                        // many rewrites race it: sorted, unique keys.
                        let mut last: Option<Vec<u8>> = None;
                        for (key, _) in snap.range_from(b"") {
                            if let Some(prev) = &last {
                                assert!(key > *prev, "unsorted scan: {prev:?} then {key:?}");
                            }
                            last = Some(key);
                        }
                        scans += 1;
                    }
                    scans
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(200));
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
        for r in readers {
            assert!(r.join().unwrap() > 0);
        }
        index.check_tree(&ok_loc).unwrap();
    }

    // ---- the satellite property test: random insert/remove/relocate
    // sequences against a BTreeMap model, invariants checked throughout.

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(64))]
        #[test]
        fn random_mutation_sequences_match_a_btreemap_model(ops in proptest::collection::vec((0u8..4, 0u16..64, 0u64..1_000), 1..400)) {
            let index = OrderedIndex::new();
            let mut model: BTreeMap<Vec<u8>, PackedLoc> = BTreeMap::new();
            let guard = pin();
            for (kind, key_id, loc_id) in ops {
                let key = format!("k{key_id:04}").into_bytes();
                match kind {
                    0 | 1 => {
                        index.upsert(&guard, &key, loc(loc_id));
                        model.insert(key, loc(loc_id));
                    }
                    2 => {
                        let expected = model.remove(&key).is_some();
                        proptest::prop_assert_eq!(index.remove(&guard, &key), expected);
                    }
                    _ => {
                        // Relocate conditionally on the model's view — the
                        // swing must succeed exactly when the old location
                        // matches.
                        let old = model.get(&key).copied();
                        let swung = index.relocate(&guard, &key, loc(loc_id), loc(loc_id + 1));
                        proptest::prop_assert_eq!(swung, old == Some(loc(loc_id)));
                        if swung {
                            model.insert(key, loc(loc_id + 1));
                        }
                    }
                }
                let stats = index.check_tree(&ok_loc)?;
                proptest::prop_assert_eq!(stats.keys as usize, model.len());
            }
            let walked: Vec<(Vec<u8>, PackedLoc)> = {
                let g = pin();
                index.snapshot(&g).range_from(b"").collect()
            };
            let expected: Vec<(Vec<u8>, PackedLoc)> =
                model.iter().map(|(k, v)| (k.clone(), *v)).collect();
            proptest::prop_assert_eq!(walked, expected);
            // Suffix scans agree with the model's range view.
            let start = b"k0020".to_vec();
            let walked_tail: Vec<Vec<u8>> = {
                let g = pin();
                index.snapshot(&g).range_from(&start).map(|(k, _)| k).collect()
            };
            let expected_tail: Vec<Vec<u8>> =
                model.range(start..).map(|(k, _)| k.clone()).collect();
            proptest::prop_assert_eq!(walked_tail, expected_tail);
        }
    }
}
