//! Log-segment bookkeeping.

use dinomo_pmem::PmAddr;
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Shared state describing one log segment in DPM.
///
/// A segment is owned (written) by exactly one KVS node; DPM processor
/// threads and the garbage collector read its counters.  The counters follow
/// the paper's GC design: each segment tracks how many of its entries are
/// still referenced ("valid") versus superseded ("invalid"); once every entry
/// is invalid and the segment is sealed and fully merged, it can be freed.
#[derive(Debug)]
pub struct SegmentState {
    /// Unique segment id.
    pub id: u64,
    /// KVS node that owns (writes) this segment.
    pub owner_kn: u32,
    /// Base address in the DPM pool.
    pub base: PmAddr,
    /// Capacity in bytes.
    pub capacity: u64,
    /// Bytes written (and committed) so far.
    written: AtomicU64,
    /// Bytes already merged into the metadata index.
    merged: AtomicU64,
    /// Entries written so far.
    entries_written: AtomicU64,
    /// Entries merged so far.
    entries_merged: AtomicU64,
    /// Entries whose data has been superseded, deleted, or that never carried
    /// data (tombstones count as invalid immediately after merging).
    entries_invalid: AtomicU64,
    /// Bytes covered by invalidated entries. The compactor's cost-benefit
    /// victim scoring ranks segments by *bytes*, not entry counts — two
    /// segments with the same number of dead entries can hold wildly
    /// different amounts of reclaimable space when value sizes are mixed.
    bytes_invalid: AtomicU64,
    /// Segment offsets already recorded invalid. An entry can be discovered
    /// dead more than once — at indirection-cell swing time and again when
    /// its own log record merges and is found stale — and `is_reclaimable`
    /// compares `entries_invalid` against `entries_written`, so a
    /// double-count would stand in for a live entry and let GC free a
    /// segment that is still referenced. The set makes invalidation
    /// idempotent per entry.
    invalid_offsets: Mutex<HashSet<u64>>,
    /// Sealed: the owner will not append to this segment again.
    sealed: AtomicBool,
    /// Freed by the garbage collector.
    freed: AtomicBool,
    /// Number of indirection cells whose current target (live entry or the
    /// tombstoned-over entry a cell keeps for key identity) lies in this
    /// segment. A cell swing pins the *new* target's segment before the
    /// CAS and unpins the old target's segment after it, so collectors
    /// only need this one counter — not a global registry walk — to know
    /// whether a segment is cell-referenced. A segment with `cell_pins()
    /// > 0` must be neither relocated nor freed.
    cell_pins: AtomicU64,
}

impl SegmentState {
    /// Create bookkeeping for a fresh segment.
    pub fn new(id: u64, owner_kn: u32, base: PmAddr, capacity: u64) -> Self {
        SegmentState {
            id,
            owner_kn,
            base,
            capacity,
            written: AtomicU64::new(0),
            merged: AtomicU64::new(0),
            entries_written: AtomicU64::new(0),
            entries_merged: AtomicU64::new(0),
            entries_invalid: AtomicU64::new(0),
            bytes_invalid: AtomicU64::new(0),
            invalid_offsets: Mutex::new(HashSet::new()),
            sealed: AtomicBool::new(false),
            freed: AtomicBool::new(false),
            cell_pins: AtomicU64::new(0),
        }
    }

    /// Record that an indirection cell now references an entry in this
    /// segment. Callers pin **before** publishing the reference (the cell
    /// write / index swing), so any collector that observes the published
    /// reference also observes the pin.
    pub fn pin_cell(&self) {
        self.cell_pins.fetch_add(1, Ordering::SeqCst);
    }

    /// Release one cell pin (the cell swung its target elsewhere, or was
    /// dismantled). Callers unpin **after** the reference is retracted.
    pub fn unpin_cell(&self) {
        let prev = self.cell_pins.fetch_sub(1, Ordering::SeqCst);
        debug_assert!(prev > 0, "cell pin underflow on segment {}", self.id);
    }

    /// Number of indirection cells currently referencing this segment.
    pub fn cell_pins(&self) -> u64 {
        self.cell_pins.load(Ordering::SeqCst)
    }

    /// Bytes written so far.
    pub fn written(&self) -> u64 {
        self.written.load(Ordering::Acquire)
    }

    /// Bytes merged so far.
    pub fn merged(&self) -> u64 {
        self.merged.load(Ordering::Acquire)
    }

    /// Entries written so far.
    pub fn entries_written(&self) -> u64 {
        self.entries_written.load(Ordering::Acquire)
    }

    /// Entries merged so far.
    pub fn entries_merged(&self) -> u64 {
        self.entries_merged.load(Ordering::Acquire)
    }

    /// Entries invalidated so far.
    pub fn entries_invalid(&self) -> u64 {
        self.entries_invalid.load(Ordering::Acquire)
    }

    /// Bytes covered by invalidated entries (dead bytes).
    pub fn dead_bytes(&self) -> u64 {
        self.bytes_invalid.load(Ordering::Acquire)
    }

    /// Bytes still referenced by live entries (written minus dead).
    pub fn live_bytes(&self) -> u64 {
        self.written().saturating_sub(self.dead_bytes())
    }

    /// Fraction of written bytes that are dead (0.0 for an empty segment).
    pub fn dead_fraction(&self) -> f64 {
        let written = self.written();
        if written == 0 {
            0.0
        } else {
            self.dead_bytes() as f64 / written as f64
        }
    }

    /// `true` if the entry at `offset` has been recorded invalid.
    pub fn is_offset_invalid(&self, offset: u64) -> bool {
        self.invalid_offsets.lock().contains(&offset)
    }

    /// Remaining space in bytes.
    pub fn remaining(&self) -> u64 {
        self.capacity - self.written()
    }

    /// Record that the owner appended `bytes` bytes containing `entries`
    /// entries. Returns the offset at which the batch starts.
    pub fn record_append(&self, bytes: u64, entries: u64) -> u64 {
        let off = self.written.fetch_add(bytes, Ordering::AcqRel);
        self.entries_written.fetch_add(entries, Ordering::AcqRel);
        off
    }

    /// Record that a merge task covering `bytes`/`entries` completed.
    pub fn record_merged(&self, bytes: u64, entries: u64) {
        self.merged.fetch_add(bytes, Ordering::AcqRel);
        self.entries_merged.fetch_add(entries, Ordering::AcqRel);
    }

    /// Raise the merged counters to *at least* the given values — the
    /// recovery scan's accounting. Recovery replays entries that were
    /// typically merged before the crash; adding their bytes again (as
    /// [`SegmentState::record_merged`] would) lets `merged` outrun
    /// `written`, and an owner appending to this segment after recovery
    /// would then look already-merged to `wait_until_merged` before its
    /// batch's merge actually applied.
    pub fn record_merged_at_least(&self, bytes: u64, entries: u64) {
        self.merged.fetch_max(bytes, Ordering::AcqRel);
        self.entries_merged.fetch_max(entries, Ordering::AcqRel);
    }

    /// Record that the `len`-byte entry at segment `offset` became invalid
    /// (superseded, deleted, or a tombstone). Idempotent: re-reporting the
    /// same entry advances neither the entry nor the byte counter.
    pub fn record_invalidated(&self, offset: u64, len: u64) {
        if self.invalid_offsets.lock().insert(offset) {
            self.entries_invalid.fetch_add(1, Ordering::AcqRel);
            self.bytes_invalid.fetch_add(len, Ordering::AcqRel);
        }
    }

    /// Seal the segment (the owner moves to a new one).
    pub fn seal(&self) {
        self.sealed.store(true, Ordering::Release);
    }

    /// `true` once sealed.
    pub fn is_sealed(&self) -> bool {
        self.sealed.load(Ordering::Acquire)
    }

    /// `true` if every written byte has been merged.
    pub fn is_fully_merged(&self) -> bool {
        self.merged() >= self.written()
    }

    /// `true` if the segment's entries are all invalid and it can be freed.
    pub fn is_reclaimable(&self) -> bool {
        self.is_sealed()
            && self.is_fully_merged()
            && self.entries_written() > 0
            && self.entries_invalid() >= self.entries_written()
            && !self.is_freed()
    }

    /// Mark freed; returns `false` if it already was.
    pub fn mark_freed(&self) -> bool {
        !self.freed.swap(true, Ordering::AcqRel)
    }

    /// `true` once freed.
    pub fn is_freed(&self) -> bool {
        self.freed.load(Ordering::Acquire)
    }

    /// `true` if `addr` falls inside this segment.
    pub fn contains(&self, addr: PmAddr) -> bool {
        addr.0 >= self.base.0 && addr.0 < self.base.0 + self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_merge_accounting() {
        let s = SegmentState::new(1, 0, PmAddr(4096), 1024);
        assert_eq!(s.record_append(100, 2), 0);
        assert_eq!(s.record_append(50, 1), 100);
        assert_eq!(s.written(), 150);
        assert_eq!(s.entries_written(), 3);
        assert_eq!(s.remaining(), 1024 - 150);
        assert!(!s.is_fully_merged());
        s.record_merged(150, 3);
        assert!(s.is_fully_merged());
    }

    #[test]
    fn reclaimable_requires_all_conditions() {
        let s = SegmentState::new(1, 0, PmAddr(4096), 1024);
        s.record_append(100, 2);
        s.record_merged(100, 2);
        s.record_invalidated(0, 50);
        assert!(!s.is_reclaimable(), "not sealed yet");
        s.seal();
        assert!(!s.is_reclaimable(), "one entry still valid");
        s.record_invalidated(0, 50);
        assert!(
            !s.is_reclaimable(),
            "re-invalidating the same entry must not stand in for the live one"
        );
        s.record_invalidated(50, 50);
        assert!(s.is_reclaimable());
        assert!(s.mark_freed());
        assert!(!s.mark_freed(), "double free must be detected");
        assert!(!s.is_reclaimable(), "already freed");
    }

    #[test]
    fn recovery_accounting_floors_and_never_outruns_written() {
        // A recovery scan replays entries that were already merged; its
        // accounting must floor the counters, never re-add — otherwise
        // `merged` outruns `written` and appends after recovery look
        // already-merged before their merge applies.
        let s = SegmentState::new(1, 0, PmAddr(0), 1024);
        s.record_append(100, 2);
        s.record_merged(100, 2);
        // Two recovery scans (double recovery) change nothing.
        s.record_merged_at_least(100, 2);
        s.record_merged_at_least(100, 2);
        assert_eq!(s.merged(), 100);
        assert_eq!(s.entries_merged(), 2);
        // A post-recovery append is visible as unmerged again.
        s.record_append(60, 1);
        assert!(!s.is_fully_merged());
        s.record_merged(60, 1);
        assert!(s.is_fully_merged());
        // On a never-merged segment the floor does the whole job.
        let cold = SegmentState::new(2, 0, PmAddr(4096), 1024);
        cold.record_append(80, 1);
        cold.record_merged_at_least(80, 1);
        assert!(cold.is_fully_merged());
    }

    #[test]
    fn live_byte_accounting_tracks_mixed_entry_sizes() {
        // Two segments with one dead entry each must not rank equally when
        // the dead entries' sizes differ — the counters the compactor's
        // victim scoring reads are bytes, not entry counts.
        let s = SegmentState::new(1, 0, PmAddr(0), 4096);
        s.record_append(1000, 2); // a 900-byte entry and a 100-byte entry
        assert_eq!(s.live_bytes(), 1000);
        assert_eq!(s.dead_bytes(), 0);
        s.record_invalidated(0, 900);
        assert_eq!(s.dead_bytes(), 900);
        assert_eq!(s.live_bytes(), 100);
        assert!((s.dead_fraction() - 0.9).abs() < 1e-9);
        // Idempotent in bytes too.
        s.record_invalidated(0, 900);
        assert_eq!(s.dead_bytes(), 900);
        assert!(s.is_offset_invalid(0));
        assert!(!s.is_offset_invalid(900));
    }

    #[test]
    fn empty_sealed_segment_is_not_reclaimable() {
        let s = SegmentState::new(1, 0, PmAddr(0), 64);
        s.seal();
        assert!(!s.is_reclaimable());
    }

    #[test]
    fn contains_checks_bounds() {
        let s = SegmentState::new(1, 0, PmAddr(1000), 100);
        assert!(s.contains(PmAddr(1000)));
        assert!(s.contains(PmAddr(1099)));
        assert!(!s.contains(PmAddr(1100)));
        assert!(!s.contains(PmAddr(999)));
    }
}
