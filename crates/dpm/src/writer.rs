//! KN-side log writer: batches entries and commits them to DPM with a single
//! one-sided write (§3.6 "asynchronous post-processing of writes").

use crate::entry::{encode_entry, entry_size, LogOp};
use crate::loc::PackedLoc;
use crate::node::DpmNode;
use crate::segment::SegmentState;
use dinomo_pmem::{PmAddr, PmemError};
use dinomo_simnet::Nic;
use std::sync::Arc;

/// A write that has been made durable in the DPM log (but possibly not yet
/// merged into the metadata index).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommittedWrite {
    /// The key written.
    pub key: Vec<u8>,
    /// Put or delete.
    pub op: LogOp,
    /// Address of the value bytes in DPM (valid for puts).
    pub value_addr: PmAddr,
    /// Length of the value in bytes.
    pub value_len: u32,
    /// Location of the full log entry (what the metadata index will point
    /// to once the entry is merged).
    pub entry_loc: PackedLoc,
}

#[derive(Debug)]
struct PendingEntry {
    key: Vec<u8>,
    op: LogOp,
    entry_offset: u64,
    value_offset: u64,
    value_len: u32,
}

/// A per-KN (or per-KN-thread) log writer.
///
/// Writes are appended to a local buffer; [`LogWriter::flush`] copies the
/// whole batch into the KN's current exclusive log segment with **one**
/// one-sided RDMA write, persists it, and hands the batch to the DPM merge
/// engine.  The writer automatically allocates a fresh segment (a two-sided
/// operation, off the hot path) when the current one fills up, blocking only
/// if the KN already has `unmerged_segment_threshold` sealed-but-unmerged
/// segments.
#[derive(Debug)]
pub struct LogWriter {
    dpm: Arc<DpmNode>,
    kn: u32,
    nic: Nic,
    buffer: Vec<u8>,
    pending: Vec<PendingEntry>,
    current: Option<Arc<SegmentState>>,
}

impl LogWriter {
    /// Create a writer for KVS node `kn` using `nic` for network accounting.
    pub fn new(dpm: Arc<DpmNode>, kn: u32, nic: Nic) -> Self {
        LogWriter {
            dpm,
            kn,
            nic,
            buffer: Vec::new(),
            pending: Vec::new(),
            current: None,
        }
    }

    /// The KVS node this writer belongs to.
    pub fn kn(&self) -> u32 {
        self.kn
    }

    /// Bytes currently buffered (not yet flushed).
    pub fn buffered_bytes(&self) -> usize {
        self.buffer.len()
    }

    /// Entries currently buffered.
    pub fn buffered_entries(&self) -> usize {
        self.pending.len()
    }

    /// `true` once the buffer has reached the configured batch size.
    pub fn should_flush(&self) -> bool {
        self.buffer.len() >= self.dpm.config().flush_batch_bytes
    }

    /// Buffer an insert/update. Returns the entry's global sequence number.
    pub fn append_put(&mut self, key: &[u8], value: &[u8]) -> u64 {
        self.append(key, value, LogOp::Put)
    }

    /// Buffer a delete (tombstone). Returns the entry's global sequence
    /// number.
    pub fn append_delete(&mut self, key: &[u8]) -> u64 {
        self.append(key, &[], LogOp::Delete)
    }

    fn append(&mut self, key: &[u8], value: &[u8], op: LogOp) -> u64 {
        assert!(!key.is_empty(), "keys must be non-empty");
        assert!(
            entry_size(key.len(), value.len()) <= self.dpm.config().segment_bytes,
            "entry larger than a log segment"
        );
        // Sequence numbers come from the cluster-global counter so entries
        // stay comparable when a key's writer changes across a
        // reconfiguration (the merge engine compares them to detect stale
        // entries).
        let seq = self.dpm.next_seq();
        let entry_offset = self.buffer.len() as u64;
        let value_offset_in_entry = encode_entry(&mut self.buffer, key, value, op, seq);
        self.pending.push(PendingEntry {
            key: key.to_vec(),
            op,
            entry_offset,
            value_offset: entry_offset + value_offset_in_entry,
            value_len: value.len() as u32,
        });
        seq
    }

    /// Flush the buffered batch to DPM. Returns one [`CommittedWrite`] per
    /// buffered entry, in order.  On return the batch is durable in the log
    /// (commit markers written and persisted) and queued for merging.
    pub fn flush(&mut self) -> Result<Vec<CommittedWrite>, PmemError> {
        if self.buffer.is_empty() {
            return Ok(Vec::new());
        }
        let batch_len = self.buffer.len() as u64;
        let segment = self.segment_with_space(batch_len)?;
        let offset = segment.record_append(batch_len, self.pending.len() as u64);
        let base = segment.base.offset(offset);

        // The entire batch is one one-sided RDMA write, then persisted.
        self.nic.one_sided_write(self.buffer.len());
        let pool = self.dpm.pool();
        pool.write_bytes(base, &self.buffer);
        pool.persist(base, batch_len);
        pool.drain();

        let commits: Vec<CommittedWrite> = self
            .pending
            .iter()
            .map(|p| {
                let entry_addr = base.offset(p.entry_offset);
                let entry_len = entry_size(p.key.len(), p.value_len as usize);
                CommittedWrite {
                    key: p.key.clone(),
                    op: p.op,
                    value_addr: base.offset(p.value_offset),
                    value_len: p.value_len,
                    entry_loc: PackedLoc::direct(entry_addr, entry_len),
                }
            })
            .collect();

        self.dpm.submit_merge_batch(&segment, offset, batch_len);
        self.buffer.clear();
        self.pending.clear();
        Ok(commits)
    }

    fn segment_with_space(&mut self, needed: u64) -> Result<Arc<SegmentState>, PmemError> {
        if let Some(seg) = &self.current {
            if seg.remaining() >= needed {
                return Ok(Arc::clone(seg));
            }
            seg.seal();
        }
        // Allocating a new segment may have to wait for the merge engine to
        // drain (the paper's un-merged segment threshold, default 2).
        self.dpm.wait_for_merge_slack(self.kn);
        // Segment allocation is a two-sided operation to the DPM.
        self.nic.rpc(64, 64);
        let seg = self.dpm.allocate_segment(self.kn)?;
        assert!(seg.capacity >= needed, "batch larger than a fresh segment");
        self.current = Some(Arc::clone(&seg));
        Ok(seg)
    }

    /// Seal the current segment (used when a KN shuts down or hands its
    /// partition away).
    pub fn seal_current(&mut self) {
        if let Some(seg) = self.current.take() {
            seg.seal();
        }
    }

    /// Drop everything buffered but not yet flushed — the crash path. A
    /// buffered write lives only in KN DRAM (nothing has been sent to the
    /// log), so a fail-stop discards it; since a write is acknowledged
    /// only after [`LogWriter::flush`] returns, no acknowledged write is
    /// ever lost this way. Returns how many entries were discarded.
    pub fn discard_buffered(&mut self) -> usize {
        let discarded = self.pending.len();
        self.buffer.clear();
        self.pending.clear();
        discarded
    }
}
