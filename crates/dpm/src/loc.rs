//! Packed 64-bit locations stored in the metadata index.
//!
//! The P-CLHT index stores a single 64-bit word per entry, so the location of
//! a log entry (address + length) plus the "is indirect" flag used for
//! selectively-replicated keys are packed into one word:
//!
//! ```text
//! bit 63        : indirect flag (the address points at an indirection cell)
//! bits 62..=47  : length in bytes (16 bits, up to 64 KiB)
//! bits 46..=0   : address (byte offset in the DPM pool, up to 128 TiB)
//! ```

use dinomo_pmem::PmAddr;
use serde::{Deserialize, Serialize};

const ADDR_BITS: u32 = 47;
const LEN_BITS: u32 = 16;
const ADDR_MASK: u64 = (1 << ADDR_BITS) - 1;
const LEN_MASK: u64 = (1 << LEN_BITS) - 1;
const INDIRECT_BIT: u64 = 1 << 63;

/// Maximum length a packed location can describe.
pub const MAX_PACKED_LEN: u64 = LEN_MASK;

/// A packed (address, length, indirect) triple. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PackedLoc(u64);

impl PackedLoc {
    /// Pack a direct location.
    pub fn direct(addr: PmAddr, len: u64) -> Self {
        Self::pack(addr, len, false)
    }

    /// Pack a location that points at an indirection cell.
    pub fn indirect(addr: PmAddr, len: u64) -> Self {
        Self::pack(addr, len, true)
    }

    fn pack(addr: PmAddr, len: u64, indirect: bool) -> Self {
        assert!(addr.0 <= ADDR_MASK, "address {:#x} exceeds 47 bits", addr.0);
        assert!(len <= LEN_MASK, "length {len} exceeds 16 bits");
        let mut raw = (addr.0 & ADDR_MASK) | ((len & LEN_MASK) << ADDR_BITS);
        if indirect {
            raw |= INDIRECT_BIT;
        }
        PackedLoc(raw)
    }

    /// Reconstruct from the raw 64-bit word stored in the index.
    pub fn from_raw(raw: u64) -> Self {
        PackedLoc(raw)
    }

    /// The raw 64-bit word to store in the index.
    pub fn raw(&self) -> u64 {
        self.0
    }

    /// Address component.
    pub fn addr(&self) -> PmAddr {
        PmAddr(self.0 & ADDR_MASK)
    }

    /// Length component in bytes.
    pub fn len(&self) -> u64 {
        (self.0 >> ADDR_BITS) & LEN_MASK
    }

    /// `true` if the length is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` if this location points at an indirection cell.
    pub fn is_indirect(&self) -> bool {
        self.0 & INDIRECT_BIT != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_direct_and_indirect() {
        let d = PackedLoc::direct(PmAddr(0x1234_5678), 1024);
        assert_eq!(d.addr(), PmAddr(0x1234_5678));
        assert_eq!(d.len(), 1024);
        assert!(!d.is_indirect());
        let i = PackedLoc::indirect(PmAddr(64), 16);
        assert!(i.is_indirect());
        assert_eq!(i.addr(), PmAddr(64));
        assert_eq!(i.len(), 16);
        assert_eq!(PackedLoc::from_raw(d.raw()), d);
    }

    #[test]
    fn extremes_fit() {
        let loc = PackedLoc::direct(PmAddr(ADDR_MASK), MAX_PACKED_LEN);
        assert_eq!(loc.addr().0, ADDR_MASK);
        assert_eq!(loc.len(), MAX_PACKED_LEN);
        let zero = PackedLoc::direct(PmAddr(0), 0);
        assert!(zero.is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds 16 bits")]
    fn oversized_length_panics() {
        let _ = PackedLoc::direct(PmAddr(0), MAX_PACKED_LEN + 1);
    }

    #[test]
    #[should_panic(expected = "exceeds 47 bits")]
    fn oversized_address_panics() {
        let _ = PackedLoc::direct(PmAddr(1 << 50), 8);
    }
}
