//! # dinomo-dpm — the disaggregated persistent-memory node
//!
//! This crate implements the DPM side of Dinomo's data plane (§3.2, §3.6 and
//! §4 of the paper):
//!
//! * **Per-KN log segments** ([`segment`], [`writer`]) — each KVS node owns
//!   exclusive log segments in DPM; writes are batched into a segment with a
//!   single one-sided RDMA WRITE and sealed with a per-entry commit marker so
//!   torn writes are detectable after a crash.
//! * **Asynchronous merging** ([`merge`]) — DPM processor threads merge
//!   sealed log entries, in per-KN order, into the shared P-CLHT metadata
//!   index off the critical path.  KVS nodes block only when their number of
//!   unmerged segments exceeds a threshold (default 2).
//! * **Garbage collection** ([`gc`]) — per-segment valid/invalid counters let
//!   the DPM reclaim a segment once every entry in it has been superseded,
//!   and a cost-benefit log cleaner relocates the still-live entries of
//!   mostly-dead segments so skew-pinned segments reclaim too (keeping the
//!   footprint proportional to live data instead of write history).
//! * **Indirect pointers** ([`node`]) — selectively-replicated (hot) keys are
//!   reached through a CAS-able indirection cell so several KNs can update
//!   them linearizably.
//! * **Recovery** — after a KN failure the pending log segments of that KN
//!   are merged synchronously before its partitions are handed to new owners;
//!   after a DPM power failure, unsealed (torn) entries are discarded and
//!   sealed ones are re-merged.
//! * **A metadata blob store** — ownership/replication policy metadata is
//!   persisted in DPM so routing nodes and KNs can rebuild their soft state.

#![warn(missing_docs)]

pub mod bloom;
pub mod config;
pub mod entry;
pub mod failpoint;
pub mod gc;
pub mod loc;
pub mod merge;
pub mod node;
pub mod ordered;
pub mod segment;
pub mod writer;

pub use bloom::BloomFilter;
pub use config::{DpmConfig, GcConfig};
pub use entry::{EntryHeader, LogOp};
pub use failpoint::FailpointSet;
pub use gc::{CompactionReport, GC_OWNER_KN};
pub use loc::PackedLoc;
pub use node::{DpmNode, DpmStats, LookupResult, RecoveryReport, RelocationObserver};
pub use ordered::{OrderedIndex, TreeStats};
// Re-exported so KVS nodes can pin one epoch guard across a whole batch of
// index lookups (`DpmNode::{local_lookup_in, remote_read_in}`).
pub use dinomo_pclht::{pin, Guard};
// The epoch shim's process-global reclamation stats, re-exported so the
// core layer can bridge them into its metrics registry without its own
// crossbeam dependency.
pub use crossbeam::epoch::stats as epoch_stats;
pub use segment::SegmentState;
pub use writer::{CommittedWrite, LogWriter};
