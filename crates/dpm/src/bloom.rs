//! A small Bloom filter.
//!
//! KVS nodes keep their *unmerged* log segments cached locally and must check
//! them on every cache miss before falling back to the DPM index (§4 of the
//! paper: "Dinomo implements Bloom filters atop cached log segments for quick
//! membership queries").  This filter answers "might this key be in the
//! cached segment?" with no false negatives.

/// A fixed-size Bloom filter over byte-string keys.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: u64,
    hashes: u32,
    inserted: u64,
}

impl BloomFilter {
    /// Create a filter sized for `expected_items` with roughly a 1 % false
    /// positive rate.
    pub fn new(expected_items: usize) -> Self {
        // ~9.6 bits/item and 7 hash functions give ~1% FPR.
        let num_bits = ((expected_items.max(8)) as u64 * 10).next_power_of_two();
        BloomFilter {
            bits: vec![0u64; (num_bits / 64) as usize],
            num_bits,
            hashes: 7,
            inserted: 0,
        }
    }

    fn hash2(key: &[u8]) -> (u64, u64) {
        let mut h1: u64 = 0xcbf2_9ce4_8422_2325;
        let mut h2: u64 = 0x9E37_79B9_7F4A_7C15;
        for &b in key {
            h1 = (h1 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
            h2 = h2
                .wrapping_add(u64::from(b))
                .wrapping_mul(0xff51_afd7_ed55_8ccd);
            h2 ^= h2 >> 29;
        }
        (h1, h2 | 1)
    }

    /// Add a key.
    pub fn insert(&mut self, key: &[u8]) {
        let (h1, h2) = Self::hash2(key);
        for i in 0..self.hashes {
            let bit = h1.wrapping_add(u64::from(i).wrapping_mul(h2)) % self.num_bits;
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
        }
        self.inserted += 1;
    }

    /// `false` means the key is definitely absent; `true` means it may be
    /// present.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        let (h1, h2) = Self::hash2(key);
        for i in 0..self.hashes {
            let bit = h1.wrapping_add(u64::from(i).wrapping_mul(h2)) % self.num_bits;
            if self.bits[(bit / 64) as usize] & (1 << (bit % 64)) == 0 {
                return false;
            }
        }
        true
    }

    /// Number of keys inserted.
    pub fn len(&self) -> u64 {
        self.inserted
    }

    /// `true` if nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.inserted == 0
    }

    /// Reset the filter.
    pub fn clear(&mut self) {
        self.bits.iter_mut().for_each(|w| *w = 0);
        self.inserted = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::new(1_000);
        for i in 0..1_000u32 {
            f.insert(format!("key{i}").as_bytes());
        }
        for i in 0..1_000u32 {
            assert!(f.may_contain(format!("key{i}").as_bytes()));
        }
        assert_eq!(f.len(), 1_000);
    }

    #[test]
    fn false_positive_rate_is_low() {
        let mut f = BloomFilter::new(1_000);
        for i in 0..1_000u32 {
            f.insert(format!("key{i}").as_bytes());
        }
        let fp = (10_000..20_000u32)
            .filter(|i| f.may_contain(format!("key{i}").as_bytes()))
            .count();
        assert!(fp < 500, "false positive rate too high: {fp}/10000");
    }

    #[test]
    fn clear_resets() {
        let mut f = BloomFilter::new(16);
        f.insert(b"a");
        assert!(f.may_contain(b"a"));
        f.clear();
        assert!(!f.may_contain(b"a"));
        assert!(f.is_empty());
    }
}
