//! The asynchronous merge engine ("DPM processors").
//!
//! KVS nodes append batches of log entries with one-sided writes; the DPM's
//! limited compute capacity is spent off the critical path merging those
//! entries into the shared P-CLHT index.  Entries from one KN are merged in
//! write order (tasks are routed to a worker by KN id), while different KNs'
//! logs merge concurrently — exactly the concurrency contract §3.2 describes.

use crate::entry::{decode_entry, LogOp};
use crate::loc::PackedLoc;
use crate::node::DpmInner;
use crate::segment::SegmentState;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One unit of merge work: a contiguous byte range of a segment containing
/// `entries` committed entries.
#[derive(Debug, Clone)]
pub(crate) struct MergeTask {
    pub segment: Arc<SegmentState>,
    pub start: u64,
    pub len: u64,
}

/// Handle to the DPM processor threads.
#[derive(Debug)]
pub(crate) struct MergeEngine {
    senders: Vec<Sender<MergeTask>>,
    handles: Vec<JoinHandle<()>>,
}

impl MergeEngine {
    /// Spawn `threads` merge workers over the shared DPM state.
    pub(crate) fn start(inner: Arc<DpmInner>, threads: usize) -> Self {
        let threads = threads.max(1);
        let mut senders = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for worker_id in 0..threads {
            let (tx, rx): (Sender<MergeTask>, Receiver<MergeTask>) = unbounded();
            senders.push(tx);
            let inner = Arc::clone(&inner);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("dpm-merge-{worker_id}"))
                    .spawn(move || worker_loop(&inner, &rx))
                    .expect("failed to spawn merge worker"),
            );
        }
        MergeEngine { senders, handles }
    }

    /// Route a task to the worker responsible for its owner KN (preserving
    /// per-KN merge order).
    pub(crate) fn submit(&self, task: MergeTask) {
        let idx = task.segment.owner_kn as usize % self.senders.len();
        // A send error means shutdown already started; dropping the task is
        // then fine (the recovery scan re-merges sealed entries).
        let _ = self.senders[idx].send(task);
    }

    /// Stop all workers and wait for them to exit.
    pub(crate) fn shutdown(&mut self) {
        self.senders.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for MergeEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(inner: &DpmInner, rx: &Receiver<MergeTask>) {
    while let Ok(task) = rx.recv() {
        merge_task(inner, &task);
        inner.notify_merge_progress();
    }
}

/// Merge every entry in the task's byte range into the index.
pub(crate) fn merge_task(inner: &DpmInner, task: &MergeTask) {
    let pool = inner.pool();
    // One epoch pin for the whole task: every per-entry index lookup below
    // traverses under this guard instead of pinning per entry.
    let guard = dinomo_pclht::pin();
    let mut offset = task.start;
    let end = task.start + task.len;
    let mut merged_entries = 0u64;
    while offset < end {
        let addr = task.segment.base.offset(offset);
        let Some(entry) = decode_entry(pool, addr, end - offset) else {
            break;
        };
        if !entry.sealed {
            // Torn entry: everything after it in this batch is unusable.
            break;
        }
        if inner.config().inject_media_delay {
            busy_wait(inner.media_merge_cost(&entry));
        }
        apply_entry(inner, task, &guard, addr, &entry);
        offset += entry.total_len;
        merged_entries += 1;
    }
    task.segment.record_merged(task.len, merged_entries);
    inner.stats_entries_merged(merged_entries);
}

/// Re-apply one sealed entry during a recovery scan: the merge worker's
/// application logic without the merged-counter bump — the caller floors
/// the segment's counters once per segment with
/// [`SegmentState::record_merged_at_least`], because a recovered entry
/// was usually merged before the crash and re-adding its bytes would let
/// `merged` outrun `written` (masking post-recovery appends as already
/// merged).
pub(crate) fn apply_recovered_entry(
    inner: &DpmInner,
    segment: &Arc<SegmentState>,
    guard: &dinomo_pclht::Guard,
    offset: u64,
    entry: &crate::entry::DecodedEntry,
) {
    let task = MergeTask {
        segment: Arc::clone(segment),
        start: offset,
        len: entry.total_len,
    };
    let addr = segment.base.offset(offset);
    apply_entry(inner, &task, guard, addr, entry);
}

fn apply_entry(
    inner: &DpmInner,
    task: &MergeTask,
    guard: &dinomo_pclht::Guard,
    entry_addr: dinomo_pmem::PmAddr,
    entry: &crate::entry::DecodedEntry,
) {
    let tag = dinomo_partition::key_hash(&entry.key);
    let key = entry.key.clone();
    match entry.header.op {
        LogOp::Put => {
            let new_loc = PackedLoc::direct(entry_addr, entry.total_len);
            let existing = inner
                .index()
                .get_in(guard, tag, |raw| inner.loc_matches_key(raw, &key));
            match existing {
                Some(raw) => {
                    let old = PackedLoc::from_raw(raw);
                    if old.is_indirect() {
                        // Shared key: the KN makes the entry reachable by
                        // CAS-ing the indirection cell, and that publish
                        // can lag this merge (the KN flushes, drops its
                        // shard lock, then swings). Judge staleness by seq
                        // against what the cell currently publishes: an
                        // entry at or below the published seq lost its
                        // race and is garbage; a *newer* entry's publish
                        // is still in flight and the entry must stay valid
                        // — invalidating it would let GC free its segment
                        // and the delayed swing would point the cell at
                        // freed bytes. (`publish_shared_put` invalidates
                        // the entry itself if the swing is later abandoned
                        // as stale, so nothing leaks.)
                        let cell_points_here =
                            inner.indirect_cell_target(old.addr()) == Some(new_loc);
                        if !cell_points_here {
                            match inner.cell_published_seq(old.addr()) {
                                Some(published) if published < entry.header.seq => {
                                    // Publish in flight: leave it valid.
                                }
                                _ => inner.invalidate_entry(new_loc),
                            }
                        }
                    } else if old == new_loc {
                        // Already merged (recovery re-merge): nothing to do.
                    } else if inner.entry_seq(old) >= Some(entry.header.seq) {
                        // The indexed entry is newer (recovery re-scans, or
                        // a key written through several KNs — replication,
                        // reconfiguration — whose segments merge on workers
                        // with no mutual order), or carries the *same* seq
                        // at a different address — which only a compactor
                        // relocation produces (appends draw unique global
                        // seqs): the indexed copy IS this record, so the
                        // record's address is the dead duplicate. Either
                        // way this one is stale. (`>` instead of `>=` let a
                        // recovery re-scan swing the index back onto a
                        // partially-compacted victim and mark the served
                        // copy invalid — a later GC would then free the
                        // segment the index pointed into.)
                        inner.invalidate_entry(new_loc);
                    } else {
                        inner.index().update(
                            tag,
                            |raw| inner.loc_matches_key(raw, &key),
                            new_loc.raw(),
                        );
                        // Ordered maintenance rides the merge worker,
                        // after the hash-index change and before the old
                        // entry is invalidated (so the ordered index never
                        // holds a location GC could free first).
                        inner.ordered().upsert(guard, &key, new_loc);
                        inner.invalidate_entry(old);
                    }
                }
                None => {
                    if inner.tombstone_newer_than(&key, entry.header.seq) {
                        // A newer acknowledged delete already merged and
                        // removed the key (this put's segment lagged, e.g.
                        // written via another KN); inserting would
                        // resurrect the deleted key.
                        inner.invalidate_entry(new_loc);
                    } else {
                        // New key (or re-insert newer than any merged
                        // delete).
                        inner.forget_merged_tombstone(&key);
                        let _ = inner.index().insert(tag, new_loc.raw());
                        inner.ordered().upsert(guard, &key, new_loc);
                    }
                }
            }
        }
        LogOp::Delete => {
            // Symmetric to the Put arm's staleness check: a key written
            // through several KNs (replication, reconfiguration) merges on
            // workers with no mutual order, so this tombstone may arrive
            // after a newer acknowledged put — removing unconditionally
            // would discard that write. Skip the removal when the indexed
            // state is newer than the tombstone.
            //
            // A key whose indexed state is an indirection cell stays
            // untouched: the deleting KN already published the tombstone
            // into the cell (seq-monotonic), which is exactly what shared
            // readers observe, and the *replicated ⇔ cell-installed*
            // invariant must hold until an explicit dereplication
            // dismantles the cell. (An earlier version removed the index
            // entry and released the cell here; the key then looked
            // "replicated but cell-less", shared reads fell back to
            // per-replica cached owned reads with no cross-replica
            // invalidation, and stale values flapped into view for
            // thousands of operations — caught by the `dinomo-check`
            // history checker under replication churn.)
            if let Some(raw) = inner.index().remove(tag, |raw| {
                !PackedLoc::from_raw(raw).is_indirect()
                    && inner.loc_matches_key(raw, &key)
                    && !inner.indexed_state_newer_than(raw, entry.header.seq)
            }) {
                // Drop the ordered entry before invalidating the removed
                // entry, mirroring the Put arm's ordering.
                inner.ordered().remove(guard, &key);
                inner.invalidate_entry(PackedLoc::from_raw(raw));
            }
            // Remember the delete so an older put merging later (lagging
            // segment, possibly another KN's) cannot re-insert the key.
            inner.record_merged_tombstone(&key, entry.header.seq);
            // The tombstone itself never needs to stay around.
            inner.invalidate_entry(PackedLoc::direct(entry_addr, entry.total_len));
        }
    }
    let _ = task;
}

fn busy_wait(d: Duration) {
    let start = Instant::now();
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}
