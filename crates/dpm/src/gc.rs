//! The log-cleaning segment compactor.
//!
//! `DpmNode::run_gc` only frees a segment once *every* entry in it is
//! invalid, so under a skewed overwrite workload one long-lived key pins
//! its whole segment's bytes forever — space amplification grows with
//! write history instead of live data. This module adds the LFS/RAMCloud
//!-style cleaner that closes that gap:
//!
//! 1. **Victim selection** — sealed, fully-merged segments whose dead-byte
//!    fraction exceeds `GcConfig::dead_fraction` are scored with the
//!    cost-benefit formula `dead_bytes × age ÷ live_bytes` (age is the
//!    segment-id distance from the newest segment, a logical clock: old,
//!    mostly-dead segments clean first because their survivors have proven
//!    long-lived).
//! 2. **Pinning** — a segment any indirection cell references (live target
//!    *or* the tombstoned-over entry a cell keeps for key identity) is
//!    skipped entirely. The reference is the segment's own pin count
//!    (`SegmentState::cell_pins`, incremented by a swing *before* it
//!    publishes the reference), so the check is one atomic load per
//!    victim — no global registry, no lock. A cell installed over an
//!    entry mid-relocation loses the per-entry index CAS race below and
//!    retries against the relocated location.
//! 3. **Relocation** — each live entry's bytes are copied *verbatim*
//!    (same key, value, op and — critically — the same global sequence
//!    number, so merge-engine staleness arbitration is unaffected) into
//!    the compactor's destination segment through the ordinary
//!    append-path plumbing (`allocate_segment` / `record_append`), then
//!    the index is swung with a conditional single-word CAS
//!    ([`dinomo_pclht::Pclht::cas_value`]). A concurrent put/merge/delete
//!    that supersedes the entry makes the CAS fail; the fresh copy is then
//!    invalidated in place and the victim entry is left to whoever won.
//! 4. **Reclaim** — once every entry of the victim is invalid the segment
//!    is freed, with the pool free deferred through the epoch scheme so a
//!    reader that resolved a location just before the swing can still
//!    decode it (`DpmInner::free_segment_deferred`).
//!
//! Relocated entries never pass through the merge engine: the copy is
//! installed synchronously by the CAS and accounted merged on its
//! destination segment immediately, so destination segments are always
//! fully merged and themselves become ordinary GC victims once their
//! entries die.
//!
//! The background thread runs one pass per `GcConfig::interval_ms`, each
//! relocating at most `GcConfig::max_pass_bytes` — the byte-rate throttle
//! that keeps cleaning from competing with foreground flush bandwidth.
//! Tests drive the same pass synchronously via `DpmNode::compact_once`.
//!
//! # Reader guard contract
//!
//! The compactor frees victim segments *while readers run*. What makes
//! that safe is a two-part contract every reader must follow:
//!
//! * **Resolve, validate and read under one epoch pin.** A raw address
//!   obtained from the index (or a cached shortcut) is only meaningful
//!   relative to the [`Guard`](crate::Guard) that was live when it was
//!   resolved. Freed segment memory is returned to the pool via a
//!   deferred drop, so it cannot be reused while any guard from an
//!   earlier epoch is still pinned — a reader never observes recycled
//!   bytes.
//! * **Validate stale shortcuts, don't trust them.** The guard keeps the
//!   *bytes* alive, not the *location* current: a relocation can swing
//!   the index at any moment. [`DpmNode::value_addr_is_live_in`](crate::DpmNode::value_addr_is_live_in)
//!   (one epoch-protected binary search, no lock) is the check a reader
//!   runs before using a cached address; a `false` answer means re-look
//!   the key up, under the same guard.
//!
//! ```
//! use dinomo_dpm::{pin, DpmConfig, DpmNode, GcConfig, LogWriter};
//! use dinomo_simnet::{FabricConfig, Nic};
//! use std::sync::Arc;
//!
//! let mut config = DpmConfig::small_for_tests();
//! config.segment_bytes = 8 << 10;
//! config.gc = GcConfig { background: false, dead_fraction: 0.25, ..GcConfig::aggressive() };
//! let dpm = Arc::new(DpmNode::new(config).unwrap());
//!
//! // Skew-pinned log: every segment keeps one live key ("hot...") inside
//! // repeatedly-overwritten filler, the shape only the compactor reclaims.
//! let mut w = LogWriter::new(Arc::clone(&dpm), 0, Nic::new(FabricConfig::default()));
//! for round in 0..6u32 {
//!     w.append_put(format!("hot{round}").as_bytes(), &[0xA5; 64]);
//!     for i in 0..8u32 {
//!         w.append_put(format!("cold{i}").as_bytes(), &[round as u8; 512]);
//!     }
//!     w.flush().unwrap();
//! }
//! w.seal_current();
//! dpm.wait_until_merged(0);
//!
//! // Resolve an address under a pin; it is valid for this guard's lifetime.
//! let guard = pin();
//! let loc = dpm.local_lookup_in(&guard, b"hot0").expect("merged");
//! assert!(dpm.value_addr_is_live_in(&guard, loc.addr()));
//!
//! // Compaction relocates the hot keys and frees their old segments. The
//! // pool memory behind `loc` is *deferred*, not recycled — but the
//! // address is now stale, and the liveness check says so:
//! while dpm.compact_once().segments_compacted > 0 {}
//! assert!(!dpm.value_addr_is_live_in(&guard, loc.addr()));
//!
//! // The recovery move is a fresh lookup under the same guard: the key
//! // is still served, from its relocated home.
//! let relocated = dpm.local_lookup_in(&guard, b"hot0").expect("still indexed");
//! assert_ne!(relocated.addr(), loc.addr());
//! drop(guard); // now the old segment's bytes may actually be reused
//! ```

use crate::config::GcConfig;
use crate::entry::decode_entry;
use crate::loc::PackedLoc;
use crate::node::DpmInner;
use crate::segment::SegmentState;
use dinomo_partition::key_hash;
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Owner id under which the compactor's destination segments are
/// registered. Never a real KVS node id, so destination segments are
/// invisible to per-KN merge bookkeeping (`unmerged_segments`,
/// `wait_until_merged`) — they are born fully merged.
pub const GC_OWNER_KN: u32 = u32::MAX;

/// What one compaction pass did (returned by `DpmNode::compact_once`; the
/// background thread aggregates the same counters into `DpmStats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Victim candidates examined (above the dead-fraction threshold).
    pub victims_examined: u64,
    /// Victims fully emptied and freed by this pass.
    pub segments_compacted: u64,
    /// Candidates skipped because an indirection cell references one of
    /// their entries (live or tombstoned — the cell pin rule).
    pub segments_skipped_pinned: u64,
    /// Live entries relocated into destination segments.
    pub entries_relocated: u64,
    /// Live entries whose relocation lost to a concurrent put/merge/delete
    /// (the conditional CAS failed; the entry was left alone).
    pub entries_skipped_raced: u64,
    /// Bytes of live entries relocated.
    pub bytes_relocated: u64,
    /// `true` when the pass stopped early because the relocation byte
    /// budget (`GcConfig::max_pass_bytes`) ran out.
    pub budget_exhausted: bool,
    /// `true` when the pass was cut short by the `gc.after-relocate`
    /// crash-injection point (see [`crate::failpoint`]): the victim is
    /// left partially relocated, exactly as a mid-pass power failure
    /// would.
    pub crash_injected: bool,
}

/// Reserve `len` bytes in the compactor's destination segment, rolling
/// over (seal + allocate) when the current one is full. The destination
/// slot lives on `DpmInner` so successive passes fill one segment instead
/// of each stranding a near-empty one.
fn reserve_destination(
    inner: &Arc<DpmInner>,
    len: u64,
) -> Result<(Arc<SegmentState>, u64), dinomo_pmem::PmemError> {
    let mut slot = inner.gc_destination();
    if let Some(seg) = slot.as_ref() {
        if seg.remaining() >= len {
            let seg = Arc::clone(seg);
            let offset = seg.record_append(len, 1);
            return Ok((seg, offset));
        }
        seg.seal();
    }
    let seg = inner.allocate_segment_inner(GC_OWNER_KN)?;
    assert!(
        seg.capacity >= len,
        "entry larger than a fresh segment (writer enforces this bound)"
    );
    let offset = seg.record_append(len, 1);
    *slot = Some(Arc::clone(&seg));
    Ok((seg, offset))
}

/// End-of-pass destination cut-off: once the reused destination segment
/// is at least `GcConfig::destination_seal_fraction` full, seal it and
/// clear the slot. Sealed (and already fully merged — relocations account
/// themselves merged) it becomes an ordinary segment that victim
/// selection can reclaim once its entries die; left unsealed it would pin
/// one unreclaimable segment per DPM forever.
fn seal_filled_destination(inner: &Arc<DpmInner>, gc: &GcConfig) {
    let mut slot = inner.gc_destination();
    if let Some(seg) = slot.as_ref() {
        let threshold = (seg.capacity as f64 * gc.destination_seal_fraction) as u64;
        if seg.entries_written() > 0 && seg.written() >= threshold {
            seg.seal();
            *slot = None;
        }
    }
}

/// Run one compaction pass over the DPM (see the module docs for the
/// algorithm). Serialized against concurrent passes by
/// `DpmInner::gc_pass_lock`.
pub(crate) fn compact_pass(inner: &Arc<DpmInner>, gc: &GcConfig) -> CompactionReport {
    let _pass = inner.lock_gc_pass();
    let report = compact_pass_locked(inner, gc);
    seal_filled_destination(inner, gc);
    report
}

fn compact_pass_locked(inner: &Arc<DpmInner>, gc: &GcConfig) -> CompactionReport {
    let mut report = CompactionReport::default();
    let mut budget = gc.max_pass_bytes;

    // Victim selection: cost-benefit score over the eligible segments.
    // `next_segment_id_hint` is the logical "now" the age term measures
    // against. The destination segment is unsealed, so it can never select
    // itself.
    let now = inner.next_segment_id_hint();
    let mut victims: Vec<(f64, Arc<SegmentState>)> = inner
        .segments_snapshot()
        .into_iter()
        .filter(|s| {
            s.is_sealed()
                && s.is_fully_merged()
                && !s.is_freed()
                && s.entries_written() > 0
                && s.dead_fraction() >= gc.dead_fraction
        })
        .map(|s| {
            let age = now.saturating_sub(s.id).max(1) as f64;
            let score = s.dead_bytes() as f64 * age / (s.live_bytes() + 1) as f64;
            (score, s)
        })
        .collect();
    victims.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));

    for (_, victim) in victims.into_iter().take(gc.max_segments_per_pass) {
        report.victims_examined += 1;
        // Wholesale pinned pre-check (cheap skip for the common case —
        // the authoritative checks are per entry and at free time below).
        // `run_gc` takes the pass lock too, so no other collector can
        // free a victim while this pass scans it; the freed re-check is
        // belt and braces.
        if victim.is_freed() {
            continue;
        }
        if victim.cell_pins() > 0 {
            report.segments_skipped_pinned += 1;
            continue;
        }

        let pool = inner.pool();
        let index = inner.index();
        let written = victim.written();
        let mut offset = 0u64;
        while offset < written {
            let addr = victim.base.offset(offset);
            let Some(entry) = decode_entry(pool, addr, written - offset) else {
                break;
            };
            let entry_len = entry.total_len;
            if !entry.sealed || victim.is_offset_invalid(offset) {
                offset += entry_len;
                continue;
            }
            // Live entry. Respect the pass's relocation byte budget.
            if budget < entry_len {
                report.budget_exhausted = true;
                return report;
            }
            let old_loc = PackedLoc::direct(addr, entry_len);
            let tag = key_hash(&entry.key);
            // Cheap pre-check before paying for the copy: is this entry
            // still what the index serves? (A concurrent merge that
            // superseded it also invalidated it, possibly after our
            // `is_offset_invalid` read.)
            if index.get(tag, |raw| raw == old_loc.raw()).is_none() {
                report.entries_skipped_raced += 1;
                offset += entry_len;
                continue;
            }
            // Verbatim copy through the append-path plumbing. Preserving
            // the entry bytes preserves its sequence number: a relocation
            // must not look "newer" than a racing put that drew a later
            // seq, or merge arbitration would discard the acked write
            // (and the merge engine treats same-seq-different-address as
            // "the index already serves this record"). Copying needs no
            // lock: only collectors free segment bytes, and the pass lock
            // excludes them; if a concurrent write supersedes the entry
            // mid-copy, the CAS below fails and the copy is discarded.
            let Ok((dst, dst_offset)) = reserve_destination(inner, entry_len) else {
                // Pool exhausted: stop cleaning rather than fail loudly —
                // foreground writers will surface the allocation error.
                report.budget_exhausted = true;
                return report;
            };
            let mut bytes = vec![0u8; entry_len as usize];
            pool.read_bytes(addr, &mut bytes);
            let new_addr = dst.base.offset(dst_offset);
            pool.write_bytes(new_addr, &bytes);
            pool.persist(new_addr, entry_len);
            pool.drain();
            // The copy is installed by the CAS below, never merged:
            // account it merged now so destination segments stay fully
            // merged (and can later be selected as victims themselves).
            dst.record_merged(entry_len, 1);
            let new_loc = PackedLoc::direct(new_addr, entry_len);
            // The conditional index swing is the whole synchronization:
            // `make_indirect` pins the victim's segment and then swings the
            // index conditioned on the exact location it read, so a cell
            // install either lands *before* this CAS (this CAS fails — the
            // index now holds the indirect location) or loses its own
            // update (the index holds `new_loc`) and retries against the
            // relocated copy. No half-relocated state is observable, and
            // shared-key writes never stall behind the copy loop.
            let swung = index.cas_value(tag, old_loc.raw(), new_loc.raw());
            if swung {
                victim.record_invalidated(offset, entry_len);
                budget -= entry_len;
                report.entries_relocated += 1;
                report.bytes_relocated += entry_len;
                // Swing the ordered index onto the copy, and make caches
                // holding shortcuts into the victim drop them, before the
                // segment is freed below (the observer takes KN shard
                // locks — deliberately outside the registry critical
                // section).
                inner.notify_relocated(&entry.key, old_loc, new_loc);
                // Simulated fail-stop mid-pass: one entry has been copied
                // and swung, the rest of the victim has not. Stop here and
                // leave the pass half done — the crash/recover sequence
                // must cope with exactly this state.
                if inner.failpoints().hit("gc.after-relocate") {
                    report.crash_injected = true;
                    return report;
                }
            } else {
                // Lost to a concurrent put/merge/delete (or a cell was
                // installed over the entry): the fresh copy is
                // unreachable garbage; the victim entry now belongs to
                // whoever won.
                dst.record_invalidated(dst_offset, entry_len);
                report.entries_skipped_raced += 1;
            }
            offset += entry_len;
        }

        // Free under a fresh pin read: a cell may have been installed
        // over (or tombstoned onto) one of the victim's entries while the
        // scan ran entry by entry. A swing pins before it publishes, so a
        // zero count here means any concurrent install will fail its index
        // CAS (the entry is invalid/relocated) and withdraw its pin.
        if victim.cell_pins() == 0
            && victim.is_reclaimable()
            && inner.free_segment_deferred(&victim)
        {
            report.segments_compacted += 1;
            inner.record_segment_compacted();
        }
    }
    report
}

/// Handle to the per-DPM background compactor thread.
#[derive(Debug)]
pub(crate) struct Compactor {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<JoinHandle<()>>,
}

impl Compactor {
    /// Spawn the background thread: one throttled pass per
    /// `GcConfig::interval_ms`.
    pub(crate) fn start(inner: Arc<DpmInner>) -> Self {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("dpm-gc".to_string())
            .spawn(move || {
                let gc = inner.config().gc;
                let interval = Duration::from_millis(gc.interval_ms.max(1));
                loop {
                    {
                        let mut stopped = thread_stop.0.lock();
                        if !*stopped {
                            thread_stop.1.wait_for(&mut stopped, interval);
                        }
                        if *stopped {
                            return;
                        }
                    }
                    compact_pass(&inner, &gc);
                }
            })
            .expect("failed to spawn the DPM compactor thread");
        Compactor {
            stop,
            handle: Some(handle),
        }
    }

    /// Stop the thread and wait for it to exit (idempotent).
    pub(crate) fn shutdown(&mut self) {
        *self.stop.0.lock() = true;
        self.stop.1.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Compactor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{DpmConfig, GcConfig};
    use crate::node::DpmNode;
    use crate::writer::LogWriter;
    use dinomo_simnet::{FabricConfig, Nic};
    use std::sync::Arc;

    fn gc_config() -> DpmConfig {
        let mut config = DpmConfig::small_for_tests();
        config.segment_bytes = 8 << 10;
        config.gc = GcConfig {
            background: false,
            dead_fraction: 0.25,
            ..GcConfig::aggressive()
        };
        config
    }

    fn nic() -> Nic {
        Nic::new(FabricConfig::default())
    }

    /// Interleave one never-overwritten ("hot live") key into each
    /// segment's worth of repeatedly-overwritten filler, so every sealed
    /// segment keeps exactly a few live bytes — the skew-pinned shape
    /// `run_gc` can never reclaim.
    fn write_skew_pinned(dpm: &Arc<DpmNode>, rounds: u32) -> Vec<Vec<u8>> {
        let mut w = LogWriter::new(Arc::clone(dpm), 0, nic());
        let mut pinned_keys = Vec::new();
        for round in 0..rounds {
            let hot = format!("hot{round:04}").into_bytes();
            w.append_put(&hot, &[0xA5; 64]);
            pinned_keys.push(hot);
            // Enough filler to fill (at least) one 8 KiB segment per round;
            // the same filler keys every round, so all but the last round's
            // copies are dead.
            for i in 0..8u32 {
                w.append_put(format!("cold{i}").as_bytes(), &[round as u8; 512]);
            }
            w.flush().unwrap();
        }
        w.seal_current();
        dpm.wait_until_merged(0);
        pinned_keys
    }

    #[test]
    fn compactor_reclaims_segments_run_gc_cannot() {
        let dpm = Arc::new(DpmNode::new(gc_config()).unwrap());
        let pinned_keys = write_skew_pinned(&dpm, 30);

        // Every sealed segment holds one live hot key: the all-dead policy
        // reclaims nothing.
        let before = dpm.stats();
        assert!(before.segments_allocated >= 10, "{before:?}");
        assert_eq!(
            dpm.run_gc(),
            0,
            "run_gc must be unable to reclaim skew-pinned segments"
        );

        // The compactor relocates the survivors and frees the victims.
        let mut compacted = 0;
        for _ in 0..8 {
            compacted += dpm.compact_once().segments_compacted;
        }
        assert!(compacted > 0, "compactor freed nothing: {:?}", dpm.stats());
        let after = dpm.stats();
        assert!(
            after.segments_allocated < before.segments_allocated / 2,
            "expected most segments reclaimed: {before:?} -> {after:?}"
        );
        assert!(after.entries_relocated > 0);
        assert!(after.bytes_relocated > 0);
        // Space amplification is now bounded: the live data (30 hot keys +
        // 8 filler keys) fits in a handful of segments.
        assert!(
            after.segment_bytes_allocated <= 6 * (8 << 10),
            "footprint must be proportional to live data: {after:?}"
        );

        // Every read still returns the live value, through the relocated
        // entries.
        for key in &pinned_keys {
            assert_eq!(
                dpm.local_read(key),
                Some(vec![0xA5; 64]),
                "{}",
                String::from_utf8_lossy(key)
            );
        }
        for i in 0..8u32 {
            assert_eq!(
                dpm.local_read(format!("cold{i}").as_bytes()),
                Some(vec![29u8; 512])
            );
        }
    }

    #[test]
    fn mid_compaction_crash_recovers_with_partial_relocation() {
        // Fail-stop right after the compactor copied and swung one live
        // entry, leaving the victim half-relocated (`gc.after-relocate`).
        // The relocated copy was persisted before the swing, so after the
        // crash both copies are on media with the same seq; recovery's
        // re-merge must serve every key correctly (same-seq arbitration
        // keeps the indexed copy), the rebuilt ordered index must pass
        // the structural walk, and a later pass must finish the job.
        let mut config = gc_config();
        config.pool.track_persistence = true;
        let dpm = Arc::new(DpmNode::new(config).unwrap());
        let pinned_keys = write_skew_pinned(&dpm, 12);

        dpm.failpoints().arm("gc.after-relocate", 1);
        let report = dpm.compact_once();
        dpm.failpoints().disarm("gc.after-relocate");
        assert!(
            report.crash_injected,
            "no victim had a live entry to relocate: {report:?}"
        );
        assert_eq!(report.entries_relocated, 1);
        assert_eq!(
            report.segments_compacted, 0,
            "the pass must have aborted before freeing the victim"
        );

        dpm.simulate_crash();
        let rec = dpm.recover();
        assert_eq!(rec.torn_entries, 0);
        dpm.rebuild_ordered();
        dpm.check_ordered().unwrap();

        for key in &pinned_keys {
            assert_eq!(
                dpm.local_read(key),
                Some(vec![0xA5; 64]),
                "{} lost across mid-compaction crash",
                String::from_utf8_lossy(key)
            );
        }
        for i in 0..8u32 {
            assert_eq!(
                dpm.local_read(format!("cold{i}").as_bytes()),
                Some(vec![11u8; 512])
            );
        }

        // The interrupted victim is still ordinary state: compaction can
        // resume and reclaim it after recovery.
        let mut compacted = 0;
        for _ in 0..8 {
            compacted += dpm.compact_once().segments_compacted;
        }
        assert!(
            compacted > 0,
            "compaction must finish after recovery: {:?}",
            dpm.stats()
        );
        for key in &pinned_keys {
            assert_eq!(dpm.local_read(key), Some(vec![0xA5; 64]));
        }
        dpm.check_ordered().unwrap();
    }

    #[test]
    fn relocated_entries_keep_their_sequence_numbers() {
        // A relocation must be invisible to merge arbitration: the copy
        // carries the original seq, so a *later* overwrite (newer seq)
        // still wins against it after compaction.
        let dpm = Arc::new(DpmNode::new(gc_config()).unwrap());
        write_skew_pinned(&dpm, 10);
        while dpm.compact_once().segments_compacted > 0 {}
        let mut w = LogWriter::new(Arc::clone(&dpm), 1, nic());
        w.append_put(b"hot0003", b"newer");
        w.flush().unwrap();
        w.seal_current();
        dpm.wait_until_merged(1);
        assert_eq!(dpm.local_read(b"hot0003"), Some(b"newer".to_vec()));
    }

    #[test]
    fn cell_referenced_entries_are_never_relocated_or_freed() {
        // The ROADMAP PR 4 hazard, both halves. A live indirection cell
        // pins its target's segment against relocation; a *tombstoned*
        // cell keeps the dead entry's address for key identity, so even a
        // fully-invalidated segment must survive until `remove_indirect`
        // dismantles the cell.
        let dpm = Arc::new(DpmNode::new(gc_config()).unwrap());
        let nic = nic();
        let mut w = LogWriter::new(Arc::clone(&dpm), 0, nic.clone());
        // "shared" plus filler in one segment; the filler is overwritten
        // from a later segment, so the first segment is mostly dead with
        // one live (and soon pinned) entry — a prime compaction victim.
        w.append_put(b"shared", &[7u8; 64]);
        for i in 0..8u32 {
            w.append_put(format!("fill{i}").as_bytes(), &[0u8; 512]);
        }
        w.flush().unwrap();
        for i in 0..8u32 {
            w.append_put(format!("fill{i}").as_bytes(), &[1u8; 512]);
        }
        w.flush().unwrap();
        w.seal_current();
        dpm.wait_until_merged(0);
        let cell = dpm.make_indirect(b"shared").unwrap().unwrap();
        let segments_before = dpm.stats().segments_allocated;

        // Live cell: the victim holds a live, pinned entry — the
        // compactor must skip the segment wholesale.
        let report = dpm.compact_once();
        assert!(report.segments_skipped_pinned >= 1, "{report:?}");
        assert_eq!(report.segments_compacted, 0, "{report:?}");
        assert_eq!(dpm.stats().segments_allocated, segments_before);
        assert_eq!(dpm.local_read(b"shared"), Some(vec![7u8; 64]));

        // Tombstone the cell (a shared-path delete): the entry is now
        // invalid — the segment is fully dead by the counters — but the
        // cell still references the entry's address for key identity.
        let del_seq = dpm.next_seq();
        dpm.publish_shared_delete(&nic, cell, del_seq);
        assert_eq!(dpm.local_read(b"shared"), None);
        assert_eq!(
            dpm.run_gc(),
            0,
            "run_gc must not free a segment a tombstoned cell references"
        );
        let report = dpm.compact_once();
        assert_eq!(report.segments_compacted, 0, "{report:?}");
        assert!(report.segments_skipped_pinned >= 1, "{report:?}");
        assert_eq!(dpm.stats().segments_allocated, segments_before);

        // Dismantling the cell unpins the entry; the segment reclaims.
        assert!(dpm.remove_indirect(b"shared"));
        assert!(dpm.run_gc() >= 1);
        assert!(dpm.stats().segments_allocated < segments_before);
        assert_eq!(dpm.local_read(b"shared"), None);
    }

    #[test]
    fn lagging_shared_publish_neither_loses_its_entry_nor_leaks_it() {
        // A shared-path put flushes, its record merges, and only then does
        // the cell CAS run (the KN drops its shard lock between the two).
        // The merge must keep the newer-than-published entry valid — an
        // invalidated entry's segment could be freed before the swing,
        // pointing the cell at dead bytes — and an ultimately *abandoned*
        // publish (lost to newer state) must invalidate the entry so its
        // segment can still reclaim.
        let dpm = Arc::new(DpmNode::new(gc_config()).unwrap());
        let nic = nic();
        let mut w = LogWriter::new(Arc::clone(&dpm), 0, nic.clone());
        w.append_put(b"shared", b"v0");
        w.flush().unwrap();
        dpm.wait_until_merged(0);
        let cell = dpm.make_indirect(b"shared").unwrap().unwrap();

        // Flush + merge v1 with its publish still pending.
        let seq1 = w.append_put(b"shared", b"v1");
        let loc1 = w.flush().unwrap()[0].entry_loc;
        w.seal_current();
        dpm.wait_until_merged(0);
        // GC runs in the gap: the unpublished entry must survive both
        // collectors (it is live by the seq-vs-published rule).
        dpm.run_gc();
        dpm.compact_once();
        assert_eq!(dpm.local_read(b"shared"), Some(b"v0".to_vec()));
        assert!(
            dpm.publish_shared_put(&nic, cell, loc1, seq1),
            "delayed publish must still succeed"
        );
        assert_eq!(
            dpm.local_read(b"shared"),
            Some(b"v1".to_vec()),
            "published bytes must be intact (segment not reclaimed)"
        );

        // Abandoned publish: v2 (older seq) merges unpublished, v3 (newer)
        // publishes first; v2's late swing must fail *and* invalidate v2.
        let seq2 = w.append_put(b"shared", b"v2");
        let loc2 = w.flush().unwrap()[0].entry_loc;
        let seq3 = w.append_put(b"shared", b"v3");
        let loc3 = w.flush().unwrap()[0].entry_loc;
        w.seal_current();
        dpm.wait_until_merged(0);
        assert!(dpm.publish_shared_put(&nic, cell, loc3, seq3));
        let live_before = dpm.stats().live_bytes;
        assert!(
            !dpm.publish_shared_put(&nic, cell, loc2, seq2),
            "stale publish must be refused"
        );
        assert!(
            dpm.stats().live_bytes < live_before,
            "abandoned entry must be invalidated so its segment can reclaim"
        );
        assert_eq!(dpm.local_read(b"shared"), Some(b"v3".to_vec()));
    }

    #[test]
    fn background_compactor_reclaims_while_writers_run() {
        let mut config = gc_config();
        config.gc.background = true;
        let dpm = Arc::new(DpmNode::new(config).unwrap());
        let keys = write_skew_pinned(&dpm, 20);
        // The background thread (5 ms interval) must reclaim without any
        // synchronous hook being called.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while dpm.stats().segments_compacted == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "background compactor made no progress: {:?}",
                dpm.stats()
            );
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        for key in &keys {
            assert_eq!(dpm.local_read(key), Some(vec![0xA5; 64]));
        }
        dpm.shutdown();
    }

    #[test]
    fn recovery_after_partial_compaction_keeps_index_and_accounting_consistent() {
        // A relocation duplicates an entry's seq at two addresses.
        // recover()'s re-merge must treat the duplicate as already merged
        // (same seq ⇒ the index already serves this record) — the old
        // strict `>` staleness guard ping-ponged the index between the
        // copies and left the *served* copy recorded invalid in its
        // segment, so a later GC could free the segment the index pointed
        // into.
        let mut config = gc_config();
        // Budget for exactly one 104-byte hot entry: the pass must stop
        // *mid-victim*, so a victim original and its relocated duplicate
        // coexist when recovery re-scans.
        config.gc.max_pass_bytes = 120;
        let dpm = Arc::new(DpmNode::new(config).unwrap());
        let mut w = LogWriter::new(Arc::clone(&dpm), 0, nic());
        // One segment holding two live hot entries plus filler that a later
        // segment's overwrites kill — a victim the 120-byte budget can only
        // half-compact.
        w.append_put(b"hotaaaa", &[0xA5; 64]);
        w.append_put(b"hotbbbb", &[0xA5; 64]);
        for i in 0..8u32 {
            w.append_put(format!("cold{i}").as_bytes(), &[0u8; 512]);
        }
        w.flush().unwrap();
        for i in 0..8u32 {
            w.append_put(format!("cold{i}").as_bytes(), &[1u8; 512]);
        }
        w.flush().unwrap();
        w.seal_current();
        dpm.wait_until_merged(0);
        let report = dpm.compact_once();
        assert!(
            report.budget_exhausted && report.entries_relocated == 1,
            "the pass must stop mid-victim: {report:?}"
        );
        assert_eq!(report.segments_compacted, 0, "{report:?}");

        let live_before = dpm.stats().live_bytes;
        let recovered = dpm.recover();
        assert!(recovered.entries_recovered > 0);
        assert_eq!(
            dpm.stats().live_bytes,
            live_before,
            "recovery must not invalidate entries the index serves"
        );
        assert_eq!(dpm.local_read(b"hotaaaa"), Some(vec![0xA5; 64]));
        assert_eq!(dpm.local_read(b"hotbbbb"), Some(vec![0xA5; 64]));
        // Full compaction + GC afterwards keeps everything readable.
        while dpm.compact_once().segments_compacted > 0 {}
        dpm.run_gc();
        assert_eq!(dpm.local_read(b"hotaaaa"), Some(vec![0xA5; 64]));
        assert_eq!(dpm.local_read(b"hotbbbb"), Some(vec![0xA5; 64]));
        for i in 0..8u32 {
            assert_eq!(
                dpm.local_read(format!("cold{i}").as_bytes()),
                Some(vec![1u8; 512])
            );
        }
    }

    #[test]
    fn byte_budget_throttles_a_pass() {
        let mut config = gc_config();
        // Budget below one entry: the pass must bail before relocating.
        config.gc.max_pass_bytes = 8;
        let dpm = Arc::new(DpmNode::new(config).unwrap());
        write_skew_pinned(&dpm, 6);
        let report = dpm.compact_once();
        assert!(report.budget_exhausted, "{report:?}");
        assert_eq!(report.entries_relocated, 0);
        assert_eq!(report.segments_compacted, 0);
    }

    #[test]
    fn filled_destination_seals_and_becomes_reclaimable() {
        // The PR 5 standing note: the compactor's destination segment used
        // to stay unsealed forever, so once every entry relocated into it
        // died it still could not be selected as a victim — one
        // unreclaimable segment per DPM. With the end-of-pass cut-off the
        // destination seals once ≥ `destination_seal_fraction` full and is
        // reclaimed like any other segment when its entries die.
        let mut config = gc_config();
        config.gc.destination_seal_fraction = 0.25;
        let dpm = Arc::new(DpmNode::new(config).unwrap());
        let pinned_keys = write_skew_pinned(&dpm, 20);
        while dpm.compact_once().segments_compacted > 0 {}

        // Kill every relocated entry: overwrite the hot keys the compactor
        // moved into its destination segments.
        let mut w = LogWriter::new(Arc::clone(&dpm), 2, nic());
        for key in &pinned_keys {
            w.append_put(key, &[0x5A; 64]);
        }
        for i in 0..8u32 {
            w.append_put(format!("cold{i}").as_bytes(), &[0x5A; 512]);
        }
        w.flush().unwrap();
        w.seal_current();
        dpm.wait_until_merged(2);

        let mut freed = dpm.run_gc() as u64;
        for _ in 0..8 {
            freed += dpm.compact_once().segments_compacted;
        }
        assert!(
            freed > 0,
            "sealed ex-destination segments must be reclaimable: {:?}",
            dpm.stats()
        );
        // All live data (20 hot keys × 64 B + 8 cold keys × 512 B ≈ 6 KiB)
        // now fits in a handful of 8 KiB segments — nothing stays pinned by
        // an eternally-unsealed destination.
        let after = dpm.stats();
        assert!(
            after.segment_bytes_allocated <= 5 * (8 << 10),
            "footprint must shrink to live data: {after:?}"
        );
        for key in &pinned_keys {
            assert_eq!(dpm.local_read(key), Some(vec![0x5A; 64]));
        }
    }

    #[test]
    fn ordered_invariants_hold_after_every_merge_and_gc_pass() {
        // The ordered index must stay consistent with the hash index and
        // the segment registry through merges, deletes, relocations and
        // frees — checked after every round's merge and after every
        // foreground compaction pass.
        let dpm = Arc::new(DpmNode::new(gc_config()).unwrap());
        let mut w = LogWriter::new(Arc::clone(&dpm), 0, nic());
        let mut live_hot: Vec<String> = Vec::new();
        for round in 0..12u32 {
            let hot = format!("hot{round:04}");
            w.append_put(hot.as_bytes(), &[0xA5; 64]);
            live_hot.push(hot);
            for i in 0..8u32 {
                w.append_put(format!("cold{i}").as_bytes(), &[round as u8; 512]);
            }
            if round % 3 == 2 {
                // Delete the previous round's hot key so the checker also
                // exercises merge-time ordered removals.
                let victim = live_hot.remove(live_hot.len() - 2);
                w.append_delete(victim.as_bytes());
            }
            w.flush().unwrap();
            dpm.wait_until_merged(0);
            dpm.check_ordered()
                .unwrap_or_else(|e| panic!("after merge round {round}: {e}"));
            dpm.compact_once();
            dpm.check_ordered()
                .unwrap_or_else(|e| panic!("after GC pass {round}: {e}"));
        }
        w.seal_current();
        dpm.wait_until_merged(0);
        while dpm.compact_once().segments_compacted > 0 {}
        let stats = dpm
            .check_ordered()
            .unwrap_or_else(|e| panic!("after final compaction: {e}"));
        // 8 cold keys + the surviving hot keys.
        assert_eq!(stats.keys, 8 + live_hot.len() as u64);

        // An ordered scan sees exactly the surviving hot keys, in order.
        let guard = dinomo_pclht::pin();
        let scanned: Vec<Vec<u8>> = dpm
            .ordered()
            .snapshot(&guard)
            .range_from(b"hot")
            .map(|(k, _)| k)
            .collect();
        let expected: Vec<Vec<u8>> = live_hot.iter().map(|k| k.clone().into_bytes()).collect();
        assert_eq!(scanned, expected);
    }
}
