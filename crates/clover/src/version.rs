//! Version-chain encoding in DPM.
//!
//! Each write creates a new immutable version:
//!
//! ```text
//! offset  0: u64 next      (address of the *newer* version, 0 = latest)
//! offset  8: u32 key_len
//! offset 12: u32 val_len   (u32::MAX encodes a delete tombstone)
//! offset 16: key bytes
//! offset 16 + key_len: value bytes
//! ```
//!
//! Writers append a version and link it with a one-sided CAS on the previous
//! tail's `next` word; readers holding a stale pointer follow `next` links
//! until they reach the latest version (each hop is one round trip).

use dinomo_pmem::{PmAddr, PmemError, PmemPool};

/// Sentinel `val_len` marking a tombstone.
pub const TOMBSTONE: u32 = u32::MAX;
const HEADER: u64 = 16;

/// Total bytes a version occupies.
pub fn version_size(key_len: usize, val_len: usize) -> u64 {
    (HEADER + key_len as u64 + val_len as u64).next_multiple_of(8)
}

/// Write a new (unlinked) version and return its address.
pub fn write_version(
    pool: &PmemPool,
    key: &[u8],
    value: Option<&[u8]>,
    at: PmAddr,
) -> Result<(), PmemError> {
    let val_len = match value {
        Some(v) => v.len() as u32,
        None => TOMBSTONE,
    };
    let mut buf =
        Vec::with_capacity(version_size(key.len(), value.map_or(0, <[u8]>::len)) as usize);
    buf.extend_from_slice(&0u64.to_le_bytes());
    buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
    buf.extend_from_slice(&val_len.to_le_bytes());
    buf.extend_from_slice(key);
    if let Some(v) = value {
        buf.extend_from_slice(v);
    }
    pool.write_bytes(at, &buf);
    pool.persist(at, buf.len() as u64);
    pool.drain();
    Ok(())
}

/// A decoded version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Version {
    /// Address of the newer version (null = this is the latest).
    pub next: PmAddr,
    /// The key stored in this version.
    pub key: Vec<u8>,
    /// The value (`None` for tombstones).
    pub value: Option<Vec<u8>>,
}

/// Decode the version stored at `addr`.
pub fn read_version(pool: &PmemPool, addr: PmAddr) -> Version {
    let next = PmAddr(pool.read_u64(addr));
    let mut meta = [0u8; 8];
    pool.read_bytes(addr.offset(8), &mut meta);
    let key_len = u32::from_le_bytes(meta[0..4].try_into().unwrap()) as usize;
    let val_len = u32::from_le_bytes(meta[4..8].try_into().unwrap());
    let mut key = vec![0u8; key_len];
    pool.read_bytes(addr.offset(HEADER), &mut key);
    let value = if val_len == TOMBSTONE {
        None
    } else {
        let mut v = vec![0u8; val_len as usize];
        pool.read_bytes(addr.offset(HEADER + key_len as u64), &mut v);
        Some(v)
    };
    Version { next, key, value }
}

/// Link `new_version` after the version at `tail` (CAS on its `next` word).
/// Returns `Err(actual_next)` if `tail` already has a successor.
pub fn link_version(pool: &PmemPool, tail: PmAddr, new_version: PmAddr) -> Result<(), PmAddr> {
    match pool.cas_u64(tail, 0, new_version.0) {
        Ok(_) => {
            pool.persist(tail, 8);
            Ok(())
        }
        Err(actual) => Err(PmAddr(actual)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinomo_pmem::PmemConfig;

    #[test]
    fn version_round_trip_and_chaining() {
        let pool = PmemPool::new(PmemConfig::small_for_tests());
        let a = pool.alloc(version_size(3, 5)).unwrap();
        let b = pool.alloc(version_size(3, 5)).unwrap();
        write_version(&pool, b"key", Some(b"val-1"), a).unwrap();
        write_version(&pool, b"key", Some(b"val-2"), b).unwrap();
        assert_eq!(read_version(&pool, a).value, Some(b"val-1".to_vec()));
        // Link b after a.
        link_version(&pool, a, b).unwrap();
        let va = read_version(&pool, a);
        assert_eq!(va.next, b);
        // A second link attempt on the same tail fails and reports the winner.
        let c = pool.alloc(version_size(3, 5)).unwrap();
        write_version(&pool, b"key", Some(b"val-3"), c).unwrap();
        assert_eq!(link_version(&pool, a, c), Err(b));
        // Linking after the real tail succeeds.
        link_version(&pool, b, c).unwrap();
        let latest = read_version(&pool, c);
        assert!(latest.next.is_null());
        assert_eq!(latest.value, Some(b"val-3".to_vec()));
    }

    #[test]
    fn tombstones_have_no_value() {
        let pool = PmemPool::new(PmemConfig::small_for_tests());
        let a = pool.alloc(version_size(4, 0)).unwrap();
        write_version(&pool, b"gone", None, a).unwrap();
        let v = read_version(&pool, a);
        assert_eq!(v.key, b"gone");
        assert_eq!(v.value, None);
    }
}
