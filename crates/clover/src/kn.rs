//! A Clover KVS node: shared-everything access, shortcut-only cache, version
//! chain walks on stale pointers.

use crate::config::CloverConfig;
use crate::metadata::MetadataServer;
use crate::version::{link_version, read_version, version_size, write_version};
use dinomo_cache::{build_cache, CacheKind, CacheLookup, CacheStats, KnCache, ValueLoc};
use dinomo_core::{KnStats, KvsError, Result};
use dinomo_pmem::{PmAddr, PmemPool};
use dinomo_simnet::Nic;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

struct Shard {
    cache: Box<dyn KnCache>,
    /// Remaining writes covered by the current space-allocation lease.
    lease_remaining: usize,
}

/// A Clover KVS node.
pub struct CloverKn {
    id: u32,
    nic: Nic,
    pool: Arc<PmemPool>,
    metadata: Arc<MetadataServer>,
    shards: Vec<Mutex<Shard>>,
    lease_ops: usize,
    failed: AtomicBool,
    ops: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
    busy_ns: AtomicU64,
    chain_hops: AtomicU64,
}

impl std::fmt::Debug for CloverKn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CloverKn").field("id", &self.id).finish()
    }
}

impl CloverKn {
    /// Build a node.
    pub fn new(
        id: u32,
        config: &CloverConfig,
        pool: Arc<PmemPool>,
        metadata: Arc<MetadataServer>,
    ) -> Self {
        let nic = Nic::new(config.fabric);
        let per_shard = config.cache_bytes_per_kn / config.threads_per_kn.max(1);
        let shards = (0..config.threads_per_kn.max(1))
            .map(|_| {
                Mutex::new(Shard {
                    cache: build_cache(CacheKind::ShortcutOnly, per_shard),
                    lease_remaining: 0,
                })
            })
            .collect();
        CloverKn {
            id,
            nic,
            pool,
            metadata,
            shards,
            lease_ops: config.allocation_lease_ops.max(1),
            failed: AtomicBool::new(false),
            ops: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
            chain_hops: AtomicU64::new(0),
        }
    }

    /// Node id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Simulate a fail-stop crash (drops cached state, stops serving).
    pub fn fail(&self) {
        self.failed.store(true, Ordering::Release);
        for s in &self.shards {
            s.lock().cache.clear();
        }
    }

    /// `true` once failed.
    pub fn is_failed(&self) -> bool {
        self.failed.load(Ordering::Acquire)
    }

    fn check_available(&self) -> Result<()> {
        if self.is_failed() {
            Err(KvsError::NodeFailed)
        } else {
            Ok(())
        }
    }

    fn shard_for(&self, key: &[u8]) -> &Mutex<Shard> {
        let h = dinomo_partition::key_hash(key) as usize;
        &self.shards[h % self.shards.len()]
    }

    /// Walk a version chain to its tail, counting one RT (sized by the bytes
    /// actually transferred) per hop.
    fn walk_to_tail(&self, mut addr: PmAddr) -> (PmAddr, crate::version::Version) {
        loop {
            let v = read_version(&self.pool, addr);
            let transferred = 16 + v.key.len() + v.value.as_ref().map_or(0, Vec::len);
            self.nic.one_sided_read(transferred);
            if v.next.is_null() {
                return (addr, v);
            }
            self.chain_hops.fetch_add(1, Ordering::Relaxed);
            addr = v.next;
        }
    }

    /// `lookup(key)`. Any node can serve any key (shared everything).
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.check_available()?;
        let start = Instant::now();
        let mut shard = self.shard_for(key).lock();
        let start_addr = match shard.cache.lookup(key) {
            CacheLookup::Shortcut(loc) => Some(PmAddr(loc.addr)),
            CacheLookup::Value(_) => unreachable!("clover caches are shortcut-only"),
            CacheLookup::Miss => self.metadata.lookup(&self.nic, key),
        };
        let result = match start_addr {
            None => None,
            Some(addr) => {
                let (tail_addr, tail) = self.walk_to_tail(addr);
                if tail.key != key {
                    // Hash-sharded cache collision with a deleted key; treat
                    // as missing.
                    None
                } else {
                    shard.cache.admit_shortcut(
                        key,
                        ValueLoc {
                            addr: tail_addr.0,
                            len: 256,
                        },
                    );
                    tail.value
                }
            }
        };
        drop(shard);
        self.ops.fetch_add(1, Ordering::Relaxed);
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.busy_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        Ok(result)
    }

    fn write_new_version(&self, key: &[u8], value: Option<&[u8]>) -> Result<PmAddr> {
        let size = version_size(key.len(), value.map_or(0, <[u8]>::len));
        let addr = self.pool.alloc(size).map_err(KvsError::from)?;
        write_version(&self.pool, key, value, addr).map_err(KvsError::from)?;
        // The version itself is written with one one-sided RDMA write.
        self.nic.one_sided_write(size as usize);
        Ok(addr)
    }

    fn put_internal(&self, key: &[u8], value: Option<&[u8]>) -> Result<()> {
        let start = Instant::now();
        let mut shard = self.shard_for(key).lock();
        // Space allocation lease: every `lease_ops` writes cost one RPC.
        if shard.lease_remaining == 0 {
            self.metadata.allocation_lease(&self.nic);
            shard.lease_remaining = self.lease_ops;
        }
        shard.lease_remaining -= 1;
        let new_version = self.write_new_version(key, value)?;

        // Find the current tail: start from the cached shortcut if present,
        // otherwise ask the metadata server.
        let head = match shard.cache.lookup(key) {
            CacheLookup::Shortcut(loc) => Some(PmAddr(loc.addr)),
            _ => self.metadata.lookup(&self.nic, key),
        };
        match head {
            None => {
                // Brand-new key: register it with the metadata server.
                if !self.metadata.register(&self.nic, key, new_version) {
                    // Lost the race: someone registered it first; link onto
                    // their chain instead.
                    if let Some(head) = self.metadata.lookup(&self.nic, key) {
                        self.link_at_tail(head, new_version);
                    }
                }
            }
            Some(head) => {
                self.link_at_tail(head, new_version);
            }
        }
        shard.cache.admit_shortcut(
            key,
            ValueLoc {
                addr: new_version.0,
                len: 256,
            },
        );
        drop(shard);
        self.ops.fetch_add(1, Ordering::Relaxed);
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.busy_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        Ok(())
    }

    fn link_at_tail(&self, start: PmAddr, new_version: PmAddr) {
        let mut tail = start;
        loop {
            let (tail_addr, _) = self.walk_to_tail(tail);
            self.nic.one_sided_cas();
            match link_version(&self.pool, tail_addr, new_version) {
                Ok(()) => return,
                Err(actual_next) => {
                    // Someone else appended concurrently; continue from them.
                    tail = actual_next;
                }
            }
        }
    }

    /// `insert(key, value)` / `update(key, value)`.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.check_available()?;
        self.put_internal(key, Some(value))
    }

    /// `delete(key)` (appends a tombstone version and unregisters the key).
    pub fn delete(&self, key: &[u8]) -> Result<()> {
        self.check_available()?;
        self.put_internal(key, None)?;
        self.metadata.remove(&self.nic, key);
        let mut shard = self.shard_for(key).lock();
        shard.cache.invalidate(key);
        Ok(())
    }

    /// Total version-chain hops performed by this node (a direct measure of
    /// the consistency overhead of sharing).
    pub fn chain_hops(&self) -> u64 {
        self.chain_hops.load(Ordering::Relaxed)
    }

    /// Statistics in the same shape as Dinomo's nodes, so the harness can
    /// tabulate both systems side by side.
    pub fn stats(&self) -> KnStats {
        let mut cache = CacheStats::default();
        for s in &self.shards {
            let cs = s.lock().cache.stats();
            cache.shortcut_hits += cs.shortcut_hits;
            cache.value_hits += cs.value_hits;
            cache.misses += cs.misses;
            cache.evictions += cs.evictions;
            cache.bytes_used += cs.bytes_used;
            cache.capacity_bytes += cs.capacity_bytes;
            cache.shortcut_entries += cs.shortcut_entries;
        }
        KnStats {
            id: self.id,
            ops: self.ops.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            rejected: 0,
            // Clover has no batched executor; these stay zero.
            sub_batches: 0,
            busy_rejections: 0,
            cache,
            nic: self.nic.snapshot(),
            busy_ns: self.busy_ns.load(Ordering::Relaxed),
        }
    }
}
