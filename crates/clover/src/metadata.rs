//! Clover's metadata server.
//!
//! Inserts of new keys, cache misses and space allocation all go through this
//! server (two-sided RPCs).  It keeps the key → chain-head mapping in its own
//! DRAM, runs with a small fixed number of worker threads, and is the
//! component whose CPU saturates first as KVS nodes are added — the cause of
//! Clover's flat scaling curve in Figure 5.

use dinomo_pmem::PmAddr;
use dinomo_simnet::Nic;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// The metadata server.
#[derive(Debug)]
pub struct MetadataServer {
    /// Server-side NIC (RPC responses are accounted here).
    nic: Nic,
    index: Mutex<HashMap<Vec<u8>, PmAddr>>,
    rpcs: AtomicU64,
    service_ns: u64,
    threads: usize,
    gc_runs: AtomicU64,
}

impl MetadataServer {
    /// Create a metadata server with `threads` workers and the given modeled
    /// per-RPC service time.
    pub fn new(nic: Nic, threads: usize, service_ns: u64) -> Self {
        MetadataServer {
            nic,
            index: Mutex::new(HashMap::new()),
            rpcs: AtomicU64::new(0),
            service_ns,
            threads: threads.max(1),
            gc_runs: AtomicU64::new(0),
        }
    }

    fn account_rpc(&self, client_nic: &Nic) {
        self.rpcs.fetch_add(1, Ordering::Relaxed);
        client_nic.rpc(64, 64);
        // The server spends CPU on the request; model it as extra time on the
        // server's NIC budget so the cost model can account for saturation.
        self.nic.account_extra_ns(self.service_ns);
    }

    /// Total RPCs served.
    pub fn rpcs_served(&self) -> u64 {
        self.rpcs.load(Ordering::Relaxed)
    }

    /// Modeled capacity in RPCs/second.
    pub fn capacity_rpcs_per_sec(&self) -> f64 {
        if self.service_ns == 0 {
            f64::INFINITY
        } else {
            self.threads as f64 * 1e9 / self.service_ns as f64
        }
    }

    /// Number of keys tracked.
    pub fn len(&self) -> usize {
        self.index.lock().len()
    }

    /// `true` if no keys are tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// RPC: look up the chain head for `key`.
    pub fn lookup(&self, client_nic: &Nic, key: &[u8]) -> Option<PmAddr> {
        self.account_rpc(client_nic);
        self.index.lock().get(key).copied()
    }

    /// RPC: register a brand-new key with its first version.
    /// Returns `false` if the key already existed (the caller then links onto
    /// the existing chain instead).
    pub fn register(&self, client_nic: &Nic, key: &[u8], head: PmAddr) -> bool {
        self.account_rpc(client_nic);
        let mut index = self.index.lock();
        if index.contains_key(key) {
            return false;
        }
        index.insert(key.to_vec(), head);
        true
    }

    /// RPC: remove a key (after a delete has been applied).
    pub fn remove(&self, client_nic: &Nic, key: &[u8]) -> Option<PmAddr> {
        self.account_rpc(client_nic);
        self.index.lock().remove(key)
    }

    /// RPC: grant a space-allocation lease (the actual allocation happens on
    /// the shared pool; the RPC models the coordination cost).
    pub fn allocation_lease(&self, client_nic: &Nic) {
        self.account_rpc(client_nic);
    }

    /// Local (server-side) update of a chain head, used by the GC thread when
    /// it compacts chains.
    pub fn compact_head(&self, key: &[u8], new_head: PmAddr) {
        self.index.lock().insert(key.to_vec(), new_head);
    }

    /// All (key, head) pairs — used by the GC pass.
    pub fn snapshot(&self) -> Vec<(Vec<u8>, PmAddr)> {
        self.index
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Record that a GC pass ran.
    pub fn note_gc(&self) {
        self.gc_runs.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of GC passes.
    pub fn gc_runs(&self) -> u64 {
        self.gc_runs.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinomo_simnet::FabricConfig;

    #[test]
    fn register_lookup_remove() {
        let ms = MetadataServer::new(Nic::new(FabricConfig::default()), 4, 2_000);
        let client = Nic::new(FabricConfig::default());
        assert!(ms.register(&client, b"a", PmAddr(64)));
        assert!(
            !ms.register(&client, b"a", PmAddr(128)),
            "double register must fail"
        );
        assert_eq!(ms.lookup(&client, b"a"), Some(PmAddr(64)));
        assert_eq!(ms.lookup(&client, b"b"), None);
        assert_eq!(ms.remove(&client, b"a"), Some(PmAddr(64)));
        assert!(ms.is_empty());
        assert_eq!(ms.rpcs_served(), 5);
        assert_eq!(client.snapshot().rpcs, 5);
    }

    #[test]
    fn capacity_model() {
        let ms = MetadataServer::new(Nic::default(), 4, 2_000);
        assert!((ms.capacity_rpcs_per_sec() - 2_000_000.0).abs() < 1.0);
    }
}
