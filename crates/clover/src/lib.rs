//! # dinomo-clover — the Clover baseline
//!
//! Clover (Tsai et al., USENIX ATC '20) is the state-of-the-art passive-DPM
//! key-value store the paper compares against.  Its design choices are the
//! mirror image of Dinomo's (Table 1 of the paper):
//!
//! * **shared everything** — every KVS node can read and write every key, so
//!   membership changes and load balancing are trivial, but caches lose
//!   locality and consistency costs grow with the node count;
//! * **shortcut-only caching** — KNs cache only pointers into DPM;
//! * **out-of-place updates with version chains** — a writer appends a new
//!   version and links it to the previous one with a one-sided CAS; a reader
//!   holding a stale pointer must walk the chain to reach the most recent
//!   version, paying extra round trips;
//! * **a metadata server** — inserts, cache misses and space allocation go
//!   through a dedicated server with a handful of worker threads, which
//!   becomes the scalability bottleneck beyond a few KNs.
//!
//! The implementation runs on the same simulated fabric and PM pool as
//! Dinomo, so Figure 5 / Table 6 / Figures 7–8 compare the two systems on
//! equal footing.

#![warn(missing_docs)]

pub mod config;
pub mod kn;
pub mod kvs;
pub mod metadata;
pub mod version;

pub use config::CloverConfig;
pub use kvs::{CloverClient, CloverKvs};
pub use metadata::MetadataServer;
