//! The Clover cluster and its client.

use crate::config::CloverConfig;
use crate::kn::CloverKn;
use crate::metadata::MetadataServer;
use crate::version::read_version;
use dinomo_core::{KvsError, KvsStats, Result};
use dinomo_pmem::PmemPool;
use dinomo_simnet::Nic;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;

/// The Clover cluster: a shared PM pool, a metadata server, and a set of
/// interchangeable KVS nodes.
#[derive(Debug, Clone)]
pub struct CloverKvs {
    inner: Arc<CloverInner>,
}

#[derive(Debug)]
struct CloverInner {
    config: CloverConfig,
    pool: Arc<PmemPool>,
    metadata: Arc<MetadataServer>,
    kns: RwLock<BTreeMap<u32, Arc<CloverKn>>>,
    next_id: AtomicU32,
}

impl CloverKvs {
    /// Build a cluster with `config.initial_kns` nodes.
    pub fn new(config: CloverConfig) -> Result<Self> {
        let pool = Arc::new(PmemPool::new(config.pool));
        let metadata = Arc::new(MetadataServer::new(
            Nic::new(config.fabric),
            config.metadata_server_threads,
            config.metadata_service_ns,
        ));
        let inner = Arc::new(CloverInner {
            config,
            pool,
            metadata,
            kns: RwLock::new(BTreeMap::new()),
            next_id: AtomicU32::new(0),
        });
        let kvs = CloverKvs { inner };
        for _ in 0..config.initial_kns.max(1) {
            kvs.add_kn();
        }
        Ok(kvs)
    }

    /// The configuration this cluster was built with.
    pub fn config(&self) -> &CloverConfig {
        &self.inner.config
    }

    /// The metadata server (exposed for the harness's capacity model).
    pub fn metadata_server(&self) -> &Arc<MetadataServer> {
        &self.inner.metadata
    }

    /// A new client handle.
    pub fn client(&self) -> CloverClient {
        CloverClient {
            inner: Arc::clone(&self.inner),
            rr: AtomicUsize::new(0),
        }
    }

    /// Number of live nodes.
    pub fn num_kns(&self) -> usize {
        self.inner.kns.read().len()
    }

    /// Node identifiers.
    pub fn kn_ids(&self) -> Vec<u32> {
        self.inner.kns.read().keys().copied().collect()
    }

    /// Add a node. Shared-everything makes this trivial: no data or metadata
    /// moves, the client simply starts spreading requests over one more node.
    pub fn add_kn(&self) -> u32 {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let kn = Arc::new(CloverKn::new(
            id,
            &self.inner.config,
            Arc::clone(&self.inner.pool),
            Arc::clone(&self.inner.metadata),
        ));
        self.inner.kns.write().insert(id, kn);
        id
    }

    /// Remove a node.
    pub fn remove_kn(&self, id: u32) -> Result<()> {
        if self.num_kns() <= 1 {
            return Err(KvsError::NoNodes);
        }
        self.inner
            .kns
            .write()
            .remove(&id)
            .map(|_| ())
            .ok_or(KvsError::NoNodes)
    }

    /// Simulate a fail-stop node failure. Clover only needs to update the
    /// cluster membership; clients retry on another node after a timeout.
    pub fn fail_kn(&self, id: u32) -> Result<()> {
        let node = self
            .inner
            .kns
            .read()
            .get(&id)
            .cloned()
            .ok_or(KvsError::NoNodes)?;
        node.fail();
        self.inner.kns.write().remove(&id);
        Ok(())
    }

    /// Run one garbage-collection pass on the metadata server: compact every
    /// chain head to its current tail so future misses do not walk stale
    /// versions.
    pub fn run_gc(&self) -> usize {
        let mut compacted = 0;
        for (key, head) in self.inner.metadata.snapshot() {
            let mut addr = head;
            let mut hops = 0;
            loop {
                let v = read_version(&self.inner.pool, addr);
                if v.next.is_null() {
                    break;
                }
                addr = v.next;
                hops += 1;
            }
            if hops > 0 {
                self.inner.metadata.compact_head(&key, addr);
                compacted += 1;
            }
        }
        self.inner.metadata.note_gc();
        compacted
    }

    /// Total version-chain hops across all nodes.
    pub fn total_chain_hops(&self) -> u64 {
        self.inner.kns.read().values().map(|k| k.chain_hops()).sum()
    }

    /// Cluster statistics in the same shape as Dinomo's.
    pub fn stats(&self) -> KvsStats {
        KvsStats {
            kns: self.inner.kns.read().values().map(|k| k.stats()).collect(),
            dpm: dinomo_dpm::DpmStats::default(),
            ownership_version: 0,
        }
    }
}

/// A Clover client: spreads requests round-robin over all nodes (any node can
/// serve any key) and retries on another node when one fails.
#[derive(Debug)]
pub struct CloverClient {
    inner: Arc<CloverInner>,
    rr: AtomicUsize,
}

impl CloverClient {
    fn pick(&self) -> Result<Arc<CloverKn>> {
        let kns = self.inner.kns.read();
        if kns.is_empty() {
            return Err(KvsError::NoNodes);
        }
        let idx = self.rr.fetch_add(1, Ordering::Relaxed) % kns.len();
        Ok(kns.values().nth(idx).expect("index in range").clone())
    }

    fn run<T>(&self, mut op: impl FnMut(&CloverKn) -> Result<T>) -> Result<T> {
        for _ in 0..64 {
            let kn = self.pick()?;
            match op(&kn) {
                Err(KvsError::NodeFailed) => continue,
                other => return other,
            }
        }
        Err(KvsError::RoutingRetriesExhausted)
    }

    /// `insert(key, value)`.
    pub fn insert(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.run(|kn| kn.put(key, value))
    }

    /// `update(key, value)`.
    pub fn update(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.run(|kn| kn.put(key, value))
    }

    /// `lookup(key)`.
    pub fn lookup(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.run(|kn| kn.get(key))
    }

    /// `delete(key)`.
    pub fn delete(&self, key: &[u8]) -> Result<()> {
        self.run(|kn| kn.delete(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinomo_workload::key_for;

    fn cluster() -> CloverKvs {
        CloverKvs::new(CloverConfig::small_for_tests()).unwrap()
    }

    #[test]
    fn basic_crud() {
        let kvs = cluster();
        let client = kvs.client();
        client.insert(b"a", b"1").unwrap();
        client.insert(b"b", b"2").unwrap();
        assert_eq!(client.lookup(b"a").unwrap(), Some(b"1".to_vec()));
        client.update(b"a", b"1b").unwrap();
        assert_eq!(client.lookup(b"a").unwrap(), Some(b"1b".to_vec()));
        client.delete(b"a").unwrap();
        assert_eq!(client.lookup(b"a").unwrap(), None);
        assert_eq!(client.lookup(b"b").unwrap(), Some(b"2".to_vec()));
        assert_eq!(client.lookup(b"c").unwrap(), None);
    }

    #[test]
    fn any_node_serves_any_key() {
        let kvs = cluster();
        let client = kvs.client();
        for i in 0..100u64 {
            client.insert(&key_for(i, 8), &[i as u8; 32]).unwrap();
        }
        // Read every key directly on every node.
        for id in kvs.kn_ids() {
            let kn = kvs.inner.kns.read().get(&id).cloned().unwrap();
            for i in (0..100u64).step_by(11) {
                assert_eq!(kn.get(&key_for(i, 8)).unwrap(), Some(vec![i as u8; 32]));
            }
        }
    }

    #[test]
    fn stale_shortcuts_cause_chain_walks() {
        let kvs = cluster();
        let client = kvs.client();
        client.insert(b"hot", b"v0").unwrap();
        // Warm both nodes' caches.
        for _ in 0..4 {
            client.lookup(b"hot").unwrap();
        }
        let hops_before = kvs.total_chain_hops();
        // Update through one node, then read through the other: the stale
        // shortcut forces a chain walk.
        for i in 0..10u8 {
            client.update(b"hot", &[i; 8]).unwrap();
            assert_eq!(client.lookup(b"hot").unwrap(), Some(vec![i; 8]));
        }
        assert!(
            kvs.total_chain_hops() > hops_before,
            "expected version-chain walks"
        );
        // GC compacts the chains so later misses start from the tail.
        let compacted = kvs.run_gc();
        assert!(compacted >= 1);
        assert_eq!(client.lookup(b"hot").unwrap(), Some(vec![9u8; 8]));
    }

    #[test]
    fn metadata_server_sees_inserts_and_misses() {
        let kvs = cluster();
        let client = kvs.client();
        for i in 0..50u64 {
            client.insert(&key_for(i, 8), &[0u8; 16]).unwrap();
        }
        let rpcs = kvs.metadata_server().rpcs_served();
        assert!(
            rpcs >= 50,
            "every new key registers through the metadata server ({rpcs})"
        );
        assert_eq!(kvs.metadata_server().len(), 50);
    }

    #[test]
    fn membership_changes_are_lightweight() {
        let kvs = cluster();
        let client = kvs.client();
        for i in 0..50u64 {
            client.insert(&key_for(i, 8), &[1u8; 16]).unwrap();
        }
        let added = kvs.add_kn();
        assert_eq!(kvs.num_kns(), 3);
        for i in 0..50u64 {
            assert_eq!(client.lookup(&key_for(i, 8)).unwrap(), Some(vec![1u8; 16]));
        }
        kvs.fail_kn(added).unwrap();
        assert_eq!(kvs.num_kns(), 2);
        for i in 0..50u64 {
            assert_eq!(client.lookup(&key_for(i, 8)).unwrap(), Some(vec![1u8; 16]));
        }
        let last_removable = kvs.kn_ids()[0];
        kvs.remove_kn(last_removable).unwrap();
        assert!(
            kvs.remove_kn(kvs.kn_ids()[0]).is_err(),
            "cannot remove the last node"
        );
    }

    #[test]
    fn stats_shape_matches_dinomo() {
        let kvs = cluster();
        let client = kvs.client();
        for i in 0..20u64 {
            client.insert(&key_for(i, 8), &[0u8; 64]).unwrap();
            client.lookup(&key_for(i, 8)).unwrap();
        }
        let stats = kvs.stats();
        assert_eq!(stats.kns.len(), 2);
        assert_eq!(stats.total_ops(), 40);
        assert!(stats.rts_per_op() > 0.0);
    }
}
