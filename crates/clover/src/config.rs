//! Clover configuration.

use dinomo_pmem::PmemConfig;
use dinomo_simnet::FabricConfig;

/// Configuration of a [`crate::CloverKvs`] cluster.
#[derive(Debug, Clone, Copy)]
pub struct CloverConfig {
    /// Number of KVS nodes at start-up.
    pub initial_kns: usize,
    /// Worker threads (shards) per KVS node.
    pub threads_per_kn: usize,
    /// DRAM budget per KVS node for the shortcut cache, in bytes.
    pub cache_bytes_per_kn: usize,
    /// Backing PM pool configuration.
    pub pool: PmemConfig,
    /// Simulated fabric configuration.
    pub fabric: FabricConfig,
    /// Worker threads on the metadata server (the paper's setup uses 4
    /// workers plus an epoch thread and a GC thread).
    pub metadata_server_threads: usize,
    /// Modeled service time per metadata-server RPC, nanoseconds.
    pub metadata_service_ns: u64,
    /// How many writes a KN can perform from one pre-allocated space lease
    /// before asking the metadata server for more.
    pub allocation_lease_ops: usize,
}

impl Default for CloverConfig {
    fn default() -> Self {
        CloverConfig {
            initial_kns: 1,
            threads_per_kn: 8,
            cache_bytes_per_kn: 64 << 20,
            pool: PmemConfig::default(),
            fabric: FabricConfig::default(),
            metadata_server_threads: 4,
            metadata_service_ns: 8_000,
            allocation_lease_ops: 64,
        }
    }
}

impl CloverConfig {
    /// Small configuration for unit tests.
    pub fn small_for_tests() -> Self {
        CloverConfig {
            initial_kns: 2,
            threads_per_kn: 2,
            cache_bytes_per_kn: 256 << 10,
            pool: PmemConfig {
                capacity_bytes: 16 << 20,
                ..PmemConfig::default()
            },
            ..CloverConfig::default()
        }
    }

    /// Modeled aggregate RPC capacity of the metadata server, RPCs/second.
    pub fn metadata_capacity_rpcs(&self) -> f64 {
        if self.metadata_service_ns == 0 {
            return f64::INFINITY;
        }
        self.metadata_server_threads as f64 * 1e9 / self.metadata_service_ns as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_capacity_scales_with_threads() {
        let mut c = CloverConfig::default();
        let base = c.metadata_capacity_rpcs();
        c.metadata_server_threads = 8;
        assert!(c.metadata_capacity_rpcs() > base * 1.9);
        assert!((base - 500_000.0).abs() < 1.0);
    }
}
