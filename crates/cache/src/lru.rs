//! A small LRU-ordered map used for value entries.
//!
//! Keys are byte strings; each entry carries a caller-defined payload.
//! Recency is tracked with a monotonically increasing tick and a `BTreeMap`
//! from tick to key, giving `O(log n)` touch and eviction — plenty for cache
//! sizes in the tens of thousands of entries while keeping the code simple
//! and allocation-light.

use std::collections::{BTreeMap, HashMap};

/// An LRU-ordered map from byte-string keys to `V`.
#[derive(Debug)]
pub struct LruMap<V> {
    entries: HashMap<Vec<u8>, (V, u64)>,
    order: BTreeMap<u64, Vec<u8>>,
    tick: u64,
}

impl<V> Default for LruMap<V> {
    fn default() -> Self {
        LruMap {
            entries: HashMap::new(),
            order: BTreeMap::new(),
            tick: 0,
        }
    }
}

impl<V> LruMap<V> {
    /// Create an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` if `key` is present (does not touch recency).
    pub fn contains(&self, key: &[u8]) -> bool {
        self.entries.contains_key(key)
    }

    /// Get without touching recency.
    pub fn peek(&self, key: &[u8]) -> Option<&V> {
        self.entries.get(key).map(|(v, _)| v)
    }

    /// Get, marking the entry most-recently used.
    pub fn get(&mut self, key: &[u8]) -> Option<&mut V> {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(key) {
            Some((v, old_tick)) => {
                self.order.remove(old_tick);
                self.order.insert(tick, key.to_vec());
                *old_tick = tick;
                Some(v)
            }
            None => None,
        }
    }

    /// Insert or replace, marking the entry most-recently used. Returns the
    /// previous payload if any.
    pub fn insert(&mut self, key: &[u8], value: V) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        let prev = self.entries.insert(key.to_vec(), (value, tick));
        if let Some((_, old_tick)) = &prev {
            self.order.remove(old_tick);
        }
        self.order.insert(tick, key.to_vec());
        prev.map(|(v, _)| v)
    }

    /// Remove an entry.
    pub fn remove(&mut self, key: &[u8]) -> Option<V> {
        let (v, tick) = self.entries.remove(key)?;
        self.order.remove(&tick);
        Some(v)
    }

    /// Key of the least-recently-used entry.
    pub fn lru_key(&self) -> Option<&[u8]> {
        self.order.values().next().map(|k| k.as_slice())
    }

    /// Remove and return the least-recently-used entry.
    pub fn pop_lru(&mut self) -> Option<(Vec<u8>, V)> {
        let (&tick, _) = self.order.iter().next()?;
        let key = self.order.remove(&tick)?;
        let (v, _) = self.entries.remove(&key)?;
        Some((key, v))
    }

    /// Iterate over all `(key, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<u8>, &V)> {
        self.entries.iter().map(|(k, (v, _))| (k, v))
    }

    /// Remove everything.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut m = LruMap::new();
        assert!(m.is_empty());
        m.insert(b"a", 1);
        m.insert(b"b", 2);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(b"a"), Some(&mut 1));
        assert_eq!(m.peek(b"b"), Some(&2));
        assert_eq!(m.remove(b"a"), Some(1));
        assert!(!m.contains(b"a"));
    }

    #[test]
    fn eviction_order_is_lru() {
        let mut m = LruMap::new();
        m.insert(b"a", 1);
        m.insert(b"b", 2);
        m.insert(b"c", 3);
        // Touch "a" so "b" becomes LRU.
        m.get(b"a");
        assert_eq!(m.lru_key(), Some(b"b".as_slice()));
        assert_eq!(m.pop_lru(), Some((b"b".to_vec(), 2)));
        assert_eq!(m.pop_lru(), Some((b"c".to_vec(), 3)));
        assert_eq!(m.pop_lru(), Some((b"a".to_vec(), 1)));
        assert_eq!(m.pop_lru(), None);
    }

    #[test]
    fn reinsert_updates_value_and_recency() {
        let mut m = LruMap::new();
        m.insert(b"a", 1);
        m.insert(b"b", 2);
        assert_eq!(m.insert(b"a", 10), Some(1));
        assert_eq!(m.lru_key(), Some(b"b".as_slice()));
        assert_eq!(m.peek(b"a"), Some(&10));
    }

    #[test]
    fn clear_empties_both_structures() {
        let mut m = LruMap::new();
        m.insert(b"a", 1);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.pop_lru(), None);
    }
}
