//! Disaggregated Adaptive Caching (DAC), §3.3 of the paper.
//!
//! DAC divides a single byte budget between full **values** (0-RT hits,
//! evicted LRU, demoted to shortcuts under memory pressure) and **shortcuts**
//! (1-RT hits, evicted LFU).  The policy follows Table 3 of the paper:
//!
//! * **BEGIN** — start with an empty cache and admit values while there is
//!   spare space.
//! * **MISS** — cache the shortcut; to make space, demote a value (if one is
//!   present) or evict the least-frequently-used shortcut.
//! * **HIT** (on a shortcut) — consider promoting it to a value: promote only
//!   if the round trips saved by the promotion outweigh the round trips that
//!   would be added by evicting the `N` least-frequently-used shortcuts
//!   needed to make room (Equation 1).
//! * **EVICT** — always evict the least-frequently-used shortcut.
//! * **PROMOTE** — promoted shortcuts inherit their access counts.
//! * **DEMOTE** — demoted values are kept as shortcuts (inheriting counts).
//!
//! The average cost of a cache miss (in RTs) is learned online from
//! [`KnCache::record_miss_cost`] as an exponential moving average; the
//! average shortcut-hit cost is exactly one RT by construction.

use crate::lfu::LfuMap;
use crate::lru::LruMap;
use crate::policy::{shortcut_weight, value_weight, CacheLookup, CacheStats, KnCache, ValueLoc};

#[derive(Debug, Clone)]
struct ValueEntry {
    data: Vec<u8>,
    loc: ValueLoc,
    hits: u64,
}

#[derive(Debug, Clone, Copy)]
struct ShortcutEntry {
    loc: ValueLoc,
}

/// The DAC cache. See the module docs.
#[derive(Debug)]
pub struct DacCache {
    values: LruMap<ValueEntry>,
    shortcuts: LfuMap<ShortcutEntry>,
    capacity: usize,
    used: usize,
    /// Exponential moving average of the measured miss cost in RTs.
    avg_miss_rts: f64,
    stats: CacheStats,
}

/// Initial estimate for the cost of a miss before any measurement arrives:
/// a couple of index-bucket reads plus the value read.
const INITIAL_MISS_RTS: f64 = 3.0;
/// Weight of a new sample in the miss-cost moving average.
const MISS_EMA_ALPHA: f64 = 0.05;

impl DacCache {
    /// Create a DAC cache with the given byte budget.
    pub fn new(capacity_bytes: usize) -> Self {
        DacCache {
            values: LruMap::new(),
            shortcuts: LfuMap::new(),
            capacity: capacity_bytes,
            used: 0,
            avg_miss_rts: INITIAL_MISS_RTS,
            stats: CacheStats {
                capacity_bytes: capacity_bytes as u64,
                ..CacheStats::default()
            },
        }
    }

    /// The current moving average of the miss cost, in round trips.
    pub fn avg_miss_rts(&self) -> f64 {
        self.avg_miss_rts
    }

    fn refresh_stats(&mut self) {
        self.stats.bytes_used = self.used as u64;
        self.stats.capacity_bytes = self.capacity as u64;
        self.stats.value_entries = self.values.len() as u64;
        self.stats.shortcut_entries = self.shortcuts.len() as u64;
    }

    fn free_space(&self) -> usize {
        self.capacity.saturating_sub(self.used)
    }

    /// Demote the least-recently-used value into a shortcut.  Returns the
    /// bytes released, or 0 if there was no value to demote.
    fn demote_one_value(&mut self) -> usize {
        let Some((key, entry)) = self.values.pop_lru() else {
            return 0;
        };
        let released = value_weight(&key, entry.data.len());
        self.used -= released;
        self.stats.demotions += 1;
        // Demoted values are cached as shortcuts, inheriting access history.
        let w = shortcut_weight(&key);
        if self.free_space() + released >= w {
            self.shortcuts.insert_with_frequency(
                &key,
                ShortcutEntry { loc: entry.loc },
                entry.hits.max(1),
            );
            self.used += w;
            released.saturating_sub(w)
        } else {
            self.stats.evictions += 1;
            released
        }
    }

    /// Evict the least-frequently-used shortcut. Returns bytes released.
    fn evict_one_shortcut(&mut self) -> usize {
        let Some((key, _, _)) = self.shortcuts.pop_lfu() else {
            return 0;
        };
        let released = shortcut_weight(&key);
        self.used -= released;
        self.stats.evictions += 1;
        released
    }

    /// Make at least `needed` bytes of free space, preferring to demote
    /// values and then to evict LFU shortcuts. Returns `false` if the budget
    /// simply cannot fit `needed` bytes.
    fn make_space(&mut self, needed: usize) -> bool {
        if needed > self.capacity {
            return false;
        }
        while self.free_space() < needed {
            if self.demote_one_value() > 0 {
                continue;
            }
            if self.evict_one_shortcut() == 0 {
                return false;
            }
        }
        true
    }

    fn insert_shortcut(&mut self, key: &[u8], loc: ValueLoc, freq: u64) {
        let w = shortcut_weight(key);
        if self.shortcuts.contains(key) {
            // Already present: just refresh the location.
            if let Some(e) = self.shortcuts.peek(key) {
                if e.loc != loc {
                    // Update in place without perturbing the frequency.
                    let prev_freq = self.shortcuts.frequency(key).unwrap_or(1);
                    self.shortcuts
                        .insert_with_frequency(key, ShortcutEntry { loc }, prev_freq);
                }
            }
            return;
        }
        if !self.make_space(w) {
            return;
        }
        self.shortcuts
            .insert_with_frequency(key, ShortcutEntry { loc }, freq.max(1));
        self.used += w;
    }

    fn insert_value(&mut self, key: &[u8], value: &[u8], loc: ValueLoc, hits: u64) -> bool {
        let w = value_weight(key, value.len());
        if w > self.capacity {
            return false;
        }
        // Remove any existing entries for this key first.
        self.remove_internal(key);
        if !self.make_space(w) {
            return false;
        }
        self.values.insert(
            key,
            ValueEntry {
                data: value.to_vec(),
                loc,
                hits,
            },
        );
        self.used += w;
        true
    }

    fn remove_internal(&mut self, key: &[u8]) {
        if let Some(e) = self.values.remove(key) {
            self.used -= value_weight(key, e.data.len());
        }
        if self.shortcuts.remove(key).is_some() {
            self.used -= shortcut_weight(key);
        }
    }

    /// Equation 1: should the shortcut for `key` (with `hits` accesses) be
    /// promoted to a value of length `value_len`?
    fn should_promote(&self, key: &[u8], value_len: usize, hits: u64) -> bool {
        let needed = value_weight(key, value_len);
        let mut available = self.free_space() + shortcut_weight(key);
        if available >= needed {
            // Spare space: promotion costs nothing.
            return true;
        }
        // Determine the N least-frequently-used shortcuts (other than this
        // one) that would have to be evicted, and their accumulated hits.
        let mut penalty_hits: u64 = 0;
        let mut feasible = false;
        for (candidate, freq) in self.shortcuts.least_frequent(self.shortcuts.len()) {
            if candidate == key {
                continue;
            }
            penalty_hits += freq;
            available += shortcut_weight(candidate);
            if available >= needed {
                feasible = true;
                break;
            }
        }
        if !feasible {
            return false;
        }
        // Savings: every future hit on the value saves the 1 RT the shortcut
        // hit would have cost.  Penalty: every future hit on an evicted
        // shortcut now costs a full miss.  Past hits are the predictor.
        let savings = hits as f64 * 1.0;
        let penalty = penalty_hits as f64 * self.avg_miss_rts;
        savings >= penalty
    }
}

impl KnCache for DacCache {
    fn name(&self) -> &'static str {
        "dac"
    }

    fn lookup(&mut self, key: &[u8]) -> CacheLookup {
        if let Some(entry) = self.values.get(key) {
            entry.hits += 1;
            let data = entry.data.clone();
            self.stats.value_hits += 1;
            self.refresh_stats();
            return CacheLookup::Value(data);
        }
        if let Some(entry) = self.shortcuts.get(key) {
            let loc = entry.loc;
            self.stats.shortcut_hits += 1;
            self.refresh_stats();
            return CacheLookup::Shortcut(loc);
        }
        self.stats.misses += 1;
        self.refresh_stats();
        CacheLookup::Miss
    }

    fn admit_value(&mut self, key: &[u8], value: &[u8], loc: ValueLoc) {
        if self.values.contains(key) {
            // Refresh the data in place (e.g. after the KN re-read it).
            let hits = self.values.peek(key).map(|e| e.hits).unwrap_or(0);
            self.insert_value(key, value, loc, hits);
            self.refresh_stats();
            return;
        }
        let shortcut_hits = self.shortcuts.frequency(key);
        match shortcut_hits {
            Some(hits) => {
                // HIT path: this value arrived by resolving a shortcut hit.
                // Promote only if Equation 1 says the trade is worth it.
                if self.should_promote(key, value.len(), hits) {
                    if self.insert_value(key, value, loc, hits) {
                        self.stats.promotions += 1;
                    }
                } else {
                    // Keep (refresh) the shortcut.
                    self.insert_shortcut(key, loc, hits);
                }
            }
            None => {
                // MISS path: the paper's policy caches the shortcut on a
                // miss, using values only when there is spare space.
                let vw = value_weight(key, value.len());
                if self.free_space() >= vw {
                    self.insert_value(key, value, loc, 1);
                } else {
                    self.insert_shortcut(key, loc, 1);
                }
            }
        }
        self.refresh_stats();
    }

    fn admit_shortcut(&mut self, key: &[u8], loc: ValueLoc) {
        if self.values.contains(key) {
            return;
        }
        self.insert_shortcut(key, loc, 1);
        self.refresh_stats();
    }

    fn on_local_write(&mut self, key: &[u8], value: &[u8], loc: ValueLoc) {
        // The KN produced this write itself: it knows the value and its DPM
        // location for free.  Prefer caching the value if the key is already
        // value-resident or there is spare space; otherwise keep a shortcut
        // (the location was free to learn).
        if self.values.contains(key) {
            let hits = self.values.peek(key).map(|e| e.hits).unwrap_or(0);
            self.insert_value(key, value, loc, hits);
        } else if self.free_space() >= value_weight(key, value.len()) {
            self.insert_value(key, value, loc, 1);
        } else {
            let freq = self.shortcuts.frequency(key).unwrap_or(1);
            // Location changed: refresh the shortcut.
            self.remove_internal(key);
            self.insert_shortcut(key, loc, freq);
        }
        self.refresh_stats();
    }

    fn invalidate(&mut self, key: &[u8]) {
        self.remove_internal(key);
        self.refresh_stats();
    }

    fn record_miss_cost(&mut self, rts: u32) {
        self.avg_miss_rts =
            (1.0 - MISS_EMA_ALPHA) * self.avg_miss_rts + MISS_EMA_ALPHA * f64::from(rts);
    }

    fn clear(&mut self) {
        self.values.clear();
        self.shortcuts.clear();
        self.used = 0;
        self.refresh_stats();
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn capacity_bytes(&self) -> usize {
        self.capacity
    }

    fn set_capacity_bytes(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.used > self.capacity {
            if self.demote_one_value() > 0 {
                continue;
            }
            if self.evict_one_shortcut() == 0 {
                break;
            }
        }
        self.refresh_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc(i: u64) -> ValueLoc {
        ValueLoc::new(i * 100, 64)
    }

    fn key(i: u32) -> Vec<u8> {
        format!("key{i:05}").into_bytes()
    }

    #[test]
    fn begins_by_caching_values_when_space_is_spare() {
        let mut c = DacCache::new(10_000);
        assert_eq!(c.lookup(&key(1)), CacheLookup::Miss);
        c.record_miss_cost(3);
        c.admit_value(&key(1), &[7u8; 64], loc(1));
        match c.lookup(&key(1)) {
            CacheLookup::Value(v) => assert_eq!(v, vec![7u8; 64]),
            other => panic!("expected value hit, got {other:?}"),
        }
        assert_eq!(c.stats().value_entries, 1);
    }

    #[test]
    fn falls_back_to_shortcuts_under_pressure() {
        // Capacity fits only ~2 values but many shortcuts.
        let mut c = DacCache::new(300);
        for i in 0..20 {
            c.lookup(&key(i));
            c.admit_value(&key(i), &[1u8; 100], loc(u64::from(i)));
        }
        let s = c.stats();
        assert!(
            s.shortcut_entries > 0,
            "expected shortcut entries, got {s:?}"
        );
        assert!(s.bytes_used <= 300);
    }

    #[test]
    fn budget_is_never_exceeded() {
        let mut c = DacCache::new(2_000);
        for i in 0..200 {
            c.lookup(&key(i));
            c.admit_value(&key(i), &[3u8; 150], loc(u64::from(i)));
            assert!(c.stats().bytes_used <= 2_000, "over budget at {i}");
        }
    }

    #[test]
    fn hot_shortcut_gets_promoted() {
        let mut c = DacCache::new(1_000);
        // Fill with cold shortcuts.
        for i in 0..30 {
            c.admit_shortcut(&key(i), loc(u64::from(i)));
        }
        // Key 999 becomes very hot via repeated shortcut hits.
        c.admit_shortcut(&key(999), loc(999));
        for _ in 0..50 {
            assert!(matches!(c.lookup(&key(999)), CacheLookup::Shortcut(_)));
        }
        c.record_miss_cost(5);
        c.admit_value(&key(999), &[9u8; 200], loc(999));
        assert!(
            matches!(c.lookup(&key(999)), CacheLookup::Value(_)),
            "hot key should have been promoted: {:?}",
            c.stats()
        );
        assert!(c.stats().promotions >= 1);
    }

    #[test]
    fn cold_shortcut_is_not_promoted_over_hot_shortcuts() {
        let mut c = DacCache::new(800);
        // Fill the budget with hot shortcuts.
        for i in 0..24 {
            c.admit_shortcut(&key(i), loc(u64::from(i)));
        }
        for _ in 0..20 {
            for i in 0..24 {
                c.lookup(&key(i));
            }
        }
        // One cold shortcut, accessed once.
        c.admit_shortcut(&key(500), loc(500));
        c.lookup(&key(500));
        c.record_miss_cost(5);
        c.admit_value(&key(500), &[1u8; 400], loc(500));
        // Promotion would require evicting many hot shortcuts; Equation 1
        // must reject it.
        assert!(
            matches!(
                c.lookup(&key(500)),
                CacheLookup::Shortcut(_) | CacheLookup::Miss
            ),
            "cold key must not displace hot shortcuts"
        );
        assert_eq!(c.stats().promotions, 0);
    }

    #[test]
    fn demoted_values_become_shortcuts() {
        let mut c = DacCache::new(400);
        c.admit_value(&key(1), &[1u8; 200], loc(1));
        assert_eq!(c.stats().value_entries, 1);
        // Admitting more data forces the value to be demoted.
        for i in 2..10 {
            c.lookup(&key(i));
            c.admit_value(&key(i), &[1u8; 200], loc(u64::from(i)));
        }
        let s = c.stats();
        assert!(s.demotions >= 1, "expected demotions: {s:?}");
        // Key 1 should still be findable as a shortcut (unless later evicted).
        let l = c.lookup(&key(1));
        assert!(!matches!(l, CacheLookup::Value(_)));
    }

    #[test]
    fn local_writes_refresh_location() {
        let mut c = DacCache::new(10_000);
        c.on_local_write(&key(1), &[1u8; 32], loc(1));
        c.on_local_write(&key(1), &[2u8; 32], loc(2));
        match c.lookup(&key(1)) {
            CacheLookup::Value(v) => assert_eq!(v, vec![2u8; 32]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn invalidate_and_clear() {
        let mut c = DacCache::new(10_000);
        c.admit_value(&key(1), &[1u8; 32], loc(1));
        c.admit_shortcut(&key(2), loc(2));
        c.invalidate(&key(1));
        c.invalidate(&key(2));
        assert_eq!(c.lookup(&key(1)), CacheLookup::Miss);
        assert_eq!(c.lookup(&key(2)), CacheLookup::Miss);
        c.admit_value(&key(3), &[1u8; 32], loc(3));
        c.clear();
        assert_eq!(c.stats().bytes_used, 0);
        assert_eq!(c.lookup(&key(3)), CacheLookup::Miss);
    }

    #[test]
    fn shrinking_capacity_evicts_down_to_budget() {
        let mut c = DacCache::new(5_000);
        for i in 0..30 {
            c.admit_value(&key(i), &[1u8; 100], loc(u64::from(i)));
        }
        c.set_capacity_bytes(500);
        assert!(c.stats().bytes_used <= 500);
        assert_eq!(c.capacity_bytes(), 500);
    }

    #[test]
    fn miss_cost_moving_average_updates() {
        let mut c = DacCache::new(1_000);
        let initial = c.avg_miss_rts();
        for _ in 0..100 {
            c.record_miss_cost(10);
        }
        assert!(c.avg_miss_rts() > initial);
        assert!(c.avg_miss_rts() <= 10.0);
    }

    #[test]
    fn oversized_value_is_rejected_gracefully() {
        let mut c = DacCache::new(100);
        c.admit_value(&key(1), &[1u8; 500], loc(1));
        assert!(c.stats().bytes_used <= 100);
        // The key may still be cached as a shortcut, never as a value.
        assert!(!matches!(c.lookup(&key(1)), CacheLookup::Value(_)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The byte budget is an invariant under arbitrary operation mixes.
        #[test]
        fn never_exceeds_budget(
            capacity in 200usize..5_000,
            ops in proptest::collection::vec((0u8..4, 0u32..64, 1usize..300), 1..300),
        ) {
            let mut c = DacCache::new(capacity);
            for (op, k, len) in ops {
                let key = format!("k{k:04}").into_bytes();
                match op {
                    0 => { c.lookup(&key); }
                    1 => c.admit_value(&key, &vec![0u8; len], ValueLoc::new(u64::from(k), len as u32)),
                    2 => c.admit_shortcut(&key, ValueLoc::new(u64::from(k), len as u32)),
                    _ => c.on_local_write(&key, &vec![1u8; len], ValueLoc::new(u64::from(k), len as u32)),
                }
                prop_assert!(c.stats().bytes_used <= capacity as u64);
            }
        }

        /// A value hit always returns exactly the bytes most recently admitted
        /// or written for that key.
        #[test]
        fn value_hits_return_latest_bytes(
            writes in proptest::collection::vec((0u32..16, 1u8..255), 1..100),
        ) {
            let mut c = DacCache::new(1 << 20);
            let mut latest = std::collections::HashMap::new();
            for (k, fill) in writes {
                let key = format!("k{k:04}").into_bytes();
                let val = vec![fill; 32];
                c.on_local_write(&key, &val, ValueLoc::new(u64::from(k), 32));
                latest.insert(key, val);
            }
            for (key, val) in latest {
                match c.lookup(&key) {
                    CacheLookup::Value(v) => prop_assert_eq!(v, val),
                    other => prop_assert!(false, "expected value hit, got {:?}", other),
                }
            }
        }
    }
}
