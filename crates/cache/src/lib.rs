//! # dinomo-cache — KVS-node caching, including DAC
//!
//! A Dinomo KVS node (KN) has a small amount of local DRAM relative to the
//! DPM pool (≈1 % in the paper's setup) and uses it to avoid network round
//! trips (RTs).  Two kinds of entries can be cached:
//!
//! * a **value** entry holds a full copy of the key-value pair — a hit costs
//!   0 RTs but consumes space proportional to the value size;
//! * a **shortcut** entry holds a fixed-size pointer to the value's location
//!   in DPM — a hit costs exactly 1 one-sided READ, a miss costs an index
//!   traversal (`M` RTs) plus the value read.
//!
//! This crate implements the paper's **Disaggregated Adaptive Caching (DAC)**
//! policy (§3.3, Table 3, Equation 1) along with the comparison policies used
//! in Figure 3 / Table 5: no caching, shortcut-only, value-only, and the
//! Static-X% split policies.  All policies implement the [`KnCache`] trait so
//! the KVS node and the benchmark harness can swap them freely.

#![warn(missing_docs)]

pub mod dac;
pub mod lfu;
pub mod lru;
pub mod policy;
pub mod static_cache;

pub use dac::DacCache;
pub use policy::{
    shortcut_weight, value_weight, CacheKind, CacheLookup, CacheStats, KnCache, ValueLoc,
};
pub use static_cache::{NoCache, StaticCache};

/// Construct a boxed cache of the given kind with the given byte capacity.
pub fn build_cache(kind: CacheKind, capacity_bytes: usize) -> Box<dyn KnCache> {
    match kind {
        CacheKind::None => Box::new(NoCache::default()),
        CacheKind::ShortcutOnly => Box::new(StaticCache::new(capacity_bytes, 0.0)),
        CacheKind::ValueOnly => Box::new(StaticCache::new(capacity_bytes, 1.0)),
        CacheKind::StaticFraction(percent) => {
            Box::new(StaticCache::new(capacity_bytes, f64::from(percent) / 100.0))
        }
        CacheKind::Dac => Box::new(DacCache::new(capacity_bytes)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_cache_produces_the_requested_policy() {
        assert_eq!(build_cache(CacheKind::None, 0).name(), "no-cache");
        assert_eq!(
            build_cache(CacheKind::ShortcutOnly, 1024).name(),
            "shortcut-only"
        );
        assert_eq!(build_cache(CacheKind::ValueOnly, 1024).name(), "value-only");
        assert_eq!(
            build_cache(CacheKind::StaticFraction(40), 1024).name(),
            "static"
        );
        assert_eq!(build_cache(CacheKind::Dac, 1024).name(), "dac");
    }
}
