//! Non-adaptive comparison policies: no cache, shortcut-only, value-only and
//! the Static-X% split (Figure 3 / Table 5 of the paper).
//!
//! All non-DAC policies use LRU eviction within each region, matching the
//! paper's experimental setup ("All non-DAC policies use LRU to evict
//! entries").

use crate::lru::LruMap;
use crate::policy::{shortcut_weight, value_weight, CacheLookup, CacheStats, KnCache, ValueLoc};

/// A cache that never caches anything (the `NoCache` baseline).
#[derive(Debug, Default)]
pub struct NoCache {
    stats: CacheStats,
}

impl KnCache for NoCache {
    fn name(&self) -> &'static str {
        "no-cache"
    }

    fn lookup(&mut self, _key: &[u8]) -> CacheLookup {
        self.stats.misses += 1;
        CacheLookup::Miss
    }

    fn admit_value(&mut self, _key: &[u8], _value: &[u8], _loc: ValueLoc) {}
    fn admit_shortcut(&mut self, _key: &[u8], _loc: ValueLoc) {}
    fn on_local_write(&mut self, _key: &[u8], _value: &[u8], _loc: ValueLoc) {}
    fn invalidate(&mut self, _key: &[u8]) {}
    fn record_miss_cost(&mut self, _rts: u32) {}
    fn clear(&mut self) {}

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn capacity_bytes(&self) -> usize {
        0
    }

    fn set_capacity_bytes(&mut self, _capacity: usize) {}
}

#[derive(Debug, Clone)]
struct ValueEntry {
    data: Vec<u8>,
    #[allow(dead_code)]
    loc: ValueLoc,
}

/// A cache that statically reserves `value_fraction` of its byte budget for
/// values and the remainder for shortcuts.
///
/// * `value_fraction = 0.0` is the **shortcut-only** policy (Clover's cache
///   and the Dinomo-S variant);
/// * `value_fraction = 1.0` is the **value-only** policy;
/// * intermediate fractions are the paper's Static-20/40/80 policies.
#[derive(Debug)]
pub struct StaticCache {
    values: LruMap<ValueEntry>,
    shortcuts: LruMap<ValueLoc>,
    capacity: usize,
    value_capacity: usize,
    shortcut_capacity: usize,
    value_used: usize,
    shortcut_used: usize,
    value_fraction: f64,
    stats: CacheStats,
}

impl StaticCache {
    /// Create a static-split cache with the given byte budget and value
    /// fraction in `[0, 1]`.
    pub fn new(capacity_bytes: usize, value_fraction: f64) -> Self {
        let f = value_fraction.clamp(0.0, 1.0);
        let value_capacity = (capacity_bytes as f64 * f) as usize;
        StaticCache {
            values: LruMap::new(),
            shortcuts: LruMap::new(),
            capacity: capacity_bytes,
            value_capacity,
            shortcut_capacity: capacity_bytes - value_capacity,
            value_used: 0,
            shortcut_used: 0,
            value_fraction: f,
            stats: CacheStats {
                capacity_bytes: capacity_bytes as u64,
                ..CacheStats::default()
            },
        }
    }

    /// The configured value fraction.
    pub fn value_fraction(&self) -> f64 {
        self.value_fraction
    }

    fn refresh_stats(&mut self) {
        self.stats.bytes_used = (self.value_used + self.shortcut_used) as u64;
        self.stats.capacity_bytes = self.capacity as u64;
        self.stats.value_entries = self.values.len() as u64;
        self.stats.shortcut_entries = self.shortcuts.len() as u64;
    }

    fn insert_value(&mut self, key: &[u8], value: &[u8], loc: ValueLoc) {
        let w = value_weight(key, value.len());
        if w > self.value_capacity {
            return;
        }
        if let Some(prev) = self.values.remove(key) {
            self.value_used -= value_weight(key, prev.data.len());
        }
        while self.value_used + w > self.value_capacity {
            match self.values.pop_lru() {
                Some((k, e)) => {
                    self.value_used -= value_weight(&k, e.data.len());
                    self.stats.evictions += 1;
                }
                None => return,
            }
        }
        self.values.insert(
            key,
            ValueEntry {
                data: value.to_vec(),
                loc,
            },
        );
        self.value_used += w;
    }

    fn insert_shortcut(&mut self, key: &[u8], loc: ValueLoc) {
        let w = shortcut_weight(key);
        if w > self.shortcut_capacity {
            return;
        }
        if self.shortcuts.remove(key).is_some() {
            self.shortcut_used -= w;
        }
        while self.shortcut_used + w > self.shortcut_capacity {
            match self.shortcuts.pop_lru() {
                Some((k, _)) => {
                    self.shortcut_used -= shortcut_weight(&k);
                    self.stats.evictions += 1;
                }
                None => return,
            }
        }
        self.shortcuts.insert(key, loc);
        self.shortcut_used += w;
    }
}

impl KnCache for StaticCache {
    fn name(&self) -> &'static str {
        if self.value_fraction == 0.0 {
            "shortcut-only"
        } else if self.value_fraction >= 1.0 {
            "value-only"
        } else {
            "static"
        }
    }

    fn lookup(&mut self, key: &[u8]) -> CacheLookup {
        if let Some(entry) = self.values.get(key) {
            let data = entry.data.clone();
            self.stats.value_hits += 1;
            self.refresh_stats();
            return CacheLookup::Value(data);
        }
        if let Some(loc) = self.shortcuts.get(key) {
            let loc = *loc;
            self.stats.shortcut_hits += 1;
            self.refresh_stats();
            return CacheLookup::Shortcut(loc);
        }
        self.stats.misses += 1;
        self.refresh_stats();
        CacheLookup::Miss
    }

    fn admit_value(&mut self, key: &[u8], value: &[u8], loc: ValueLoc) {
        // Prefer the value region when it exists; also learn the shortcut so
        // that an eventual value-region eviction still leaves a 1-RT path.
        if self.value_capacity > 0 {
            self.insert_value(key, value, loc);
        }
        if self.shortcut_capacity > 0 {
            self.insert_shortcut(key, loc);
        }
        self.refresh_stats();
    }

    fn admit_shortcut(&mut self, key: &[u8], loc: ValueLoc) {
        if self.shortcut_capacity > 0 {
            self.insert_shortcut(key, loc);
        }
        self.refresh_stats();
    }

    fn on_local_write(&mut self, key: &[u8], value: &[u8], loc: ValueLoc) {
        self.admit_value(key, value, loc);
        // Location moved: a stale shortcut would point at the old version.
        if self.values.contains(key) {
            if self.shortcuts.remove(key).is_some() {
                self.shortcut_used -= shortcut_weight(key);
            }
        } else if self.shortcut_capacity > 0 {
            self.insert_shortcut(key, loc);
        }
        self.refresh_stats();
    }

    fn invalidate(&mut self, key: &[u8]) {
        if let Some(e) = self.values.remove(key) {
            self.value_used -= value_weight(key, e.data.len());
        }
        if self.shortcuts.remove(key).is_some() {
            self.shortcut_used -= shortcut_weight(key);
        }
        self.refresh_stats();
    }

    fn record_miss_cost(&mut self, _rts: u32) {}

    fn clear(&mut self) {
        self.values.clear();
        self.shortcuts.clear();
        self.value_used = 0;
        self.shortcut_used = 0;
        self.refresh_stats();
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn capacity_bytes(&self) -> usize {
        self.capacity
    }

    fn set_capacity_bytes(&mut self, capacity: usize) {
        self.capacity = capacity;
        self.value_capacity = (capacity as f64 * self.value_fraction) as usize;
        self.shortcut_capacity = capacity - self.value_capacity;
        while self.value_used > self.value_capacity {
            match self.values.pop_lru() {
                Some((k, e)) => {
                    self.value_used -= value_weight(&k, e.data.len());
                    self.stats.evictions += 1;
                }
                None => break,
            }
        }
        while self.shortcut_used > self.shortcut_capacity {
            match self.shortcuts.pop_lru() {
                Some((k, _)) => {
                    self.shortcut_used -= shortcut_weight(&k);
                    self.stats.evictions += 1;
                }
                None => break,
            }
        }
        self.refresh_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc(i: u64) -> ValueLoc {
        ValueLoc::new(i, 64)
    }

    #[test]
    fn no_cache_always_misses() {
        let mut c = NoCache::default();
        c.admit_value(b"a", &[1; 10], loc(1));
        assert_eq!(c.lookup(b"a"), CacheLookup::Miss);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.capacity_bytes(), 0);
    }

    #[test]
    fn shortcut_only_never_stores_values() {
        let mut c = StaticCache::new(10_000, 0.0);
        c.admit_value(b"a", &[1; 100], loc(1));
        match c.lookup(b"a") {
            CacheLookup::Shortcut(l) => assert_eq!(l, loc(1)),
            other => panic!("expected shortcut hit, got {other:?}"),
        }
        assert_eq!(c.stats().value_entries, 0);
        assert_eq!(c.name(), "shortcut-only");
    }

    #[test]
    fn value_only_never_stores_shortcuts() {
        let mut c = StaticCache::new(10_000, 1.0);
        c.admit_shortcut(b"a", loc(1));
        assert_eq!(c.lookup(b"a"), CacheLookup::Miss);
        c.admit_value(b"b", &[2; 100], loc(2));
        assert!(matches!(c.lookup(b"b"), CacheLookup::Value(_)));
        assert_eq!(c.stats().shortcut_entries, 0);
        assert_eq!(c.name(), "value-only");
    }

    #[test]
    fn static_split_respects_both_budgets() {
        let mut c = StaticCache::new(2_000, 0.5);
        for i in 0..100u32 {
            let key = format!("key{i:04}").into_bytes();
            c.admit_value(&key, &[1u8; 80], loc(u64::from(i)));
        }
        let s = c.stats();
        assert!(s.bytes_used <= 2_000);
        assert!(s.value_entries > 0);
        assert!(s.shortcut_entries > 0);
        assert_eq!(c.name(), "static");
    }

    #[test]
    fn lru_eviction_in_value_region() {
        // Room for roughly two 100-byte values.
        let mut c = StaticCache::new(300, 1.0);
        c.admit_value(b"a", &[1; 100], loc(1));
        c.admit_value(b"b", &[2; 100], loc(2));
        c.lookup(b"a"); // a is now MRU
        c.admit_value(b"c", &[3; 100], loc(3));
        assert!(matches!(c.lookup(b"a"), CacheLookup::Value(_)));
        assert_eq!(
            c.lookup(b"b"),
            CacheLookup::Miss,
            "LRU entry should have been evicted"
        );
    }

    #[test]
    fn local_write_drops_stale_shortcut() {
        let mut c = StaticCache::new(10_000, 0.5);
        c.admit_shortcut(b"a", loc(1));
        c.on_local_write(b"a", &[9; 50], loc(2));
        match c.lookup(b"a") {
            CacheLookup::Value(v) => assert_eq!(v, vec![9; 50]),
            CacheLookup::Shortcut(l) => assert_eq!(l, loc(2), "stale shortcut survived"),
            CacheLookup::Miss => panic!("expected a hit"),
        }
    }

    #[test]
    fn capacity_change_evicts() {
        let mut c = StaticCache::new(5_000, 0.5);
        for i in 0..40u32 {
            let key = format!("key{i:04}").into_bytes();
            c.admit_value(&key, &[1u8; 80], loc(u64::from(i)));
        }
        c.set_capacity_bytes(600);
        assert!(c.stats().bytes_used <= 600);
    }

    #[test]
    fn invalidate_and_clear() {
        let mut c = StaticCache::new(10_000, 0.5);
        c.admit_value(b"a", &[1; 10], loc(1));
        c.invalidate(b"a");
        assert_eq!(c.lookup(b"a"), CacheLookup::Miss);
        c.admit_value(b"b", &[1; 10], loc(2));
        c.clear();
        assert_eq!(c.stats().bytes_used, 0);
    }
}
