//! A small LFU-ordered map used for shortcut entries.
//!
//! Eviction removes the entry with the lowest access frequency (ties broken
//! by least-recent insertion), matching the paper's choice of
//! least-frequently-used eviction for shortcuts so that frequently accessed
//! keys survive skewed workloads.

use std::collections::{BTreeMap, HashMap};

#[derive(Debug)]
struct Slot<V> {
    value: V,
    freq: u64,
    tick: u64,
}

/// An LFU-ordered map from byte-string keys to `V`.
#[derive(Debug)]
pub struct LfuMap<V> {
    entries: HashMap<Vec<u8>, Slot<V>>,
    order: BTreeMap<(u64, u64), Vec<u8>>,
    tick: u64,
}

impl<V> Default for LfuMap<V> {
    fn default() -> Self {
        LfuMap {
            entries: HashMap::new(),
            order: BTreeMap::new(),
            tick: 0,
        }
    }
}

impl<V> LfuMap<V> {
    /// Create an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` if `key` is present.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.entries.contains_key(key)
    }

    /// Access frequency of `key`, if present.
    pub fn frequency(&self, key: &[u8]) -> Option<u64> {
        self.entries.get(key).map(|s| s.freq)
    }

    /// Get without counting an access.
    pub fn peek(&self, key: &[u8]) -> Option<&V> {
        self.entries.get(key).map(|s| &s.value)
    }

    /// Get, counting one access.
    pub fn get(&mut self, key: &[u8]) -> Option<&mut V> {
        self.tick += 1;
        let tick = self.tick;
        let slot = self.entries.get_mut(key)?;
        self.order.remove(&(slot.freq, slot.tick));
        slot.freq += 1;
        slot.tick = tick;
        self.order.insert((slot.freq, slot.tick), key.to_vec());
        Some(&mut slot.value)
    }

    /// Insert with an initial frequency (used to inherit access history when
    /// a value is demoted to a shortcut). Returns the previous payload.
    pub fn insert_with_frequency(&mut self, key: &[u8], value: V, freq: u64) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        let prev = self
            .entries
            .insert(key.to_vec(), Slot { value, freq, tick });
        if let Some(p) = &prev {
            self.order.remove(&(p.freq, p.tick));
        }
        self.order.insert((freq, tick), key.to_vec());
        prev.map(|s| s.value)
    }

    /// Insert with frequency 1.
    pub fn insert(&mut self, key: &[u8], value: V) -> Option<V> {
        self.insert_with_frequency(key, value, 1)
    }

    /// Remove an entry, returning its payload and frequency.
    pub fn remove(&mut self, key: &[u8]) -> Option<(V, u64)> {
        let slot = self.entries.remove(key)?;
        self.order.remove(&(slot.freq, slot.tick));
        Some((slot.value, slot.freq))
    }

    /// The least-frequently-used key.
    pub fn lfu_key(&self) -> Option<&[u8]> {
        self.order.values().next().map(|k| k.as_slice())
    }

    /// Remove and return the least-frequently-used entry with its frequency.
    pub fn pop_lfu(&mut self) -> Option<(Vec<u8>, V, u64)> {
        let (&rank, _) = self.order.iter().next()?;
        let key = self.order.remove(&rank)?;
        let slot = self.entries.remove(&key)?;
        Some((key, slot.value, slot.freq))
    }

    /// The `n` least-frequently-used keys (ascending by frequency) together
    /// with their frequencies, without removing them.
    pub fn least_frequent(&self, n: usize) -> Vec<(&[u8], u64)> {
        self.order
            .iter()
            .take(n)
            .map(|((freq, _), key)| (key.as_slice(), *freq))
            .collect()
    }

    /// Iterate over all `(key, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<u8>, &V)> {
        self.entries.iter().map(|(k, s)| (k, &s.value))
    }

    /// Remove everything.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_order_is_lfu() {
        let mut m = LfuMap::new();
        m.insert(b"a", 1);
        m.insert(b"b", 2);
        m.insert(b"c", 3);
        // Access a twice, b once.
        m.get(b"a");
        m.get(b"a");
        m.get(b"b");
        assert_eq!(m.lfu_key(), Some(b"c".as_slice()));
        let (k, v, f) = m.pop_lfu().unwrap();
        assert_eq!((k.as_slice(), v, f), (b"c".as_slice(), 3, 1));
        let (k, _, _) = m.pop_lfu().unwrap();
        assert_eq!(k, b"b".to_vec());
    }

    #[test]
    fn frequency_inheritance() {
        let mut m = LfuMap::new();
        m.insert_with_frequency(b"hot", 1, 100);
        m.insert(b"cold", 2);
        assert_eq!(m.frequency(b"hot"), Some(100));
        assert_eq!(m.lfu_key(), Some(b"cold".as_slice()));
    }

    #[test]
    fn least_frequent_listing() {
        let mut m = LfuMap::new();
        for (k, n) in [(b"a", 5), (b"b", 1), (b"c", 3)] {
            m.insert_with_frequency(k, 0, n);
        }
        let lf = m.least_frequent(2);
        assert_eq!(lf[0], (b"b".as_slice(), 1));
        assert_eq!(lf[1], (b"c".as_slice(), 3));
        assert_eq!(m.least_frequent(10).len(), 3);
    }

    #[test]
    fn remove_and_reinsert() {
        let mut m = LfuMap::new();
        m.insert(b"a", 7);
        m.get(b"a");
        let (v, f) = m.remove(b"a").unwrap();
        assert_eq!((v, f), (7, 2));
        assert!(m.is_empty());
        assert!(m.remove(b"a").is_none());
    }
}
