//! The cache-policy trait and shared types.

use serde::{Deserialize, Serialize};

/// Location of a value inside the DPM pool: address and length.
///
/// This mirrors the packed location stored in the DPM index; the cache crate
/// keeps its own copy of the type so it has no dependency on the DPM layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ValueLoc {
    /// Byte offset of the value in the DPM pool.
    pub addr: u64,
    /// Value length in bytes.
    pub len: u32,
}

impl ValueLoc {
    /// A sentinel location used in tests.
    pub fn new(addr: u64, len: u32) -> Self {
        ValueLoc { addr, len }
    }
}

/// Result of a cache lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheLookup {
    /// The full value was cached: 0 network round trips needed.
    Value(Vec<u8>),
    /// Only the location was cached: 1 one-sided READ fetches the value.
    Shortcut(ValueLoc),
    /// Nothing cached: the index must be traversed remotely.
    Miss,
}

impl CacheLookup {
    /// `true` for either kind of hit.
    pub fn is_hit(&self) -> bool {
        !matches!(self, CacheLookup::Miss)
    }
}

/// Which cache policy to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheKind {
    /// No caching at all (every access traverses the remote index).
    None,
    /// Cache only shortcuts (Clover-style, and the Dinomo-S variant).
    ShortcutOnly,
    /// Cache only full values.
    ValueOnly,
    /// Reserve the given percentage of capacity for values, rest for
    /// shortcuts (the paper's Static-20/40/80 comparison points).
    StaticFraction(u8),
    /// Disaggregated Adaptive Caching.
    Dac,
}

/// Counters exposed by every cache policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that found a full value.
    pub value_hits: u64,
    /// Lookups that found a shortcut.
    pub shortcut_hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Shortcut→value promotions (DAC only).
    pub promotions: u64,
    /// Value→shortcut demotions (DAC only).
    pub demotions: u64,
    /// Entries evicted entirely.
    pub evictions: u64,
    /// Bytes currently accounted against the capacity budget.
    pub bytes_used: u64,
    /// Capacity budget in bytes.
    pub capacity_bytes: u64,
    /// Number of value entries resident.
    pub value_entries: u64,
    /// Number of shortcut entries resident.
    pub shortcut_entries: u64,
}

impl CacheStats {
    /// Total lookups observed.
    pub fn lookups(&self) -> u64 {
        self.value_hits + self.shortcut_hits + self.misses
    }

    /// Fraction of lookups that hit (value or shortcut).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            (self.value_hits + self.shortcut_hits) as f64 / total as f64
        }
    }

    /// Fraction of lookups that hit a full value (the parenthesised numbers
    /// in the paper's Table 6).
    pub fn value_hit_ratio(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            self.value_hits as f64 / total as f64
        }
    }
}

/// Fixed per-entry bookkeeping overhead charged for a shortcut entry:
/// 8-byte DPM pointer, 4-byte length, access counter and map overhead.
pub const SHORTCUT_OVERHEAD: usize = 24;
/// Fixed per-entry bookkeeping overhead charged for a value entry.
pub const VALUE_OVERHEAD: usize = 32;

/// Bytes a shortcut entry for `key` occupies in the cache budget.
pub fn shortcut_weight(key: &[u8]) -> usize {
    key.len() + SHORTCUT_OVERHEAD
}

/// Bytes a value entry for `key` with a `value_len`-byte value occupies.
pub fn value_weight(key: &[u8], value_len: usize) -> usize {
    key.len() + value_len + VALUE_OVERHEAD
}

/// The interface every KVS-node cache policy implements.
///
/// The KVS node drives the cache as follows:
/// 1. [`lookup`](KnCache::lookup) on every read;
/// 2. on a shortcut hit it fetches the value with one one-sided READ and
///    offers it back via [`admit_value`](KnCache::admit_value) (DAC decides
///    whether to promote);
/// 3. on a miss it resolves the value through the remote index, reports the
///    observed cost via [`record_miss_cost`](KnCache::record_miss_cost), and
///    offers the value and its location via [`admit_value`](KnCache::admit_value);
/// 4. on a write it calls [`on_local_write`](KnCache::on_local_write) — the
///    KN wrote the log entry itself, so it knows the new location for free.
pub trait KnCache: Send {
    /// Short policy name used in benchmark output.
    fn name(&self) -> &'static str;

    /// Look up a key.
    fn lookup(&mut self, key: &[u8]) -> CacheLookup;

    /// Offer a freshly fetched value (after a shortcut hit or a miss).
    fn admit_value(&mut self, key: &[u8], value: &[u8], loc: ValueLoc);

    /// Offer a location discovered without the value (e.g. an index lookup
    /// that did not fetch the value bytes).
    fn admit_shortcut(&mut self, key: &[u8], loc: ValueLoc);

    /// The KN itself wrote this key (it knows both value and location).
    fn on_local_write(&mut self, key: &[u8], value: &[u8], loc: ValueLoc);

    /// Drop any entry for `key` (used when ownership moves away or a shared
    /// key is de-replicated).
    fn invalidate(&mut self, key: &[u8]);

    /// Report the measured cost, in round trips, of a full cache miss.  DAC
    /// keeps a moving average of this to evaluate Equation 1.
    fn record_miss_cost(&mut self, rts: u32);

    /// Drop everything (used when a KN hands its partition away).
    fn clear(&mut self);

    /// Current statistics.
    fn stats(&self) -> CacheStats;

    /// Capacity budget in bytes.
    fn capacity_bytes(&self) -> usize;

    /// Change the capacity budget (evicting as needed).
    fn set_capacity_bytes(&mut self, capacity: usize);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_ratios() {
        let s = CacheStats {
            value_hits: 50,
            shortcut_hits: 30,
            misses: 20,
            ..CacheStats::default()
        };
        assert_eq!(s.lookups(), 100);
        assert!((s.hit_ratio() - 0.8).abs() < 1e-9);
        assert!((s.value_hit_ratio() - 0.5).abs() < 1e-9);
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
    }

    #[test]
    fn weights_account_for_key_and_value() {
        let k = b"user0001";
        assert_eq!(shortcut_weight(k), 8 + SHORTCUT_OVERHEAD);
        assert_eq!(value_weight(k, 1024), 8 + 1024 + VALUE_OVERHEAD);
        assert!(value_weight(k, 64) > shortcut_weight(k));
    }

    #[test]
    fn lookup_hit_classification() {
        assert!(CacheLookup::Value(vec![1]).is_hit());
        assert!(CacheLookup::Shortcut(ValueLoc::new(1, 1)).is_hit());
        assert!(!CacheLookup::Miss.is_hit());
    }
}
