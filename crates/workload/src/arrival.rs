//! Arrival-rate schedules for open-loop load generation.
//!
//! A closed-loop client issues its next request when the previous one
//! returns, so a slow server *slows the load down* and latency percentiles
//! hide behind client count (coordinated omission). An open-loop driver
//! instead fixes the *offered* arrival rate up front: this module turns
//! `(process, rate, seed)` into the deterministic schedule of arrival
//! times the driver then replays, measuring each operation's latency from
//! its **scheduled** arrival — queueing delay included — no matter how
//! late the system actually got to it.
//!
//! The schedule is a pure function of its arguments: the same seed yields
//! a byte-identical schedule, which is what makes open-loop runs
//! replayable the same way the linearizability checker's scenarios are.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How inter-arrival gaps are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Evenly spaced arrivals (inter-arrival time exactly `1/rate`): the
    /// best case for the server, isolating service-time tails from
    /// arrival burstiness.
    FixedRate,
    /// Poisson arrivals (exponential inter-arrival times with mean
    /// `1/rate`): the open-system model the paper's latency-vs-load
    /// figures assume, with the natural burstiness that makes queues
    /// form below saturation.
    Poisson,
}

/// Generate the arrival schedule: `n` monotone non-decreasing arrival
/// offsets in nanoseconds from the run's start, targeting `rate_ops_per_sec`
/// offered load. Deterministic: a pure function of
/// `(process, rate_ops_per_sec, n, seed)` (the seed only matters for
/// [`ArrivalProcess::Poisson`]).
pub fn arrival_schedule(
    process: ArrivalProcess,
    rate_ops_per_sec: f64,
    n: u64,
    seed: u64,
) -> Vec<u64> {
    assert!(
        rate_ops_per_sec.is_finite() && rate_ops_per_sec > 0.0,
        "offered rate must be a positive number of ops/sec"
    );
    let mean_gap_ns = 1e9 / rate_ops_per_sec;
    let mut schedule = Vec::with_capacity(n as usize);
    match process {
        ArrivalProcess::FixedRate => {
            // Accumulate in f64 and round per arrival so the schedule
            // tracks the ideal line without integer-truncation drift.
            for i in 0..n {
                schedule.push((i as f64 * mean_gap_ns) as u64);
            }
        }
        ArrivalProcess::Poisson => {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xA661_4A11u64.rotate_left(17));
            let mut clock_ns = 0.0f64;
            for _ in 0..n {
                let u: f64 = rng.gen();
                // Inverse-CDF exponential draw; 1-u is in (0, 1], so the
                // log argument is never zero.
                clock_ns += -(1.0 - u).ln() * mean_gap_ns;
                schedule.push(clock_ns as u64);
            }
        }
    }
    schedule
}

/// Derive the per-session seed for simulated client session `session` of a
/// workload seeded with `base_seed`. Open-loop drivers multiplex tens of
/// thousands of sessions onto a few worker threads; each session's op
/// stream must be (a) independent of the others and (b) reproducible from
/// `(base_seed, session)` alone.
pub fn session_seed(base_seed: u64, session: u32) -> u64 {
    // SplitMix64 over (base ^ session) — cheap, and adjacent session ids
    // land in unrelated parts of the stream space.
    let mut z = base_seed ^ ((session as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_pure_functions_of_their_seed() {
        for process in [ArrivalProcess::FixedRate, ArrivalProcess::Poisson] {
            let a = arrival_schedule(process, 10_000.0, 5_000, 7);
            let b = arrival_schedule(process, 10_000.0, 5_000, 7);
            assert_eq!(a, b, "{process:?} schedule not deterministic");
        }
        let a = arrival_schedule(ArrivalProcess::Poisson, 10_000.0, 5_000, 7);
        let c = arrival_schedule(ArrivalProcess::Poisson, 10_000.0, 5_000, 8);
        assert_ne!(a, c, "different seeds should draw different gaps");
    }

    #[test]
    fn schedules_are_monotone_and_hit_the_offered_rate() {
        for process in [ArrivalProcess::FixedRate, ArrivalProcess::Poisson] {
            let rate = 50_000.0;
            let n = 100_000u64;
            let s = arrival_schedule(process, rate, n, 3);
            assert_eq!(s.len(), n as usize);
            assert!(s.windows(2).all(|w| w[0] <= w[1]), "{process:?} not sorted");
            // The span of n arrivals at `rate` ops/s is ~(n-1)/rate; the
            // Poisson span concentrates tightly around it at this n.
            let span_s = (*s.last().unwrap() - s[0]) as f64 / 1e9;
            let ideal = (n - 1) as f64 / rate;
            assert!(
                (span_s / ideal - 1.0).abs() < 0.05,
                "{process:?} span {span_s:.3}s vs ideal {ideal:.3}s"
            );
        }
    }

    #[test]
    fn fixed_rate_is_evenly_spaced_and_poisson_is_not() {
        let fixed = arrival_schedule(ArrivalProcess::FixedRate, 1_000.0, 100, 1);
        let gaps: Vec<u64> = fixed.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(gaps.iter().all(|&g| (999_999..=1_000_001).contains(&g)));

        let poisson = arrival_schedule(ArrivalProcess::Poisson, 1_000.0, 1_000, 1);
        let pgaps: Vec<u64> = poisson.windows(2).map(|w| w[1] - w[0]).collect();
        let distinct: std::collections::HashSet<u64> = pgaps.iter().copied().collect();
        assert!(distinct.len() > 900, "poisson gaps should be spread out");
    }

    #[test]
    fn session_seeds_are_distinct_and_stable() {
        let a = session_seed(42, 0);
        assert_eq!(a, session_seed(42, 0));
        let seeds: std::collections::HashSet<u64> =
            (0..10_000u32).map(|s| session_seed(42, s)).collect();
        assert_eq!(seeds.len(), 10_000, "session seeds must not collide");
        assert_ne!(session_seed(42, 5), session_seed(43, 5));
    }
}
