//! Key-popularity distributions.

use rand::Rng;

/// Which key-popularity distribution to draw from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDistribution {
    /// Every key equally likely.
    Uniform,
    /// Zipfian with the given coefficient (`theta`). The paper uses 0.5
    /// ("low skew, close to uniform"), 0.99 (YCSB default, "moderate skew")
    /// and 2.0 ("high skew").
    Zipfian {
        /// Zipf exponent.
        theta: f64,
    },
}

impl KeyDistribution {
    /// The paper's low-skew setting.
    pub const LOW_SKEW: KeyDistribution = KeyDistribution::Zipfian { theta: 0.5 };
    /// The paper's moderate-skew (YCSB default) setting.
    pub const MODERATE_SKEW: KeyDistribution = KeyDistribution::Zipfian { theta: 0.99 };
    /// The paper's high-skew setting.
    pub const HIGH_SKEW: KeyDistribution = KeyDistribution::Zipfian { theta: 2.0 };
}

/// A Zipfian rank sampler over `0..n` using an explicit inverse CDF.
///
/// YCSB's rejection-sampling approximation is only valid for exponents below
/// one; the paper also needs `theta = 2`, so we build the cumulative
/// distribution explicitly (8 bytes per key) and binary-search it.  Ranks are
/// optionally scrambled (hashed) across the key space, as YCSB does, so that
/// "hot" keys are not adjacent ids.
#[derive(Debug, Clone)]
pub struct ZipfianGenerator {
    cdf: Vec<f64>,
    scrambled: bool,
    n: u64,
}

impl ZipfianGenerator {
    /// Build a sampler over `n` keys with exponent `theta`, optionally
    /// scrambling ranks across the id space.
    pub fn new(n: u64, theta: f64, scrambled: bool) -> Self {
        assert!(n > 0, "key space must be non-empty");
        let n_usize = usize::try_from(n).expect("key space too large for in-memory CDF");
        let mut cdf = Vec::with_capacity(n_usize);
        let mut acc = 0.0f64;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfianGenerator { cdf, scrambled, n }
    }

    /// Number of keys.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draw a key id in `0..n`.
    pub fn next<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let rank = match self.cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
            Ok(i) => i as u64,
            Err(i) => (i as u64).min(self.n - 1),
        };
        if self.scrambled {
            scramble(rank) % self.n
        } else {
            rank
        }
    }

    /// The `k` most popular key ids (useful for hot-key experiments).
    pub fn hottest(&self, k: usize) -> Vec<u64> {
        (0..self.n.min(k as u64))
            .map(|rank| {
                if self.scrambled {
                    scramble(rank) % self.n
                } else {
                    rank
                }
            })
            .collect()
    }
}

/// FNV-style scramble used to spread ranks over the id space (YCSB's
/// "scrambled zipfian").
fn scramble(rank: u64) -> u64 {
    let mut h = rank ^ 0xcbf2_9ce4_8422_2325;
    h = h.wrapping_mul(0x0000_0100_0000_01b3);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 29;
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn histogram(dist: &ZipfianGenerator, samples: usize) -> HashMap<u64, u64> {
        let mut rng = StdRng::seed_from_u64(7);
        let mut h = HashMap::new();
        for _ in 0..samples {
            *h.entry(dist.next(&mut rng)).or_insert(0) += 1;
        }
        h
    }

    #[test]
    fn samples_stay_in_range() {
        let z = ZipfianGenerator::new(1000, 0.99, true);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.next(&mut rng) < 1000);
        }
    }

    #[test]
    fn high_theta_is_more_skewed_than_low_theta() {
        let n = 10_000u64;
        let low = ZipfianGenerator::new(n, 0.5, false);
        let high = ZipfianGenerator::new(n, 2.0, false);
        let h_low = histogram(&low, 50_000);
        let h_high = histogram(&high, 50_000);
        let top_low = (0..10)
            .map(|i| h_low.get(&i).copied().unwrap_or(0))
            .sum::<u64>();
        let top_high = (0..10)
            .map(|i| h_high.get(&i).copied().unwrap_or(0))
            .sum::<u64>();
        assert!(
            top_high > 3 * top_low,
            "theta=2 should concentrate mass on the head: {top_high} vs {top_low}"
        );
        // With theta = 2 the vast majority of accesses hit a handful of keys.
        assert!(top_high as f64 / 50_000.0 > 0.8);
    }

    #[test]
    fn theta_099_roughly_matches_ycsb_expectations() {
        let n = 100_000u64;
        let z = ZipfianGenerator::new(n, 0.99, false);
        let h = histogram(&z, 100_000);
        let top_100: u64 = (0..100).map(|i| h.get(&i).copied().unwrap_or(0)).sum();
        let frac = top_100 as f64 / 100_000.0;
        // YCSB zipfian(0.99): the most popular ~0.1% of keys draw roughly a
        // third to a half of the accesses.
        assert!(frac > 0.25 && frac < 0.6, "unexpected head mass {frac}");
    }

    #[test]
    fn scrambling_spreads_hot_keys_but_preserves_skew() {
        let n = 10_000u64;
        let scrambled = ZipfianGenerator::new(n, 0.99, true);
        let hot = scrambled.hottest(4);
        // Hot ids are not simply 0,1,2,3.
        assert_ne!(hot, vec![0, 1, 2, 3]);
        let h = histogram(&scrambled, 50_000);
        let max = h.values().copied().max().unwrap();
        assert!(
            max > 1_000,
            "scrambled distribution lost its skew (max={max})"
        );
    }

    #[test]
    fn uniform_distribution_constant_exists() {
        assert_eq!(
            KeyDistribution::MODERATE_SKEW,
            KeyDistribution::Zipfian { theta: 0.99 }
        );
        assert!(matches!(KeyDistribution::Uniform, KeyDistribution::Uniform));
    }
}
