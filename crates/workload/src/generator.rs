//! The operation-stream generator.

use crate::keys::key_for;
use crate::mix::WorkloadMix;
use crate::zipf::{KeyDistribution, ZipfianGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A single client operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operation {
    /// `lookup(key)`.
    Read(Vec<u8>),
    /// `update(key, value)` of an existing key.
    Update(Vec<u8>, Vec<u8>),
    /// `insert(key, value)` of a new key.
    Insert(Vec<u8>, Vec<u8>),
    /// `delete(key)`.
    Delete(Vec<u8>),
    /// `scan(start, n)`: up to `n` consecutive keys starting at the
    /// smallest key `>= start`, in key order.
    Scan(Vec<u8>, usize),
}

impl Operation {
    /// The key this operation targets (the start key, for scans).
    pub fn key(&self) -> &[u8] {
        match self {
            Operation::Read(k) | Operation::Delete(k) => k,
            Operation::Update(k, _) | Operation::Insert(k, _) => k,
            Operation::Scan(k, _) => k,
        }
    }

    /// `true` for updates, inserts and deletes.
    pub fn is_write(&self) -> bool {
        !matches!(self, Operation::Read(_) | Operation::Scan(..))
    }
}

/// Configuration of a workload stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Number of keys loaded before the measurement phase.
    pub num_keys: u64,
    /// Key length in bytes (the paper uses 8).
    pub key_len: usize,
    /// Value length in bytes (the paper uses 1024; the DAC microbenchmark
    /// uses 64).
    pub value_len: usize,
    /// Request mix.
    pub mix: WorkloadMix,
    /// Key-popularity distribution.
    pub distribution: KeyDistribution,
    /// RNG seed (workloads are deterministic given the seed).
    pub seed: u64,
    /// Largest scan length a scan operation requests (each scan draws a
    /// length uniformly in `1..=max_scan_len`). Only consulted when the
    /// mix has a non-zero scan fraction.
    pub max_scan_len: usize,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            num_keys: 100_000,
            key_len: 8,
            value_len: 1024,
            mix: WorkloadMix::READ_ONLY,
            distribution: KeyDistribution::MODERATE_SKEW,
            seed: 42,
            max_scan_len: 16,
        }
    }
}

impl WorkloadConfig {
    /// The GC-pressure preset: [`WorkloadMix::SKEWED_OVERWRITE`] (no
    /// inserts — the hot set is fixed) over a small key space with a
    /// high-skew Zipfian chooser. Under it, sealed log segments fill with
    /// superseded hot-key versions but stay pinned by the occasional
    /// long-lived cold entry — the workload the `gc_reclaim` bench and
    /// the compactor's churn scenarios reproduce from one constructor.
    pub fn skewed_overwrite(num_keys: u64, value_len: usize, seed: u64) -> Self {
        WorkloadConfig {
            num_keys: num_keys.max(1),
            key_len: 8,
            value_len,
            mix: WorkloadMix::SKEWED_OVERWRITE,
            distribution: KeyDistribution::HIGH_SKEW,
            seed,
            max_scan_len: 16,
        }
    }
}

/// A deterministic stream of [`Operation`]s following a [`WorkloadConfig`].
///
/// Inserts target fresh key ids beyond the loaded key space (and extend the
/// space readable by later reads), mirroring YCSB's insert behaviour and the
/// paper's "write up to 100 GB of data during the workload including
/// inserts".
#[derive(Debug)]
pub struct WorkloadGenerator {
    config: WorkloadConfig,
    zipf: Option<ZipfianGenerator>,
    rng: StdRng,
    /// Exclusive upper bound of the currently-existing key ids.
    key_space: u64,
    ops_generated: u64,
}

impl WorkloadGenerator {
    /// Create a generator for the given configuration.
    pub fn new(config: WorkloadConfig) -> Self {
        assert!(config.num_keys > 0, "workload needs at least one key");
        assert!(config.mix.is_valid(), "invalid workload mix");
        let zipf = match config.distribution {
            KeyDistribution::Uniform => None,
            KeyDistribution::Zipfian { theta } => {
                Some(ZipfianGenerator::new(config.num_keys, theta, true))
            }
        };
        WorkloadGenerator {
            rng: StdRng::seed_from_u64(config.seed),
            zipf,
            key_space: config.num_keys,
            config,
            ops_generated: 0,
        }
    }

    /// The configuration this generator was created with.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Number of operations generated so far (excluding the load phase).
    pub fn ops_generated(&self) -> u64 {
        self.ops_generated
    }

    /// Current size of the key space (grows with inserts).
    pub fn key_space(&self) -> u64 {
        self.key_space
    }

    /// The `(key, value)` pairs of the load phase. Iterating this fully
    /// before running the stream reproduces the paper's "load 32 GB then run"
    /// methodology at whatever scale `num_keys` dictates.
    pub fn load_phase(&self) -> impl Iterator<Item = (Vec<u8>, Vec<u8>)> + '_ {
        (0..self.config.num_keys).map(move |id| (self.key(id), self.value_for(id)))
    }

    /// The key ids the distribution considers hottest (for hot-key tests).
    pub fn hottest_keys(&self, k: usize) -> Vec<Vec<u8>> {
        match &self.zipf {
            Some(z) => z.hottest(k).into_iter().map(|id| self.key(id)).collect(),
            None => (0..k as u64).map(|id| self.key(id)).collect(),
        }
    }

    fn key(&self, id: u64) -> Vec<u8> {
        key_for(id, self.config.key_len)
    }

    fn value_for(&self, id: u64) -> Vec<u8> {
        // Deterministic value content derived from the id so correctness
        // checks can recompute the expected bytes.
        let fill = (id % 251) as u8;
        vec![fill; self.config.value_len]
    }

    fn pick_existing_key(&mut self) -> u64 {
        let id = match &self.zipf {
            Some(z) => z.next(&mut self.rng),
            None => self.rng.gen_range(0..self.config.num_keys),
        };
        // Inserts may have grown the key space; fold the extra keys in for
        // uniform workloads, keep the zipf head for skewed ones.
        id.min(self.key_space - 1)
    }

    /// Generate the next operation.
    ///
    /// The branch order (read, update, delete, scan, insert) keeps the
    /// stream of every delete-free mix identical to what earlier versions
    /// generated for the same seed — a zero delete fraction collapses the
    /// delete branch to the old update/insert boundary — and likewise a
    /// zero scan fraction collapses the scan branch (the scan length is
    /// drawn *inside* the branch, so scan-free mixes consume exactly the
    /// same RNG stream as before scans existed).
    pub fn next_op(&mut self) -> Operation {
        self.ops_generated += 1;
        let r: f64 = self.rng.gen();
        let mix = self.config.mix;
        if r < mix.read_fraction {
            let id = self.pick_existing_key();
            Operation::Read(self.key(id))
        } else if r < mix.read_fraction + mix.update_fraction {
            let id = self.pick_existing_key();
            Operation::Update(self.key(id), self.value_for(id ^ self.ops_generated))
        } else if r < mix.read_fraction + mix.update_fraction + mix.delete_fraction {
            // Deletes target existing (possibly already-deleted) keys; a
            // later update of the same key re-inserts it, so skewed CRUD
            // mixes cycle hot keys through delete/re-insert — the churn
            // the linearizability checker wants.
            let id = self.pick_existing_key();
            Operation::Delete(self.key(id))
        } else if r < mix.read_fraction
            + mix.update_fraction
            + mix.delete_fraction
            + mix.scan_fraction
        {
            // Scans start at a distribution-chosen existing key (YCSB-E
            // picks Zipfian start keys) and request a short range.
            let id = self.pick_existing_key();
            let n = self.rng.gen_range(0..self.config.max_scan_len.max(1)) + 1;
            Operation::Scan(self.key(id), n)
        } else {
            let id = self.key_space;
            self.key_space += 1;
            Operation::Insert(self.key(id), self.value_for(id))
        }
    }

    /// Generate the next `n` operations — the batched analogue of
    /// [`WorkloadGenerator::next_op`], feeding batched clients
    /// (`KvsClient::execute`) without changing the generated stream: one
    /// `next_batch(n)` equals `n` consecutive `next_op()` calls.
    pub fn next_batch(&mut self, n: usize) -> Vec<Operation> {
        (0..n).map(|_| self.next_op()).collect()
    }

    /// Alias for [`WorkloadGenerator::next_batch`] kept for existing call
    /// sites.
    pub fn batch(&mut self, n: usize) -> Vec<Operation> {
        self.next_batch(n)
    }

    /// Expected value bytes for key id `id` as produced by the load phase.
    pub fn expected_loaded_value(&self, id: u64) -> Vec<u8> {
        self.value_for(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(mix: WorkloadMix) -> WorkloadConfig {
        WorkloadConfig {
            num_keys: 1_000,
            value_len: 64,
            mix,
            ..WorkloadConfig::default()
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = WorkloadGenerator::new(config(WorkloadMix::WRITE_HEAVY_UPDATE));
        let mut b = WorkloadGenerator::new(config(WorkloadMix::WRITE_HEAVY_UPDATE));
        for _ in 0..500 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn next_batch_equals_consecutive_next_ops() {
        let mut a = WorkloadGenerator::new(config(WorkloadMix::WRITE_HEAVY_INSERT));
        let mut b = WorkloadGenerator::new(config(WorkloadMix::WRITE_HEAVY_INSERT));
        let batched: Vec<Operation> = a.next_batch(64);
        let singles: Vec<Operation> = (0..64).map(|_| b.next_op()).collect();
        assert_eq!(batched, singles);
        assert_eq!(a.key_space(), b.key_space());
        assert_eq!(a.ops_generated(), b.ops_generated());
    }

    #[test]
    fn mix_fractions_are_respected() {
        let mut g = WorkloadGenerator::new(config(WorkloadMix::READ_MOSTLY_UPDATE));
        let ops = g.batch(20_000);
        let reads = ops
            .iter()
            .filter(|o| matches!(o, Operation::Read(_)))
            .count();
        let updates = ops
            .iter()
            .filter(|o| matches!(o, Operation::Update(..)))
            .count();
        let frac_reads = reads as f64 / ops.len() as f64;
        let frac_updates = updates as f64 / ops.len() as f64;
        assert!((frac_reads - 0.95).abs() < 0.01, "reads {frac_reads}");
        assert!((frac_updates - 0.05).abs() < 0.01, "updates {frac_updates}");
    }

    #[test]
    fn inserts_extend_the_key_space_with_fresh_keys() {
        let mut g = WorkloadGenerator::new(config(WorkloadMix::WRITE_HEAVY_INSERT));
        let before = g.key_space();
        let ops = g.batch(1_000);
        let inserts: Vec<_> = ops
            .iter()
            .filter(|o| matches!(o, Operation::Insert(..)))
            .collect();
        assert!(!inserts.is_empty());
        assert_eq!(g.key_space(), before + inserts.len() as u64);
        // Inserted keys are all distinct and not part of the loaded space.
        let loaded: std::collections::HashSet<Vec<u8>> = g.load_phase().map(|(k, _)| k).collect();
        let mut seen = std::collections::HashSet::new();
        for op in inserts {
            assert!(!loaded.contains(op.key()));
            assert!(seen.insert(op.key().to_vec()), "duplicate insert key");
        }
    }

    #[test]
    fn load_phase_covers_all_keys_with_expected_values() {
        let g = WorkloadGenerator::new(config(WorkloadMix::READ_ONLY));
        let pairs: Vec<_> = g.load_phase().collect();
        assert_eq!(pairs.len(), 1_000);
        assert_eq!(pairs[5].1, g.expected_loaded_value(5));
        assert_eq!(pairs[5].1.len(), 64);
    }

    #[test]
    fn reads_target_loaded_keys() {
        let mut g = WorkloadGenerator::new(config(WorkloadMix::READ_ONLY));
        let loaded: std::collections::HashSet<Vec<u8>> = g.load_phase().map(|(k, _)| k).collect();
        for op in g.batch(2_000) {
            assert!(loaded.contains(op.key()));
            assert!(!op.is_write());
        }
    }

    #[test]
    fn hottest_keys_are_within_key_space() {
        let g = WorkloadGenerator::new(WorkloadConfig {
            distribution: KeyDistribution::HIGH_SKEW,
            ..config(WorkloadMix::WRITE_HEAVY_UPDATE)
        });
        let hot = g.hottest_keys(4);
        assert_eq!(hot.len(), 4);
        let loaded: std::collections::HashSet<Vec<u8>> = g.load_phase().map(|(k, _)| k).collect();
        for k in hot {
            assert!(loaded.contains(&k));
        }
    }

    #[test]
    fn crud_mix_generates_deletes_of_existing_keys() {
        let mut g = WorkloadGenerator::new(config(WorkloadMix::CRUD));
        let ops = g.batch(20_000);
        let deletes: Vec<_> = ops
            .iter()
            .filter(|o| matches!(o, Operation::Delete(_)))
            .collect();
        let frac = deletes.len() as f64 / ops.len() as f64;
        assert!((frac - 0.10).abs() < 0.01, "delete fraction {frac}");
        // Deletes only target keys that exist(ed) — loaded or inserted.
        let key_space = g.key_space();
        for op in &ops {
            if matches!(op, Operation::Delete(_)) {
                let loaded: Vec<Vec<u8>> = (0..key_space).map(|id| key_for(id, 8)).collect();
                assert!(loaded.contains(&op.key().to_vec()));
                break; // spot-check one (the full scan is O(n²))
            }
        }
        // All four op kinds appear.
        assert!(ops.iter().any(|o| matches!(o, Operation::Read(_))));
        assert!(ops.iter().any(|o| matches!(o, Operation::Update(..))));
        assert!(ops.iter().any(|o| matches!(o, Operation::Insert(..))));
    }

    #[test]
    fn delete_free_mix_streams_are_unchanged_by_the_delete_branch() {
        // A zero delete fraction must generate exactly the stream the
        // pre-delete generator produced (same RNG draws, same branches),
        // so existing seeds stay reproducible.
        let mut g = WorkloadGenerator::new(config(WorkloadMix::WRITE_HEAVY_UPDATE));
        for op in g.batch(5_000) {
            assert!(!matches!(op, Operation::Delete(_)));
        }
    }

    #[test]
    fn scan_free_mix_streams_are_unchanged_by_the_scan_branch() {
        // Mirrors the delete-branch determinism test: a zero scan fraction
        // must generate exactly the stream the pre-scan generator produced
        // (same RNG draws, same branches — the scan length is drawn inside
        // the scan branch), so existing seeds stay reproducible.
        let mut g = WorkloadGenerator::new(config(WorkloadMix::CRUD));
        let ops = g.batch(5_000);
        assert!(ops.iter().all(|op| !matches!(op, Operation::Scan(..))));
        // Byte-identical to a generator whose config differs only in
        // max_scan_len — the knob must be inert for scan-free mixes.
        let mut other = WorkloadGenerator::new(WorkloadConfig {
            max_scan_len: 999,
            ..config(WorkloadMix::CRUD)
        });
        assert_eq!(ops, other.batch(5_000));
    }

    #[test]
    fn ycsb_e_mix_generates_mostly_scans_over_existing_keys() {
        let mut g = WorkloadGenerator::new(config(WorkloadMix::YCSB_E));
        let loaded: std::collections::HashSet<Vec<u8>> = g.load_phase().map(|(k, _)| k).collect();
        let max_scan_len = g.config().max_scan_len;
        let ops = g.batch(20_000);
        let scans: Vec<_> = ops
            .iter()
            .filter_map(|o| match o {
                Operation::Scan(start, n) => Some((start, *n)),
                _ => None,
            })
            .collect();
        let frac = scans.len() as f64 / ops.len() as f64;
        assert!((frac - 0.95).abs() < 0.01, "scan fraction {frac}");
        for (start, n) in &scans {
            assert!((1..=max_scan_len).contains(n));
            assert!(!(*start).is_empty());
        }
        // Start keys come from the loaded space (inserts extend it, but
        // the Zipf chooser stays on the head).
        assert!(scans.iter().filter(|(s, _)| loaded.contains(*s)).count() * 10 > scans.len() * 9);
        // The remaining 5% are inserts, and scans are not writes.
        assert!(ops.iter().any(|o| matches!(o, Operation::Insert(..))));
        let scan = Operation::Scan(b"s".to_vec(), 3);
        assert_eq!(scan.key(), b"s");
        assert!(!scan.is_write());
    }

    #[test]
    fn skewed_overwrite_preset_keeps_the_key_space_fixed_and_hot() {
        let mut g = WorkloadGenerator::new(WorkloadConfig::skewed_overwrite(64, 256, 7));
        let before = g.key_space();
        let ops = g.batch(10_000);
        assert_eq!(g.key_space(), before, "no inserts: the hot set is fixed");
        let updates = ops
            .iter()
            .filter(|o| matches!(o, Operation::Update(..)))
            .count();
        assert!(
            (updates as f64 / ops.len() as f64 - 0.95).abs() < 0.01,
            "updates {updates}"
        );
        // High skew: a handful of hot keys absorb most of the overwrites.
        let mut counts: std::collections::HashMap<Vec<u8>, usize> = Default::default();
        for op in &ops {
            *counts.entry(op.key().to_vec()).or_default() += 1;
        }
        let mut sorted: Vec<usize> = counts.values().copied().collect();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top4: usize = sorted.iter().take(4).sum();
        assert!(
            top4 * 2 > ops.len(),
            "top-4 keys should absorb >50% of a high-skew stream, got {top4}/{}",
            ops.len()
        );
    }

    #[test]
    fn uniform_distribution_works() {
        let mut g = WorkloadGenerator::new(WorkloadConfig {
            distribution: KeyDistribution::Uniform,
            ..config(WorkloadMix::READ_ONLY)
        });
        let ops = g.batch(5_000);
        let distinct: std::collections::HashSet<_> = ops.iter().map(|o| o.key().to_vec()).collect();
        assert!(
            distinct.len() > 900,
            "uniform should touch most of 1000 keys"
        );
    }

    #[test]
    fn operation_accessors() {
        let op = Operation::Update(b"k".to_vec(), b"v".to_vec());
        assert_eq!(op.key(), b"k");
        assert!(op.is_write());
        assert!(!Operation::Read(b"k".to_vec()).is_write());
        assert!(Operation::Delete(b"k".to_vec()).is_write());
    }
}
