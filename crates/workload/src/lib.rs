//! # dinomo-workload — YCSB-style workload generation
//!
//! The paper evaluates with YCSB-style workloads (§5): 8-byte keys, 1 KB
//! values, five request mixes (read-only, two read-mostly and two
//! write-heavy variants) and three key-popularity skews (Zipfian coefficients
//! 0.5, 0.99 and 2.0).  This crate reproduces those workloads:
//!
//! * [`ZipfianGenerator`] / [`KeyDistribution`] — uniform and Zipfian key
//!   popularity, including the scrambled variant YCSB uses so that hot keys
//!   are spread across the key space rather than clustered at low ids;
//! * [`WorkloadMix`] — the five request mixes used in Figures 5–8;
//! * [`WorkloadGenerator`] — a seeded, deterministic stream of
//!   [`Operation`]s over a configurable key space, including the load phase
//!   and insert-driven key-space growth;
//! * [`keys::key_for`] — the canonical fixed-width key encoding.

#![warn(missing_docs)]

pub mod arrival;
pub mod generator;
pub mod keys;
pub mod mix;
pub mod zipf;

pub use arrival::{arrival_schedule, session_seed, ArrivalProcess};
pub use generator::{Operation, WorkloadConfig, WorkloadGenerator};
pub use keys::{key_for, DEFAULT_KEY_LEN};
pub use mix::WorkloadMix;
pub use zipf::{KeyDistribution, ZipfianGenerator};
