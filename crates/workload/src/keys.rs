//! Canonical key encoding.

/// Length of the keys the paper uses (8 bytes).
pub const DEFAULT_KEY_LEN: usize = 8;

/// Encode the logical key id `id` as a fixed-width byte-string key of
/// `key_len` bytes.
///
/// Short keys embed the id in big-endian binary (so 8-byte keys match the
/// paper exactly); longer keys get a human-readable `user...` prefix padded
/// with the zero-filled decimal id, which is convenient for debugging.
pub fn key_for(id: u64, key_len: usize) -> Vec<u8> {
    if key_len <= 16 {
        let mut k = vec![0u8; key_len];
        let bytes = id.to_be_bytes();
        let n = key_len.min(8);
        k[key_len - n..].copy_from_slice(&bytes[8 - n..]);
        k
    } else {
        let mut s = format!("user{:0width$}", id, width = key_len - 4);
        s.truncate(key_len);
        s.into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_keys_are_eight_bytes_and_unique() {
        let a = key_for(1, DEFAULT_KEY_LEN);
        let b = key_for(2, DEFAULT_KEY_LEN);
        assert_eq!(a.len(), 8);
        assert_eq!(b.len(), 8);
        assert_ne!(a, b);
        assert_eq!(key_for(1, 8), key_for(1, 8));
    }

    #[test]
    fn long_keys_are_padded_and_fixed_width() {
        let k = key_for(42, 24);
        assert_eq!(k.len(), 24);
        assert!(k.starts_with(b"user"));
    }

    #[test]
    fn small_key_lengths_do_not_panic() {
        assert_eq!(key_for(300, 1).len(), 1);
        assert_eq!(key_for(1, 4).len(), 4);
        assert_ne!(key_for(5, 4), key_for(6, 4));
    }
}
