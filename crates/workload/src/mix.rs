//! Request mixes.

use serde::{Deserialize, Serialize};

/// A request mix: fractions of reads, updates, inserts and deletes (they
/// must sum to 1.0). The paper's benchmark mixes use no deletes (its
/// evaluation does not benchmark them); the delete fraction exists for the
/// correctness workloads — the linearizability checker's generative driver
/// needs delete/re-insert churn to catch resurrection and stale-tombstone
/// bugs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadMix {
    /// Short name used in benchmark output (e.g. "50r50u").
    pub name: &'static str,
    /// Fraction of lookup operations.
    pub read_fraction: f64,
    /// Fraction of update operations (overwrite an existing key).
    pub update_fraction: f64,
    /// Fraction of insert operations (new keys).
    pub insert_fraction: f64,
    /// Fraction of delete operations (remove an existing key).
    pub delete_fraction: f64,
    /// Fraction of scan operations (ordered range reads of a handful of
    /// consecutive keys starting at a chosen key).
    pub scan_fraction: f64,
}

impl WorkloadMix {
    /// 100 % reads.
    pub const READ_ONLY: WorkloadMix = WorkloadMix {
        name: "100r",
        read_fraction: 1.0,
        update_fraction: 0.0,
        insert_fraction: 0.0,
        delete_fraction: 0.0,
        scan_fraction: 0.0,
    };
    /// 95 % reads / 5 % updates.
    pub const READ_MOSTLY_UPDATE: WorkloadMix = WorkloadMix {
        name: "95r5u",
        read_fraction: 0.95,
        update_fraction: 0.05,
        insert_fraction: 0.0,
        delete_fraction: 0.0,
        scan_fraction: 0.0,
    };
    /// 95 % reads / 5 % inserts.
    pub const READ_MOSTLY_INSERT: WorkloadMix = WorkloadMix {
        name: "95r5i",
        read_fraction: 0.95,
        update_fraction: 0.0,
        insert_fraction: 0.05,
        delete_fraction: 0.0,
        scan_fraction: 0.0,
    };
    /// 50 % reads / 50 % updates.
    pub const WRITE_HEAVY_UPDATE: WorkloadMix = WorkloadMix {
        name: "50r50u",
        read_fraction: 0.5,
        update_fraction: 0.5,
        insert_fraction: 0.0,
        delete_fraction: 0.0,
        scan_fraction: 0.0,
    };
    /// 50 % reads / 50 % inserts.
    pub const WRITE_HEAVY_INSERT: WorkloadMix = WorkloadMix {
        name: "50r50i",
        read_fraction: 0.5,
        update_fraction: 0.0,
        insert_fraction: 0.5,
        delete_fraction: 0.0,
        scan_fraction: 0.0,
    };
    /// 100 % inserts (the Figure 4 merge-capacity stress workload).
    pub const INSERT_ONLY: WorkloadMix = WorkloadMix {
        name: "100i",
        read_fraction: 0.0,
        update_fraction: 0.0,
        insert_fraction: 1.0,
        delete_fraction: 0.0,
        scan_fraction: 0.0,
    };

    /// Full CRUD churn: 50 % reads / 25 % updates / 15 % inserts / 10 %
    /// deletes. Not a paper mix — this is the linearizability checker's
    /// default workload, where delete/re-insert cycling on skewed keys is
    /// what exposes resurrection and stale-tombstone bugs.
    pub const CRUD: WorkloadMix = WorkloadMix {
        name: "50r25u15i10d",
        read_fraction: 0.5,
        update_fraction: 0.25,
        insert_fraction: 0.15,
        delete_fraction: 0.10,
        scan_fraction: 0.0,
    };

    /// Skewed-overwrite: 5 % reads / 95 % updates with **no inserts**, so
    /// the key space stays fixed and a Zipfian chooser keeps rewriting the
    /// same hot set. Not a paper mix — this is the GC-pressure workload:
    /// every segment fills with hot-key overwrites plus a tail of cold
    /// keys written once per pass of the chooser, so sealed segments end
    /// up mostly dead but pinned by a few long-lived entries — the shape
    /// the log-cleaning compactor exists to reclaim (pair it with
    /// [`crate::WorkloadConfig::skewed_overwrite`]).
    pub const SKEWED_OVERWRITE: WorkloadMix = WorkloadMix {
        name: "5r95u",
        read_fraction: 0.05,
        update_fraction: 0.95,
        insert_fraction: 0.0,
        delete_fraction: 0.0,
        scan_fraction: 0.0,
    };

    /// YCSB-E: 95 % short range scans / 5 % inserts. Not one of the
    /// paper's evaluated mixes (the paper's store is point-op-only) —
    /// this is the canonical scan workload the ordered secondary index
    /// exists to serve; start keys follow the configured request
    /// distribution (Zipfian by default for YCSB).
    pub const YCSB_E: WorkloadMix = WorkloadMix {
        name: "95s5i",
        read_fraction: 0.0,
        update_fraction: 0.0,
        insert_fraction: 0.05,
        delete_fraction: 0.0,
        scan_fraction: 0.95,
    };

    /// CRUD churn plus scans: the linearizability checker's scan-mode
    /// workload, racing range reads against the full create/update/delete
    /// cycle (see [`WorkloadMix::CRUD`] for why the deletes matter).
    pub const CRUD_SCAN: WorkloadMix = WorkloadMix {
        name: "40r25u10i10d15s",
        read_fraction: 0.40,
        update_fraction: 0.25,
        insert_fraction: 0.10,
        delete_fraction: 0.10,
        scan_fraction: 0.15,
    };

    /// The five mixes of Figure 5 / Table 6, in the paper's order.
    pub const FIGURE5_MIXES: [WorkloadMix; 5] = [
        WorkloadMix::WRITE_HEAVY_UPDATE,
        WorkloadMix::WRITE_HEAVY_INSERT,
        WorkloadMix::READ_MOSTLY_UPDATE,
        WorkloadMix::READ_MOSTLY_INSERT,
        WorkloadMix::READ_ONLY,
    ];

    /// Fraction of operations that are writes of any kind.
    pub fn write_fraction(&self) -> f64 {
        self.update_fraction + self.insert_fraction + self.delete_fraction
    }

    /// `true` if the fractions sum to 1 (within floating-point tolerance).
    pub fn is_valid(&self) -> bool {
        (self.read_fraction
            + self.update_fraction
            + self.insert_fraction
            + self.delete_fraction
            + self.scan_fraction
            - 1.0)
            .abs()
            < 1e-9
            && self.read_fraction >= 0.0
            && self.update_fraction >= 0.0
            && self.insert_fraction >= 0.0
            && self.delete_fraction >= 0.0
            && self.scan_fraction >= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_predefined_mixes_are_valid() {
        for mix in WorkloadMix::FIGURE5_MIXES.iter().chain([
            &WorkloadMix::INSERT_ONLY,
            &WorkloadMix::CRUD,
            &WorkloadMix::SKEWED_OVERWRITE,
            &WorkloadMix::YCSB_E,
            &WorkloadMix::CRUD_SCAN,
        ]) {
            assert!(mix.is_valid(), "{} is invalid", mix.name);
        }
        assert_eq!(WorkloadMix::FIGURE5_MIXES.len(), 5);
    }

    #[test]
    fn write_fractions_match_names() {
        assert_eq!(WorkloadMix::READ_ONLY.write_fraction(), 0.0);
        assert!((WorkloadMix::WRITE_HEAVY_UPDATE.write_fraction() - 0.5).abs() < 1e-9);
        assert!((WorkloadMix::READ_MOSTLY_INSERT.write_fraction() - 0.05).abs() < 1e-9);
        assert_eq!(WorkloadMix::INSERT_ONLY.write_fraction(), 1.0);
        assert!((WorkloadMix::CRUD.write_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn invalid_mix_detected() {
        let bad = WorkloadMix {
            name: "bad",
            read_fraction: 0.9,
            update_fraction: 0.9,
            insert_fraction: 0.0,
            delete_fraction: 0.0,
            scan_fraction: 0.0,
        };
        assert!(!bad.is_valid());
        // Scans count towards the total too.
        let bad_scan = WorkloadMix {
            scan_fraction: 0.5,
            ..WorkloadMix::READ_ONLY
        };
        assert!(!bad_scan.is_valid());
    }
}
