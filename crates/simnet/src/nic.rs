//! The per-node simulated NIC.

use crate::config::{DelayMode, FabricConfig};
use crate::stats::{NicCounters, NicStats};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A simulated RDMA-capable NIC attached to one node (KN, client, or the DPM
/// metadata server).
///
/// Every method accounts the operation (RT counters, bytes, modeled time) and,
/// depending on [`DelayMode`], optionally busy-waits for the scaled modeled
/// latency so wall-clock experiments see realistic relative costs.
///
/// `Nic` is cheap to clone (`Arc` internally); clones share counters, which
/// matches one physical NIC being shared by all threads of a node.
#[derive(Debug, Clone)]
pub struct Nic {
    inner: Arc<NicInner>,
}

#[derive(Debug)]
struct NicInner {
    config: FabricConfig,
    counters: NicCounters,
}

impl Nic {
    /// Create a NIC with the given fabric configuration.
    pub fn new(config: FabricConfig) -> Self {
        Nic {
            inner: Arc::new(NicInner {
                config,
                counters: NicCounters::default(),
            }),
        }
    }

    /// The fabric configuration this NIC was created with.
    pub fn config(&self) -> &FabricConfig {
        &self.inner.config
    }

    /// Issue a one-sided RDMA READ of `bytes` bytes. Returns the modeled
    /// round-trip latency.
    pub fn one_sided_read(&self, bytes: usize) -> Duration {
        let ns = self.inner.config.one_sided_ns(bytes);
        self.inner
            .counters
            .one_sided_reads
            .fetch_add(1, Ordering::Relaxed);
        self.inner
            .counters
            .bytes_read
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.account_and_delay(ns)
    }

    /// Issue a one-sided RDMA WRITE of `bytes` bytes. Returns the modeled
    /// round-trip latency.
    pub fn one_sided_write(&self, bytes: usize) -> Duration {
        let ns = self.inner.config.one_sided_ns(bytes);
        self.inner
            .counters
            .one_sided_writes
            .fetch_add(1, Ordering::Relaxed);
        self.inner
            .counters
            .bytes_written
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.account_and_delay(ns)
    }

    /// Issue a one-sided RDMA compare-and-swap (8 bytes). Returns the modeled
    /// round-trip latency.
    pub fn one_sided_cas(&self) -> Duration {
        let ns = self.inner.config.one_sided_ns(8);
        self.inner.counters.cas_ops.fetch_add(1, Ordering::Relaxed);
        self.inner
            .counters
            .bytes_written
            .fetch_add(8, Ordering::Relaxed);
        self.account_and_delay(ns)
    }

    /// Issue a two-sided RPC with the given request/response payload sizes.
    /// Returns the modeled round-trip latency (excluding remote service time,
    /// which the callee models separately).
    pub fn rpc(&self, request_bytes: usize, response_bytes: usize) -> Duration {
        let ns = self.inner.config.rpc_ns(request_bytes + response_bytes);
        self.inner.counters.rpcs.fetch_add(1, Ordering::Relaxed);
        self.inner
            .counters
            .bytes_written
            .fetch_add(request_bytes as u64, Ordering::Relaxed);
        self.inner
            .counters
            .bytes_read
            .fetch_add(response_bytes as u64, Ordering::Relaxed);
        self.account_and_delay(ns)
    }

    /// Account an arbitrary amount of additional modeled network time (used
    /// for things like remote service queueing) without counting a round trip.
    pub fn account_extra_ns(&self, ns: u64) -> Duration {
        self.account_and_delay(ns)
    }

    /// Snapshot the counters.
    pub fn snapshot(&self) -> NicStats {
        self.inner.counters.snapshot()
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.inner.counters.reset();
    }

    fn account_and_delay(&self, modeled_ns: u64) -> Duration {
        self.inner
            .counters
            .modeled_ns
            .fetch_add(modeled_ns, Ordering::Relaxed);
        let injected = self.inner.config.delay.injected_ns(modeled_ns);
        if injected > 0 {
            if self.inner.config.delay.yields_cpu() {
                std::thread::sleep(Duration::from_nanos(injected));
            } else {
                busy_wait(Duration::from_nanos(injected));
            }
        }
        Duration::from_nanos(modeled_ns)
    }
}

impl Default for Nic {
    fn default() -> Self {
        Nic::new(FabricConfig::default())
    }
}

/// Busy-wait for approximately `dur`. Spin-waiting keeps sub-microsecond
/// delays meaningful (thread::sleep has ~50 µs granularity on most kernels).
fn busy_wait(dur: Duration) {
    let start = Instant::now();
    while start.elapsed() < dur {
        std::hint::spin_loop();
    }
}

/// Convenience: `true` if the NIC injects any real delay.
pub fn injects_delay(config: &FabricConfig) -> bool {
    config.delay != DelayMode::None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_across_clones() {
        let nic = Nic::default();
        let clone = nic.clone();
        nic.one_sided_read(100);
        clone.one_sided_write(50);
        let s = nic.snapshot();
        assert_eq!(s.one_sided_reads, 1);
        assert_eq!(s.one_sided_writes, 1);
        assert_eq!(s.bytes_read, 100);
        assert_eq!(s.bytes_written, 50);
    }

    #[test]
    fn rpc_counts_both_directions() {
        let nic = Nic::default();
        nic.rpc(10, 20);
        let s = nic.snapshot();
        assert_eq!(s.rpcs, 1);
        assert_eq!(s.bytes_written, 10);
        assert_eq!(s.bytes_read, 20);
        assert_eq!(s.round_trips(), 1);
    }

    #[test]
    fn reset_clears_everything() {
        let nic = Nic::default();
        nic.one_sided_cas();
        nic.reset();
        assert_eq!(nic.snapshot(), NicStats::default());
    }

    #[test]
    fn injected_delay_actually_waits() {
        let cfg = FabricConfig {
            one_sided_latency_ns: 200_000, // 200 us so the test is robust
            delay: DelayMode::full(),
            ..FabricConfig::default()
        };
        let nic = Nic::new(cfg);
        let start = Instant::now();
        nic.one_sided_read(8);
        assert!(start.elapsed() >= Duration::from_micros(180));
    }

    #[test]
    fn modeled_latency_is_returned_without_delay() {
        let nic = Nic::default();
        let d = nic.one_sided_read(8);
        assert_eq!(d, Duration::from_nanos(nic.config().one_sided_ns(8)));
    }
}
