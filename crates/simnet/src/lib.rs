//! # dinomo-simnet — simulated RDMA fabric
//!
//! The DINOMO paper runs on InfiniBand hardware and its evaluation is driven
//! almost entirely by *how many network round trips (RTs) each key-value
//! operation costs* and by the latency/bandwidth of those round trips.  This
//! crate replaces the RDMA NIC with a software model that
//!
//! * counts every one-sided READ / WRITE / CAS and every two-sided RPC issued
//!   by a node ([`Nic`]),
//! * converts those operations into modeled time using a configurable
//!   latency/bandwidth profile ([`FabricConfig`], [`CostModel`]),
//! * can optionally inject real (busy-wait) delay per operation so that
//!   wall-clock experiments reproduce the relative costs
//!   ([`DelayMode`]), and
//! * provides a cluster-level throughput model used by the benchmark harness
//!   to turn measured RTs/op and cache hit ratios into end-to-end throughput
//!   curves ([`ThroughputModel`]).
//!
//! The public API is intentionally small: higher layers (the DPM pool, the
//! KVS nodes, the Clover baseline) call [`Nic::one_sided_read`],
//! [`Nic::one_sided_write`], [`Nic::one_sided_cas`] and [`Nic::rpc`] exactly
//! where the real system would issue the corresponding verbs.

#![warn(missing_docs)]

pub mod config;
pub mod cost;
pub mod nic;
pub mod stats;

pub use config::{DelayMode, FabricConfig};
pub use cost::{ClusterCostInputs, CostModel, ThroughputModel};
pub use nic::Nic;
pub use stats::NicStats;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_accounting() {
        let nic = Nic::new(FabricConfig::default());
        nic.one_sided_read(1024);
        nic.one_sided_write(64);
        nic.one_sided_cas();
        nic.rpc(128, 128);
        let s = nic.snapshot();
        assert_eq!(s.one_sided_reads, 1);
        assert_eq!(s.one_sided_writes, 1);
        assert_eq!(s.cas_ops, 1);
        assert_eq!(s.rpcs, 1);
        assert_eq!(s.round_trips(), 4);
        assert!(s.modeled_ns > 0);
    }
}
