//! Analytic cluster throughput model.
//!
//! The paper measures *peak* throughput by increasing the number of
//! outstanding requests per client thread until the KVS-node CPUs saturate
//! (§5.2).  At saturation, throughput is governed by whichever resource runs
//! out first:
//!
//! 1. KN CPU — issuing verbs, managing the cache, running the request
//!    protocol,
//! 2. the per-KN network link,
//! 3. the DPM-side network port (shared by all KNs),
//! 4. the DPM processors' merge capacity (writes must eventually be merged),
//! 5. the metadata-server CPU (Clover only; Dinomo has no such server).
//!
//! [`ThroughputModel::cluster_throughput`] combines measured per-operation
//! round trips and byte counts (produced by running the real data structures
//! in this repository) with a latency/CPU cost model to produce the
//! throughput curves of Figure 5.  Absolute constants are calibrated to the
//! paper's testbed; the *shape* of the resulting curves (orderings,
//! crossovers, scaling knees) is what the reproduction is judged on.

use crate::config::FabricConfig;
use serde::{Deserialize, Serialize};

/// CPU-side cost constants for a KVS node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Fabric latency/bandwidth profile.
    pub fabric: FabricConfig,
    /// Per-operation KN CPU time excluding network verbs (request parsing,
    /// hashing, cache bookkeeping), nanoseconds.
    pub kn_base_cpu_ns: u64,
    /// KN CPU time to issue and complete one verb (post + poll), nanoseconds.
    pub kn_verb_cpu_ns: u64,
    /// Extra KN CPU on a full cache miss (index-traversal bookkeeping,
    /// searching cached log segments), nanoseconds.
    pub miss_extra_cpu_ns: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            fabric: FabricConfig::default(),
            kn_base_cpu_ns: 1_500,
            kn_verb_cpu_ns: 350,
            miss_extra_cpu_ns: 800,
        }
    }
}

/// Per-configuration inputs measured from an actual run of the data
/// structures (cache, index, log) in this repository.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterCostInputs {
    /// Number of KVS nodes.
    pub num_kns: usize,
    /// Worker threads per KVS node.
    pub threads_per_kn: usize,
    /// Measured average network round trips per operation.
    pub rts_per_op: f64,
    /// Measured average bytes moved over the network per operation.
    pub remote_bytes_per_op: f64,
    /// Fraction of operations that are full cache misses.
    pub miss_fraction: f64,
    /// Fraction of operations that are writes (insert/update/delete).
    pub write_fraction: f64,
    /// Aggregate merge capacity of the DPM processors, operations/second.
    /// `0.0` means unlimited (e.g. when modeling the log-write max).
    pub dpm_merge_capacity_ops: f64,
    /// Two-sided RPCs per operation that must be served by a metadata server
    /// (Clover). Zero for Dinomo and its variants.
    pub metadata_rpcs_per_op: f64,
    /// Metadata-server service capacity in RPCs/second. `0.0` = unlimited.
    pub metadata_server_capacity_rpcs: f64,
}

impl ClusterCostInputs {
    /// Convenience constructor with no DPM-side or metadata-server limits.
    pub fn unbounded(num_kns: usize, threads_per_kn: usize, rts_per_op: f64) -> Self {
        ClusterCostInputs {
            num_kns,
            threads_per_kn,
            rts_per_op,
            remote_bytes_per_op: 0.0,
            miss_fraction: 0.0,
            write_fraction: 0.0,
            dpm_merge_capacity_ops: 0.0,
            metadata_rpcs_per_op: 0.0,
            metadata_server_capacity_rpcs: 0.0,
        }
    }
}

/// Break-down of the modeled throughput by limiting resource.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputBreakdown {
    /// Throughput if only KN CPU limited the system (ops/s).
    pub kn_cpu_bound: f64,
    /// Throughput if only the per-KN links limited the system (ops/s).
    pub kn_link_bound: f64,
    /// Throughput if only the DPM network port limited the system (ops/s).
    pub dpm_port_bound: f64,
    /// Throughput if only DPM merge capacity limited the system (ops/s).
    pub merge_bound: f64,
    /// Throughput if only the metadata server limited the system (ops/s).
    pub metadata_bound: f64,
    /// The resulting cluster throughput (minimum of the above), ops/s.
    pub ops_per_sec: f64,
    /// Modeled mean request latency at that operating point, nanoseconds.
    pub mean_latency_ns: f64,
}

/// The cluster-level throughput model.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThroughputModel;

impl ThroughputModel {
    /// Compute the modeled cluster throughput for the given cost constants
    /// and measured per-op statistics.
    pub fn cluster_throughput(
        model: &CostModel,
        inputs: &ClusterCostInputs,
    ) -> ThroughputBreakdown {
        let kns = inputs.num_kns.max(1) as f64;
        let threads = inputs.threads_per_kn.max(1) as f64;

        // 1. KN CPU bound.
        let cpu_per_op_ns = model.kn_base_cpu_ns as f64
            + inputs.rts_per_op * model.kn_verb_cpu_ns as f64
            + inputs.miss_fraction * model.miss_extra_cpu_ns as f64;
        let kn_cpu_bound = kns * threads * 1e9 / cpu_per_op_ns.max(1.0);

        // 2. Per-KN link bound.
        let link_bw = model.fabric.bandwidth_bytes_per_sec as f64;
        let kn_link_bound = if inputs.remote_bytes_per_op > 0.0 && link_bw > 0.0 {
            kns * link_bw / inputs.remote_bytes_per_op
        } else {
            f64::INFINITY
        };

        // 3. DPM network port bound (all KNs share the DPM-side port).
        let dpm_bw = model.fabric.dpm_bandwidth_bytes_per_sec as f64;
        let dpm_port_bound = if inputs.remote_bytes_per_op > 0.0 && dpm_bw > 0.0 {
            dpm_bw / inputs.remote_bytes_per_op
        } else {
            f64::INFINITY
        };

        // 4. Merge bound: write ops must be merged by the DPM processors.
        let merge_bound = if inputs.write_fraction > 0.0 && inputs.dpm_merge_capacity_ops > 0.0 {
            inputs.dpm_merge_capacity_ops / inputs.write_fraction
        } else {
            f64::INFINITY
        };

        // 5. Metadata-server bound (Clover).
        let metadata_bound =
            if inputs.metadata_rpcs_per_op > 0.0 && inputs.metadata_server_capacity_rpcs > 0.0 {
                inputs.metadata_server_capacity_rpcs / inputs.metadata_rpcs_per_op
            } else {
                f64::INFINITY
            };

        let ops_per_sec = kn_cpu_bound
            .min(kn_link_bound)
            .min(dpm_port_bound)
            .min(merge_bound)
            .min(metadata_bound);

        let mean_latency_ns = cpu_per_op_ns
            + inputs.rts_per_op * model.fabric.one_sided_latency_ns as f64
            + if link_bw > 0.0 {
                inputs.remote_bytes_per_op * 1e9 / link_bw
            } else {
                0.0
            };

        ThroughputBreakdown {
            kn_cpu_bound,
            kn_link_bound,
            dpm_port_bound,
            merge_bound,
            metadata_bound,
            ops_per_sec,
            mean_latency_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_bound_scales_with_kns() {
        let model = CostModel::default();
        let t1 =
            ThroughputModel::cluster_throughput(&model, &ClusterCostInputs::unbounded(1, 8, 0.2));
        let t16 =
            ThroughputModel::cluster_throughput(&model, &ClusterCostInputs::unbounded(16, 8, 0.2));
        assert!(t16.ops_per_sec > 10.0 * t1.ops_per_sec);
    }

    #[test]
    fn more_rts_means_less_throughput_and_more_latency() {
        let model = CostModel::default();
        let low =
            ThroughputModel::cluster_throughput(&model, &ClusterCostInputs::unbounded(4, 8, 0.2));
        let high =
            ThroughputModel::cluster_throughput(&model, &ClusterCostInputs::unbounded(4, 8, 5.0));
        assert!(low.ops_per_sec > high.ops_per_sec);
        assert!(low.mean_latency_ns < high.mean_latency_ns);
    }

    #[test]
    fn dpm_port_caps_aggregate_throughput() {
        let model = CostModel::default();
        let mut inputs = ClusterCostInputs::unbounded(16, 8, 1.0);
        inputs.remote_bytes_per_op = 1024.0;
        let t = ThroughputModel::cluster_throughput(&model, &inputs);
        // 7 GB/s / 1 KB/op ~ 6.8 Mops/s no matter how many KNs there are.
        assert!(t.ops_per_sec <= t.dpm_port_bound + 1.0);
        assert!(t.dpm_port_bound < 7.5e6);
        let mut inputs32 = inputs;
        inputs32.num_kns = 32;
        let t32 = ThroughputModel::cluster_throughput(&model, &inputs32);
        assert!((t32.ops_per_sec - t.ops_per_sec).abs() / t.ops_per_sec < 0.01);
    }

    #[test]
    fn metadata_server_caps_clover() {
        let model = CostModel::default();
        let mut inputs = ClusterCostInputs::unbounded(16, 8, 2.5);
        inputs.metadata_rpcs_per_op = 0.5;
        inputs.metadata_server_capacity_rpcs = 400_000.0;
        let t = ThroughputModel::cluster_throughput(&model, &inputs);
        assert!(t.ops_per_sec <= 800_000.0 + 1.0);
    }

    #[test]
    fn merge_capacity_caps_write_heavy_workloads() {
        let model = CostModel::default();
        let mut inputs = ClusterCostInputs::unbounded(16, 8, 0.3);
        inputs.write_fraction = 0.5;
        inputs.dpm_merge_capacity_ops = 1_000_000.0;
        let t = ThroughputModel::cluster_throughput(&model, &inputs);
        assert!(t.ops_per_sec <= 2_000_000.0 + 1.0);
    }
}
