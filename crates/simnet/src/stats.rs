//! Per-NIC operation counters and snapshots.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Internal atomic counters owned by a [`crate::Nic`].
#[derive(Debug, Default)]
pub(crate) struct NicCounters {
    pub one_sided_reads: AtomicU64,
    pub one_sided_writes: AtomicU64,
    pub cas_ops: AtomicU64,
    pub rpcs: AtomicU64,
    pub bytes_read: AtomicU64,
    pub bytes_written: AtomicU64,
    pub modeled_ns: AtomicU64,
}

impl NicCounters {
    pub(crate) fn snapshot(&self) -> NicStats {
        NicStats {
            one_sided_reads: self.one_sided_reads.load(Ordering::Relaxed),
            one_sided_writes: self.one_sided_writes.load(Ordering::Relaxed),
            cas_ops: self.cas_ops.load(Ordering::Relaxed),
            rpcs: self.rpcs.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            modeled_ns: self.modeled_ns.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn reset(&self) {
        self.one_sided_reads.store(0, Ordering::Relaxed);
        self.one_sided_writes.store(0, Ordering::Relaxed);
        self.cas_ops.store(0, Ordering::Relaxed);
        self.rpcs.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.modeled_ns.store(0, Ordering::Relaxed);
    }
}

/// Snapshot of the network operations a node has issued.
///
/// `round_trips()` is the quantity the paper reports as "RTs/op" (Tables 5
/// and 6) once divided by the number of completed operations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NicStats {
    /// Number of one-sided RDMA READ operations.
    pub one_sided_reads: u64,
    /// Number of one-sided RDMA WRITE operations.
    pub one_sided_writes: u64,
    /// Number of one-sided RDMA compare-and-swap operations.
    pub cas_ops: u64,
    /// Number of two-sided RPCs (these involve the DPM/metadata-server CPU).
    pub rpcs: u64,
    /// Total payload bytes read from remote memory.
    pub bytes_read: u64,
    /// Total payload bytes written to remote memory.
    pub bytes_written: u64,
    /// Total modeled network time in nanoseconds.
    pub modeled_ns: u64,
}

impl NicStats {
    /// Total network round trips (every one-sided op and every RPC is one RT).
    pub fn round_trips(&self) -> u64 {
        self.one_sided_reads + self.one_sided_writes + self.cas_ops + self.rpcs
    }

    /// Total bytes moved in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Difference between two snapshots (`self` must be the later one).
    pub fn since(&self, earlier: &NicStats) -> NicStats {
        NicStats {
            one_sided_reads: self.one_sided_reads.saturating_sub(earlier.one_sided_reads),
            one_sided_writes: self
                .one_sided_writes
                .saturating_sub(earlier.one_sided_writes),
            cas_ops: self.cas_ops.saturating_sub(earlier.cas_ops),
            rpcs: self.rpcs.saturating_sub(earlier.rpcs),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            modeled_ns: self.modeled_ns.saturating_sub(earlier.modeled_ns),
        }
    }

    /// Element-wise sum of two snapshots (for aggregating across KNs).
    pub fn merged(&self, other: &NicStats) -> NicStats {
        NicStats {
            one_sided_reads: self.one_sided_reads + other.one_sided_reads,
            one_sided_writes: self.one_sided_writes + other.one_sided_writes,
            cas_ops: self.cas_ops + other.cas_ops,
            rpcs: self.rpcs + other.rpcs,
            bytes_read: self.bytes_read + other.bytes_read,
            bytes_written: self.bytes_written + other.bytes_written,
            modeled_ns: self.modeled_ns + other.modeled_ns,
        }
    }

    /// Round trips per operation for a window in which `ops` operations
    /// completed.
    pub fn rts_per_op(&self, ops: u64) -> f64 {
        if ops == 0 {
            0.0
        } else {
            self.round_trips() as f64 / ops as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(a: u64) -> NicStats {
        NicStats {
            one_sided_reads: a,
            one_sided_writes: 2 * a,
            cas_ops: a,
            rpcs: a,
            bytes_read: 100 * a,
            bytes_written: 200 * a,
            modeled_ns: 1_000 * a,
        }
    }

    #[test]
    fn round_trip_math() {
        let s = sample(3);
        assert_eq!(s.round_trips(), 3 + 6 + 3 + 3);
        assert_eq!(s.total_bytes(), 900);
        assert!((s.rts_per_op(15) - 1.0).abs() < 1e-9);
        assert_eq!(s.rts_per_op(0), 0.0);
    }

    #[test]
    fn since_and_merged() {
        let early = sample(1);
        let late = sample(4);
        let delta = late.since(&early);
        assert_eq!(delta, sample(3));
        assert_eq!(sample(1).merged(&sample(2)), sample(3));
    }

    #[test]
    fn since_saturates() {
        let early = sample(5);
        let late = sample(1);
        let delta = late.since(&early);
        assert_eq!(delta.one_sided_reads, 0);
        assert_eq!(delta.modeled_ns, 0);
    }
}
