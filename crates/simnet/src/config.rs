//! Fabric configuration: latency/bandwidth profile and delay injection.

use serde::{Deserialize, Serialize};

/// How (and whether) the simulated fabric injects real wall-clock delay for
/// each network operation.
///
/// Cost accounting (round-trip counters and modeled nanoseconds) always
/// happens; delay injection only controls whether the calling thread actually
/// waits.  Timeline experiments (Figures 6–8) inject scaled-down delays so the
/// relative cost of cache misses, chain walks and reconfiguration shows up in
/// wall-clock measurements; throughput sweeps (Figure 5) run with
/// [`DelayMode::None`] and use the analytic [`crate::ThroughputModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DelayMode {
    /// Account costs only; never block the caller.
    None,
    /// Busy-spin for `modeled_ns * numerator / denominator` nanoseconds.
    ///
    /// Busy-spinning (rather than sleeping) keeps sub-microsecond delays
    /// meaningful; the scale factor lets experiments compress time.
    BusySpin {
        /// Scale numerator.
        numerator: u32,
        /// Scale denominator.
        denominator: u32,
    },
    /// Block the calling thread with `std::thread::sleep` for
    /// `modeled_ns * numerator / denominator` nanoseconds.
    ///
    /// Sleeping models a worker thread parked on a synchronous verb
    /// completion: the CPU is *free* while the "network" works, so
    /// concurrent shard workers overlap their fabric waits even on a
    /// host with fewer cores than workers. Kernel timer granularity
    /// (tens of µs) makes every delay at least that long, which is
    /// exactly the regime the executor-scaling experiments want —
    /// uniformly fabric-bound operations. Use [`DelayMode::BusySpin`]
    /// when sub-microsecond fidelity matters more than overlap.
    Sleep {
        /// Scale numerator.
        numerator: u32,
        /// Scale denominator.
        denominator: u32,
    },
}

impl DelayMode {
    /// Full-fidelity busy-spin delay (scale 1/1).
    pub const fn full() -> Self {
        DelayMode::BusySpin {
            numerator: 1,
            denominator: 1,
        }
    }

    /// Full-fidelity sleeping delay (scale 1/1), for experiments where
    /// fabric waits should overlap across threads instead of burning CPU.
    pub const fn sleeping() -> Self {
        DelayMode::Sleep {
            numerator: 1,
            denominator: 1,
        }
    }

    /// Scale a modeled duration into an injected duration, if any.
    pub fn injected_ns(&self, modeled_ns: u64) -> u64 {
        match *self {
            DelayMode::None => 0,
            DelayMode::BusySpin {
                numerator,
                denominator,
            }
            | DelayMode::Sleep {
                numerator,
                denominator,
            } => {
                if denominator == 0 {
                    0
                } else {
                    modeled_ns.saturating_mul(u64::from(numerator)) / u64::from(denominator)
                }
            }
        }
    }

    /// `true` if the injected delay blocks the thread without consuming
    /// the CPU (so concurrent workers overlap their waits).
    pub fn yields_cpu(&self) -> bool {
        matches!(self, DelayMode::Sleep { .. })
    }
}

/// Latency/bandwidth profile of the simulated interconnect.
///
/// Defaults follow the paper's testbed: Mellanox FDR ConnectX-3 at 56 Gbps
/// (~7 GB/s usable), one-sided verb latency of ~2 µs and two-sided RPC latency
/// of ~4 µs (the paper cites a 1–20 µs network latency range, at least 10×
/// higher than PM/DRAM access latency).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FabricConfig {
    /// Base latency of a one-sided READ/WRITE/CAS round trip, in nanoseconds.
    pub one_sided_latency_ns: u64,
    /// Base latency of a two-sided RPC round trip, in nanoseconds.
    pub rpc_latency_ns: u64,
    /// Usable link bandwidth in bytes per second (per KN link).
    pub bandwidth_bytes_per_sec: u64,
    /// Aggregate bandwidth of the DPM-side network port(s) in bytes/second.
    ///
    /// The paper's setup has a single DPM pool whose ingress bandwidth
    /// (~7 GB/s) eventually caps aggregate write throughput.
    pub dpm_bandwidth_bytes_per_sec: u64,
    /// Whether calls inject real delay.
    pub delay: DelayMode,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            one_sided_latency_ns: 2_000,
            rpc_latency_ns: 4_000,
            bandwidth_bytes_per_sec: 7_000_000_000,
            dpm_bandwidth_bytes_per_sec: 7_000_000_000,
            delay: DelayMode::None,
        }
    }
}

impl FabricConfig {
    /// A config matching the paper's testbed but with delay injection enabled
    /// at the given compression factor (`1/scale_down` of real time).
    pub fn with_injected_delay(scale_down: u32) -> Self {
        FabricConfig {
            delay: DelayMode::BusySpin {
                numerator: 1,
                denominator: scale_down.max(1),
            },
            ..FabricConfig::default()
        }
    }

    /// Modeled time for a one-sided operation moving `bytes` bytes.
    pub fn one_sided_ns(&self, bytes: usize) -> u64 {
        self.one_sided_latency_ns + self.transfer_ns(bytes)
    }

    /// Modeled time for a two-sided RPC moving `bytes` bytes total.
    pub fn rpc_ns(&self, bytes: usize) -> u64 {
        self.rpc_latency_ns + self.transfer_ns(bytes)
    }

    /// Serialization (wire transfer) time for `bytes` bytes.
    pub fn transfer_ns(&self, bytes: usize) -> u64 {
        if self.bandwidth_bytes_per_sec == 0 {
            return 0;
        }
        (bytes as u64).saturating_mul(1_000_000_000) / self.bandwidth_bytes_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_testbed() {
        let c = FabricConfig::default();
        assert_eq!(c.one_sided_latency_ns, 2_000);
        assert_eq!(c.bandwidth_bytes_per_sec, 7_000_000_000);
        assert_eq!(c.delay, DelayMode::None);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let c = FabricConfig::default();
        assert!(c.one_sided_ns(1_000_000) > c.one_sided_ns(64));
        // 7 GB/s -> 1 MB takes ~143 us
        let ns = c.transfer_ns(1_000_000);
        assert!(
            ns > 100_000 && ns < 200_000,
            "unexpected transfer time {ns}"
        );
    }

    #[test]
    fn delay_mode_scaling() {
        assert_eq!(DelayMode::None.injected_ns(10_000), 0);
        assert_eq!(DelayMode::full().injected_ns(10_000), 10_000);
        let half = DelayMode::BusySpin {
            numerator: 1,
            denominator: 2,
        };
        assert_eq!(half.injected_ns(10_000), 5_000);
        let zero_den = DelayMode::BusySpin {
            numerator: 1,
            denominator: 0,
        };
        assert_eq!(zero_den.injected_ns(10_000), 0);
    }

    #[test]
    fn zero_bandwidth_means_no_transfer_cost() {
        let c = FabricConfig {
            bandwidth_bytes_per_sec: 0,
            ..FabricConfig::default()
        };
        assert_eq!(c.transfer_ns(1 << 20), 0);
        assert_eq!(c.one_sided_ns(1 << 20), c.one_sided_latency_ns);
    }
}
