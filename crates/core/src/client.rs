//! The client library.
//!
//! Clients cache the ownership metadata they obtain from a routing node and
//! talk directly to the owner KVS node for every request.  When the mapping
//! changes (reconfiguration, failure, replication), the contacted node
//! rejects the request and the client refreshes its cached metadata — exactly
//! the flow §3.1/§3.4 describe.
//!
//! The client API is batched at its core: [`KvsClient::execute`] takes a
//! vector of [`Op`]s, groups them by owner KVS node using the cached
//! ownership table, and submits **one** request per node, which
//! resolves ownership once, splits the group by shard, and enqueues one
//! sub-batch per involved shard onto
//! that shard's worker thread — the batch fans out across every involved
//! shard of every involved node concurrently while this thread waits on a
//! completion latch (see [`crate::executor`]). Each sub-batch locks its
//! shard once and flushes its buffered log writes once. Operations
//! rejected mid-flight (ownership moved, node failed or reconfiguring,
//! worker queue full) are retried after a metadata refresh (or, for
//! [`KvsError::Busy`] backpressure, just a pause), so a batch racing a
//! reconfiguration still produces a correct per-op [`Reply`].  The per-key
//! methods ([`KvsClient::insert`] & co.) share the same routing/retry core
//! as a single-op batch, without allocating an owned [`Op`].

use crate::error::KvsError;
use crate::executor::{BatchShared, WaitGroup};
use crate::kn::KnNode;
use crate::kvs::KvsInner;
use crate::op::{Op, Reply};
use crate::trace::{Action, RecorderHandle};
use crate::Result;
use dinomo_partition::{KnId, OwnershipTable};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Maximum routing retries before a request is failed back to the caller.
/// Exposed to the crate's tests so retry-accounting assertions (one `Busy`
/// sub-batch rejection per routing round) can state the exact budget.
pub(crate) const MAX_RETRIES: usize = 100;

/// A client handle. Create one per application thread with
/// [`crate::Kvs::client`]; handles are independent and each caches its own
/// routing metadata.
#[derive(Debug)]
pub struct KvsClient {
    kvs: Arc<KvsInner>,
    cached: Mutex<OwnershipTable>,
    replica_rr: AtomicUsize,
    /// History-recording hook for the linearizability checker; `None`
    /// (the default) costs one branch per request and nothing else.
    recorder: Option<RecorderHandle>,
    /// `stage_client_dispatch_ns` — per round: grouping, routing, and
    /// sub-batch submission (including inline work) up to the latch wait.
    stage_dispatch: dinomo_obs::Histogram,
    /// `stage_reply_ns` — per round: reply harvest after the latch.
    stage_reply: dinomo_obs::Histogram,
}

impl KvsClient {
    pub(crate) fn new(kvs: Arc<KvsInner>) -> Self {
        let cached = kvs.ownership.read().clone();
        let stage_dispatch = kvs.metrics.stage(dinomo_obs::Stage::ClientDispatch);
        let stage_reply = kvs.metrics.stage(dinomo_obs::Stage::Reply);
        KvsClient {
            kvs,
            cached: Mutex::new(cached),
            replica_rr: AtomicUsize::new(0),
            recorder: None,
            stage_dispatch,
            stage_reply,
        }
    }

    /// Attach a history-recording handle (see [`crate::trace`]): every
    /// operation this client completes — per-key calls and batched
    /// [`KvsClient::execute`] calls alike, the latter decomposed per op —
    /// is appended to the recorder for an external linearizability check.
    /// Recording costs two logical-clock increments and one log append per
    /// op; a client without a recorder pays a single branch.
    pub fn with_recorder(mut self, handle: RecorderHandle) -> Self {
        self.recorder = Some(handle);
        self
    }

    /// Record one completed op (no-op without a recorder). `invoked_at`
    /// must be a stamp drawn before the op was submitted.
    fn record_op(&self, op: &Op, reply: &Reply, invoked_at: u64) {
        let Some(handle) = &self.recorder else {
            return;
        };
        let action = match op {
            Op::Insert { value, .. } | Op::Update { value, .. } => Action::Write(value.clone()),
            Op::Delete { .. } => Action::Delete,
            Op::Lookup { .. } => Action::Read(match reply {
                Reply::Value(v) => v.clone(),
                _ => None,
            }),
            Op::Scan { n, .. } => Action::Scan {
                n: *n,
                pairs: match reply {
                    Reply::Scan(pairs) => pairs.clone(),
                    _ => Vec::new(),
                },
            },
        };
        handle.record(op.key(), action, reply.is_ok(), invoked_at);
    }

    /// Version of the routing metadata this client currently holds.
    pub fn cached_ownership_version(&self) -> u64 {
        self.cached.lock().version()
    }

    /// Refresh routing metadata from a routing node.
    pub fn refresh_routing(&self) {
        *self.cached.lock() = self.kvs.ownership.read().clone();
    }

    /// Pick the owner to contact for `key` from an already-locked cached
    /// table (round-robin across owners so replicated hot keys spread their
    /// load).
    fn pick_owner_in(&self, cached: &OwnershipTable, key: &[u8]) -> Option<KnId> {
        if cached.is_replicated(key) {
            self.pick_replica(cached, key)
        } else {
            // The common case allocates nothing.
            cached.primary_owner(key)
        }
    }

    /// Round-robin pick among a replicated key's owner set.
    fn pick_replica(&self, cached: &OwnershipTable, key: &[u8]) -> Option<KnId> {
        let owners = cached.owners(key);
        if owners.is_empty() {
            return None;
        }
        let idx = self.replica_rr.fetch_add(1, Ordering::Relaxed) % owners.len();
        Some(owners[idx])
    }

    fn pick_owner(&self, key: &[u8]) -> Result<KnId> {
        self.pick_owner_in(&self.cached.lock(), key)
            .ok_or(KvsError::NoNodes)
    }

    fn node(&self, id: KnId) -> Option<Arc<KnNode>> {
        self.kvs.kns.read().get(&id).cloned()
    }

    /// `true` for the errors that mean "refresh the routing metadata and try
    /// again" rather than "fail the operation".
    fn is_routing_error(e: &KvsError) -> bool {
        matches!(
            e,
            KvsError::NotOwner { .. } | KvsError::NodeFailed | KvsError::Reconfiguring
        )
    }

    fn backoff(attempt: usize) {
        if attempt > 10 {
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    // ---------------------------------------------------------- batched API

    /// Execute a batch of operations and return one [`Reply`] per op, in op
    /// order.
    ///
    /// The batch is grouped by owner KVS node under a single acquisition of
    /// the cached routing metadata and submitted with one request per
    /// group, which amortizes routing, node lookup, ownership checks,
    /// shard locking and log-batch flushing over the whole group — and
    /// fans the group out across the node's shard worker threads, so all
    /// of a node's shards (and all nodes) serve the batch concurrently
    /// while this thread waits. There is **no atomicity across the
    /// batch** — each op fails or succeeds independently, exactly as if
    /// issued alone; the per-op guarantees (linearizable single-key
    /// reads/writes) are unchanged. Ops on the same key still apply in
    /// batch order (same key → same shard, served in order by one
    /// worker).
    ///
    /// Operations rejected because the contacted node no longer owns the
    /// key (or failed, or is reconfiguring, or its worker queues were
    /// full — [`KvsError::Busy`] backpressure) are transparently retried;
    /// only the rejected subset is retried.
    ///
    /// ```
    /// use dinomo_core::{Kvs, Op, Reply};
    ///
    /// let kvs = Kvs::builder().small_for_tests().build().unwrap();
    /// let client = kvs.client();
    /// let replies = client.execute(vec![
    ///     Op::insert("a", "1"),
    ///     Op::insert("b", "2"),
    ///     Op::lookup("a"),
    ///     Op::delete("b"),
    ///     Op::lookup("b"),
    /// ]);
    /// assert!(replies.iter().all(Reply::is_ok));
    /// assert_eq!(replies[2].value(), Some(&b"1"[..]));
    /// assert_eq!(replies[4], Reply::Value(None));
    /// ```
    pub fn execute(&self, ops: Vec<Op>) -> Vec<Reply> {
        match ops.as_slice() {
            [] => Vec::new(),
            // A singleton batch skips the grouping machinery entirely, so
            // the per-key wrappers cost the same as a direct call. Scans
            // are the exception: even alone they need the batched path's
            // every-node fan-out.
            [op] if !op.is_scan() => {
                let invoked_at = self.recorder.as_ref().map(|h| h.invoke());
                let reply = self.execute_single(op);
                if let Some(inv) = invoked_at {
                    self.record_op(op, &reply, inv);
                }
                vec![reply]
            }
            _ => self.execute_batch(ops),
        }
    }

    fn execute_batch(&self, ops: Vec<Op>) -> Vec<Reply> {
        // One invocation stamp for the whole batch: every op was submitted
        // at this instant, so using it as each op's invocation bound is
        // sound (the checker's windows only widen, never shrink).
        let invoked_at = self.recorder.as_ref().map(|h| h.invoke());
        let n = ops.len();
        // The ops, their routing hashes (computed once, reused by every
        // node's ring lookups across every retry round) and one reply slot
        // per op, shared with every sub-batch the rounds below enqueue.
        let batch = Arc::new(BatchShared::new(ops));
        let mut replies: Vec<Option<Reply>> = vec![None; n];
        let mut pending: Vec<usize> = (0..n).collect();
        // Whether a position's most recent failure was Busy backpressure,
        // so exhausted retries report the true cause (persistent overload
        // vs. a routing/metadata problem).
        let mut last_was_busy: Vec<bool> = vec![false; n];

        for attempt in 0..MAX_RETRIES {
            if pending.is_empty() {
                break;
            }
            // Stage accounting for this round: grouping/routing/submission
            // bills to `stage_client_dispatch_ns`, the post-latch harvest
            // to `stage_reply_ns`; the latch wait in between is covered by
            // the worker-side queue-wait and shard-execute stages.
            let dispatch_clock = dinomo_obs::stage_clock();
            // Group the pending ops by owner under one routing-metadata
            // lock acquisition. Clusters are small (a handful to dozens of
            // KNs), so a linear-scan group list beats a map.
            let mut groups: Vec<(KnId, Vec<usize>)> = Vec::new();
            // Scan positions this round: excluded from owner grouping and
            // fanned out to every ring member below (each member answers
            // for the keys it owns, so no single owner can serve a range).
            let mut scans: Vec<usize> = Vec::new();
            let mut scan_members: Vec<KnId> = Vec::new();
            let routed_version;
            {
                let cached = self.cached.lock();
                routed_version = cached.version();
                let global = cached.global_ring();
                // All ops on the same replicated key must route to the same
                // replica within a round: groups dispatch in creation order,
                // so spreading a key's ops across replicas could land a
                // later op in an earlier-created group and run it first,
                // breaking the same-key batch-order guarantee. The
                // round-robin pick is therefore memoized per key per round
                // (load still spreads across batches).
                let mut replica_picks: Vec<(&[u8], Option<KnId>)> = Vec::new();
                for &i in &pending {
                    if batch.ops[i].is_scan() {
                        scans.push(i);
                        continue;
                    }
                    let key = batch.ops[i].key();
                    let owner = if cached.is_replicated(key) {
                        match replica_picks.iter().find(|(k, _)| *k == key) {
                            Some((_, pick)) => *pick,
                            None => {
                                let pick = self.pick_replica(&cached, key);
                                replica_picks.push((key, pick));
                                pick
                            }
                        }
                    } else {
                        global.owner(batch.hashes[i])
                    };
                    match owner {
                        Some(owner) => match groups.iter_mut().find(|(id, _)| *id == owner) {
                            Some((_, indexes)) => indexes.push(i),
                            None => groups.push((owner, vec![i])),
                        },
                        None => replies[i] = Some(Reply::Error(KvsError::NoNodes)),
                    }
                }
                if !scans.is_empty() {
                    scan_members = global.members().to_vec();
                }
            }

            // Resolve every group's node handle under one registry lock,
            // then dispatch with the lock released — a slow group (pmem
            // flush, injected fabric delay) must not hold up concurrent
            // reconfigurations or other clients' node lookups.
            let (nodes, scan_nodes) = {
                let kns = self.kvs.kns.read();
                let nodes: Vec<Option<Arc<KnNode>>> = groups
                    .iter()
                    .map(|(owner, _)| kns.get(owner).cloned())
                    .collect();
                let scan_nodes: Vec<Option<Arc<KnNode>>> =
                    scan_members.iter().map(|id| kns.get(id).cloned()).collect();
                (nodes, scan_nodes)
            };
            // One batched request per owner node. Each node resolves its
            // group's ownership once (the request carries the metadata
            // version the routing was computed against, so an up-to-date
            // node skips its per-key re-verification — §3.1 staleness
            // detection, applied batch-wide), splits it by shard, and
            // enqueues one sub-batch per involved shard onto its worker
            // queues — so the batch fans out across every involved shard
            // of every involved node concurrently, while this thread only
            // runs the in-order replicated-key passes.
            let latch = Arc::new(WaitGroup::new());
            for ((_, indexes), node) in groups.iter().zip(&nodes) {
                if let Some(node) = node {
                    node.submit_batch(&batch, indexes, routed_version, &latch);
                }
            }
            // Fan each scan out to every ring member, inline on this
            // thread while the point-op sub-batches run on the workers.
            // Every member answers with the pairs for the keys *it* owns
            // — validated against `routed_version`, so a node whose table
            // moved on rejects instead of contributing a partial filtered
            // by a different ring — and the union of the sorted partials
            // is complete and duplicate-free.
            for &pos in &scans {
                let Op::Scan { start, n } = &batch.ops[pos] else {
                    unreachable!("`scans` holds only scan positions");
                };
                if scan_members.is_empty() {
                    batch.push_scan_partial(pos, Err(KvsError::NoNodes));
                    continue;
                }
                for node in &scan_nodes {
                    let partial = match node {
                        Some(node) => node.scan(start, *n, routed_version),
                        // Present in the routing table but gone from the
                        // registry: membership moved — refresh and retry.
                        None => Err(KvsError::NodeFailed),
                    };
                    batch.push_scan_partial(pos, partial);
                }
            }
            dinomo_obs::record_since(&self.stage_dispatch, dispatch_clock);
            // All sub-batches have written their reply slots once the
            // latch releases; slots are not read before that.
            latch.wait();
            let reply_clock = dinomo_obs::stage_clock();

            // Harvest results; routing rejections, backpressure and
            // unanswered slots (node disappeared mid-route) are retried.
            let mut retry: Vec<usize> = Vec::new();
            let mut saw_routing_error = false;
            let mut saw_busy = false;
            // Merge each scan's partials. A scan only resolves when every
            // member contributed: one rejected or missing member means its
            // share of the key space would be silently absent, so the scan
            // retries as a whole (after the refresh its rejection asked
            // for) instead of returning a short result.
            for &pos in &scans {
                let mut pairs: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
                let mut fatal: Option<KvsError> = None;
                let mut busy = false;
                let mut routing = false;
                for partial in batch.take_scan_partials(pos) {
                    match partial {
                        Ok(part) => pairs.extend(part),
                        Err(KvsError::Busy) => busy = true,
                        Err(e) if Self::is_routing_error(&e) => routing = true,
                        Err(e) => fatal = Some(e),
                    }
                }
                if let Some(e) = fatal {
                    replies[pos] = Some(Reply::Error(e));
                } else if routing || busy {
                    saw_routing_error |= routing;
                    saw_busy |= busy;
                    last_was_busy[pos] = busy && !routing;
                    retry.push(pos);
                } else {
                    let Op::Scan { n, .. } = &batch.ops[pos] else {
                        unreachable!("`scans` holds only scan positions");
                    };
                    pairs.sort();
                    pairs.truncate(*n);
                    replies[pos] = Some(Reply::Scan(pairs));
                }
            }
            for i in pending {
                if replies[i].is_some() {
                    continue; // resolved as NoNodes during grouping
                }
                if batch.ops[i].is_scan() {
                    continue; // harvested (or queued for retry) above
                }
                // SAFETY: every sub-batch of this round counted the latch
                // down, so no writer is concurrent with these reads.
                match unsafe { batch.slots.take(i) } {
                    Some(Ok(read)) => replies[i] = Some(batch.ops[i].reply_from(read)),
                    Some(Err(KvsError::Busy)) => {
                        saw_busy = true;
                        last_was_busy[i] = true;
                        retry.push(i);
                    }
                    Some(Err(e)) if Self::is_routing_error(&e) => {
                        saw_routing_error = true;
                        last_was_busy[i] = false;
                        retry.push(i);
                    }
                    Some(Err(e)) => replies[i] = Some(Reply::Error(e)),
                    None => {
                        saw_routing_error = true;
                        last_was_busy[i] = false;
                        retry.push(i);
                    }
                }
            }

            dinomo_obs::record_since(&self.stage_reply, reply_clock);
            pending = retry;
            if !pending.is_empty() {
                if saw_routing_error {
                    self.refresh_routing();
                }
                if saw_busy {
                    // Backpressure: give the shard workers a beat to drain
                    // before re-enqueueing (no metadata refresh needed).
                    std::thread::yield_now();
                }
                Self::backoff(attempt);
            }
        }

        for i in pending {
            // An op that was Busy on its final attempt failed from
            // sustained backpressure, not a routing problem — report the
            // cause the caller can act on (back off / add capacity).
            replies[i] = Some(Reply::Error(if last_was_busy[i] {
                KvsError::Busy
            } else {
                KvsError::RoutingRetriesExhausted
            }));
        }
        let replies: Vec<Reply> = replies
            .into_iter()
            .map(|r| r.expect("every op got a reply"))
            .collect();
        if let Some(inv) = invoked_at {
            for (op, reply) in batch.ops.iter().zip(&replies) {
                self.record_op(op, reply, inv);
            }
        }
        replies
    }

    /// The allocation-free core of the per-key methods and singleton
    /// batches: route `key`, run `f` against the owner node, and retry on
    /// routing errors after a metadata refresh — identical routing/retry
    /// behaviour to a batch of one, without building groups or owned `Op`s.
    fn run<T>(&self, key: &[u8], f: impl Fn(&KnNode) -> Result<T>) -> Result<T> {
        for attempt in 0..MAX_RETRIES {
            let owner = self.pick_owner(key)?;
            let result = match self.node(owner) {
                Some(node) => f(&node),
                None => Err(KvsError::NodeFailed),
            };
            match result {
                Err(e) if Self::is_routing_error(&e) => {
                    self.refresh_routing();
                    Self::backoff(attempt);
                }
                other => return other,
            }
        }
        Err(KvsError::RoutingRetriesExhausted)
    }

    /// The singleton-batch path, in terms of [`KvsClient::run`].
    fn execute_single(&self, op: &Op) -> Reply {
        let result = match op {
            Op::Lookup { key } => self.run(key, |kn| kn.get(key)),
            Op::Insert { key, value } | Op::Update { key, value } => {
                self.run(key, |kn| kn.put(key, value).map(|()| None))
            }
            Op::Delete { key } => self.run(key, |kn| kn.delete(key).map(|()| None)),
            Op::Scan { .. } => unreachable!("scans take the batched fan-out path"),
        };
        match result {
            Ok(read) => op.reply_from(read),
            Err(e) => Reply::Error(e),
        }
    }

    /// Batched lookup: one reply per key, in key order.
    ///
    /// ```
    /// use dinomo_core::Kvs;
    ///
    /// let kvs = Kvs::builder().small_for_tests().build().unwrap();
    /// let client = kvs.client();
    /// client.multi_put([("a", "1"), ("b", "2")]);
    /// let replies = client.multi_get(["a", "b", "missing"]);
    /// assert_eq!(replies[0].value(), Some(&b"1"[..]));
    /// assert_eq!(replies[2].value(), None);
    /// ```
    pub fn multi_get<K: AsRef<[u8]>>(&self, keys: impl IntoIterator<Item = K>) -> Vec<Reply> {
        self.execute(keys.into_iter().map(Op::lookup).collect())
    }

    /// Batched write: upserts every `(key, value)` pair, one reply per pair,
    /// in pair order.
    pub fn multi_put<K: AsRef<[u8]>, V: AsRef<[u8]>>(
        &self,
        pairs: impl IntoIterator<Item = (K, V)>,
    ) -> Vec<Reply> {
        self.execute(pairs.into_iter().map(|(k, v)| Op::insert(k, v)).collect())
    }

    // ---------------------------------------------------------- per-key API

    /// `insert(key, value)`.
    ///
    /// Inserts are **upserts**: inserting a key that already exists
    /// overwrites its value and succeeds, matching the paper's §3 interface
    /// where `insert` is the write primitive and `update` the overwrite of
    /// an existing key — the storage layer (log append + merge) treats both
    /// identically. If you need insert-if-absent, [`KvsClient::lookup`]
    /// first; the store never errors with "already exists".
    pub fn insert(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.write_recorded(key, value)
    }

    /// `update(key, value)`. Overwrites `key`'s value; like
    /// [`KvsClient::insert`] it is an upsert, so updating a missing key
    /// writes it.
    pub fn update(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.write_recorded(key, value)
    }

    /// The shared insert/update path (both are upserts), with the history
    /// hook applied around the routing/retry core.
    fn write_recorded(&self, key: &[u8], value: &[u8]) -> Result<()> {
        let invoked_at = self.recorder.as_ref().map(|h| h.invoke());
        let result = self.run(key, |kn| kn.put(key, value));
        if let (Some(handle), Some(inv)) = (&self.recorder, invoked_at) {
            handle.record(key, Action::Write(value.to_vec()), result.is_ok(), inv);
        }
        result
    }

    /// `lookup(key)`.
    pub fn lookup(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let invoked_at = self.recorder.as_ref().map(|h| h.invoke());
        let result = self.run(key, |kn| kn.get(key));
        if let (Some(handle), Some(inv)) = (&self.recorder, invoked_at) {
            let observed = result.as_ref().ok().cloned().flatten();
            handle.record(key, Action::Read(observed), result.is_ok(), inv);
        }
        result
    }

    /// `scan(start, n)`: up to `n` key/value pairs in key order, starting
    /// at the smallest key `>= start` (fewer when the key space ends
    /// first).
    ///
    /// Scans are served from the ordered secondary index maintained
    /// beside the DPM's hash index, overlaid with each node's
    /// acked-but-unmerged writes — a scan sees your own completed writes
    /// exactly as lookups do. The client fans the request out to every
    /// member KVS node (each returns the pairs for the keys *it* owns)
    /// and merges the sorted partials; a member that rejects because
    /// ownership moved causes a metadata refresh and a clean retry of the
    /// whole scan, never a silently short result.
    ///
    /// ```
    /// use dinomo_core::Kvs;
    ///
    /// let kvs = Kvs::builder().small_for_tests().build().unwrap();
    /// let client = kvs.client();
    /// client.multi_put([("user1", "a"), ("user2", "b"), ("user3", "c")]);
    /// let pairs = client.scan(b"user2", 2).unwrap();
    /// assert_eq!(
    ///     pairs,
    ///     vec![
    ///         (b"user2".to_vec(), b"b".to_vec()),
    ///         (b"user3".to_vec(), b"c".to_vec()),
    ///     ],
    /// );
    /// ```
    pub fn scan(&self, start: &[u8], n: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.execute(vec![Op::scan(start, n)])
            .pop()
            .expect("one reply per op")
            .into_pairs()
    }

    /// `delete(key)`.
    pub fn delete(&self, key: &[u8]) -> Result<()> {
        let invoked_at = self.recorder.as_ref().map(|h| h.invoke());
        let result = self.run(key, |kn| kn.delete(key));
        if let (Some(handle), Some(inv)) = (&self.recorder, invoked_at) {
            handle.record(key, Action::Delete, result.is_ok(), inv);
        }
        result
    }
}
