//! The client library.
//!
//! Clients cache the ownership metadata they obtain from a routing node and
//! talk directly to the owner KVS node for every request.  When the mapping
//! changes (reconfiguration, failure, replication), the contacted node
//! rejects the request and the client refreshes its cached metadata — exactly
//! the flow §3.1/§3.4 describe.

use crate::error::KvsError;
use crate::kn::KnNode;
use crate::kvs::KvsInner;
use crate::Result;
use dinomo_partition::{KnId, OwnershipTable};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Maximum routing retries before a request is failed back to the caller.
const MAX_RETRIES: usize = 100;

/// A client handle. Create one per application thread with
/// [`crate::Kvs::client`]; handles are independent and each caches its own
/// routing metadata.
#[derive(Debug)]
pub struct KvsClient {
    kvs: Arc<KvsInner>,
    cached: Mutex<OwnershipTable>,
    replica_rr: AtomicUsize,
}

impl KvsClient {
    pub(crate) fn new(kvs: Arc<KvsInner>) -> Self {
        let cached = kvs.ownership.read().clone();
        KvsClient { kvs, cached: Mutex::new(cached), replica_rr: AtomicUsize::new(0) }
    }

    /// Version of the routing metadata this client currently holds.
    pub fn cached_ownership_version(&self) -> u64 {
        self.cached.lock().version()
    }

    /// Refresh routing metadata from a routing node.
    pub fn refresh_routing(&self) {
        *self.cached.lock() = self.kvs.ownership.read().clone();
    }

    fn pick_owner(&self, key: &[u8]) -> Result<KnId> {
        let cached = self.cached.lock();
        let owners = cached.owners(key);
        if owners.is_empty() {
            return Err(KvsError::NoNodes);
        }
        // Round-robin across owners so replicated hot keys spread their load.
        let idx = self.replica_rr.fetch_add(1, Ordering::Relaxed) % owners.len();
        Ok(owners[idx])
    }

    fn node(&self, id: KnId) -> Option<Arc<KnNode>> {
        self.kvs.kns.read().get(&id).cloned()
    }

    /// Route an operation to the key's owner, refreshing stale routing
    /// metadata and retrying when a node rejects the request, is
    /// reconfiguring, or has failed (requests "time out" and are retried, as
    /// in the paper's failure handling).
    fn run<T: std::fmt::Debug>(
        &self,
        key: &[u8],
        mut op: impl FnMut(&KnNode) -> Result<T>,
    ) -> Result<T> {
        for attempt in 0..MAX_RETRIES {
            let owner = self.pick_owner(key)?;
            let result = match self.node(owner) {
                Some(node) => op(&node),
                None => Err(KvsError::NodeFailed),
            };
            match result {
                Err(KvsError::NotOwner { .. })
                | Err(KvsError::NodeFailed)
                | Err(KvsError::Reconfiguring) => {
                    self.refresh_routing();
                    if attempt > 10 {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    continue;
                }
                other => return other,
            }
        }
        Err(KvsError::RoutingRetriesExhausted)
    }

    /// `insert(key, value)`.
    pub fn insert(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.run(key, |kn| kn.put(key, value))
    }

    /// `update(key, value)`.
    pub fn update(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.run(key, |kn| kn.put(key, value))
    }

    /// `lookup(key)`.
    pub fn lookup(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.run(key, |kn| kn.get(key))
    }

    /// `delete(key)`.
    pub fn delete(&self, key: &[u8]) -> Result<()> {
        self.run(key, |kn| kn.delete(key))
    }
}
