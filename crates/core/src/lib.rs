//! # dinomo-core — the Dinomo key-value store
//!
//! This crate assembles the substrates (simulated fabric, PM pool, P-CLHT
//! index, DPM log/merge engine, DAC cache, ownership partitioning) into the
//! key-value store the paper describes, together with its two ablation
//! variants:
//!
//! * **Dinomo** — ownership partitioning + DAC + selective replication;
//! * **Dinomo-S** — identical but with a shortcut-only cache (isolates the
//!   benefit of DAC);
//! * **Dinomo-N** — shared-nothing: data and metadata are partitioned, so
//!   membership changes physically reshuffle data (isolates the benefit of
//!   sharing data in DPM while partitioning only ownership).
//!
//! The public API mirrors the paper's §3: `insert`, `update`, `lookup` and
//! `delete` over variable-sized keys and values ([`KvsClient`]), plus the
//! control-plane entry points the monitoring/management node uses:
//! [`Kvs::add_kn`], [`Kvs::remove_kn`], [`Kvs::fail_kn`],
//! [`Kvs::replicate_key`] and [`Kvs::dereplicate_key`].
//!
//! ```
//! use dinomo_core::{Kvs, KvsConfig};
//!
//! let kvs = Kvs::new(KvsConfig::small_for_tests()).unwrap();
//! let client = kvs.client();
//! client.insert(b"hello", b"world").unwrap();
//! assert_eq!(client.lookup(b"hello").unwrap(), Some(b"world".to_vec()));
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod config;
pub mod error;
pub mod kn;
pub mod kvs;
pub mod stats;

pub use client::KvsClient;
pub use config::{KvsConfig, Variant};
pub use error::KvsError;
pub use kvs::Kvs;
pub use stats::{KnStats, KvsStats};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, KvsError>;
