//! # dinomo-core — the Dinomo key-value store
//!
//! This crate assembles the substrates (simulated fabric, PM pool, P-CLHT
//! index, DPM log/merge engine, DAC cache, ownership partitioning) into the
//! key-value store the paper describes, together with its two ablation
//! variants:
//!
//! * **Dinomo** — ownership partitioning + DAC + selective replication;
//! * **Dinomo-S** — identical but with a shortcut-only cache (isolates the
//!   benefit of DAC);
//! * **Dinomo-N** — shared-nothing: data and metadata are partitioned, so
//!   membership changes physically reshuffle data (isolates the benefit of
//!   sharing data in DPM while partitioning only ownership).
//!
//! ## Quickstart
//!
//! Build a cluster with the fluent [`KvsBuilder`], then talk to it through a
//! per-thread [`KvsClient`]. The client API is batched at its core: submit a
//! `Vec<`[`Op`]`>` to [`KvsClient::execute`] and get one [`Reply`] per op.
//! The client groups the batch by owner KVS node using its cached routing
//! metadata and issues one request per node, amortizing routing, shard
//! locking and log flushing — the paper's per-request overheads — across the
//! group. Each node fans its group out across its per-shard worker
//! threads (bounded queues with [`KvsError::Busy`] backpressure; see the
//! [`executor`] module), so a batch executes concurrently on every
//! involved shard of every involved node while the caller waits on a
//! completion latch:
//!
//! ```
//! use dinomo_core::{Kvs, Op, Reply, Variant};
//!
//! let kvs = Kvs::builder()
//!     .small_for_tests()
//!     .initial_kns(2)
//!     .variant(Variant::Dinomo)
//!     .build()
//!     .unwrap();
//!
//! let client = kvs.client();
//! let replies = client.execute(vec![
//!     Op::insert("hello", "world"),
//!     Op::insert("batched", "api"),
//!     Op::lookup("hello"),
//! ]);
//! assert!(replies.iter().all(Reply::is_ok));
//! assert_eq!(replies[2].value(), Some(&b"world"[..]));
//!
//! // Batched conveniences and the classic per-key methods (which are thin
//! // wrappers over `execute`) coexist:
//! client.multi_put([("a", "1"), ("b", "2")]);
//! assert_eq!(client.lookup(b"a").unwrap(), Some(b"1".to_vec()));
//! ```
//!
//! The control-plane entry points the monitoring/management node uses are
//! [`Kvs::add_kn`], [`Kvs::remove_kn`], [`Kvs::fail_kn`],
//! [`Kvs::replicate_key`] and [`Kvs::dereplicate_key`].

#![warn(missing_docs)]

pub mod builder;
pub mod client;
pub mod config;
pub mod error;
pub mod executor;
pub mod hist;
pub mod kn;
pub mod kvs;
pub mod op;
pub mod stats;
pub mod trace;

pub use builder::KvsBuilder;
pub use client::KvsClient;
pub use config::{KvsConfig, Variant};
// Re-exported so callers can set compactor knobs (`KvsBuilder::gc`)
// without depending on the dpm crate directly.
pub use dinomo_dpm::GcConfig;
pub use error::KvsError;
pub use hist::LogHistogram;
pub use kvs::{DpmCrashReport, Kvs};
pub use op::{Op, Reply};
pub use stats::{KnStats, KvsStats};
pub use trace::{Action, HistoryRecorder, OpRecord, RecorderHandle};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, KvsError>;
