//! The KN worker-thread executor's building blocks.
//!
//! Each [`crate::kn::KnNode`] owns one worker thread per shard, fed by a
//! [`BoundedQueue`] of sub-batches. [`crate::KvsClient::execute`] splits an
//! owner group by shard, enqueues one sub-batch per involved shard with a
//! shared set of reply slots, and blocks on a [`WaitGroup`] until every
//! enqueued sub-batch has run — so a single batch fans out across all of a
//! node's shards concurrently, and independent clients stop serializing on
//! one caller thread. A full queue surfaces [`crate::KvsError::Busy`] to
//! the client's retry loop (backpressure instead of unbounded buffering).
//!
//! The primitives here are deliberately small and self-contained (the build
//! environment has no crates.io access): a Mutex+Condvar bounded MPSC
//! queue and a Go-style wait group.

use crate::Result;
use parking_lot::{Condvar, Mutex};
use std::cell::UnsafeCell;
use std::collections::VecDeque;

/// Why [`BoundedQueue::try_push`] rejected an item. The item is handed
/// back so the caller can fail it over (run inline, retry, or error out).
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity — backpressure; retry later.
    Full(T),
    /// The queue was closed (its node is shutting down); do not retry
    /// against this queue.
    Closed(T),
}

#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer single-consumer queue with non-blocking
/// producers and a blocking consumer.
///
/// Producers [`BoundedQueue::try_push`] and never block: a full queue is a
/// backpressure signal, not a place to wait (the KVS client turns it into
/// [`crate::KvsError::Busy`] and retries). The consumer [`BoundedQueue::pop`]s,
/// blocking until an item arrives or the queue is closed *and* drained —
/// so closing never drops enqueued work.
///
/// ```
/// use dinomo_core::executor::{BoundedQueue, PushError};
///
/// let q = BoundedQueue::new(2);
/// q.try_push(1).unwrap();
/// q.try_push(2).unwrap();
/// // Capacity reached: the rejected item is handed back.
/// assert!(matches!(q.try_push(3), Err(PushError::Full(3))));
///
/// q.close();
/// // A closed queue still drains what was accepted...
/// assert_eq!(q.pop(), Some(1));
/// assert_eq!(q.pop(), Some(2));
/// // ...then reports exhaustion, and rejects new work.
/// assert_eq!(q.pop(), None);
/// assert!(matches!(q.try_push(4), Err(PushError::Closed(4))));
/// ```
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    capacity: usize,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Create a queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            capacity: capacity.max(1),
            not_empty: Condvar::new(),
        }
    }

    /// Enqueue `item` without blocking. Fails with [`PushError::Full`] at
    /// capacity and [`PushError::Closed`] after [`BoundedQueue::close`].
    pub fn try_push(&self, item: T) -> std::result::Result<(), PushError<T>> {
        let mut state = self.state.lock();
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Rounds of polling an empty queue before the consumer parks on the
    /// condvar. A parked worker costs the producer a full wakeup
    /// (futex/syscall, scheduler latency — typically microseconds) on
    /// every handoff; under a trickle of small sub-batches that wakeup
    /// *is* the executor's latency floor. A short bounded spin keeps the
    /// worker hot across inter-arrival gaps up to a few microseconds
    /// while still parking (zero CPU) on genuinely idle queues.
    const POP_SPIN_ROUNDS: usize = 128;
    /// `spin_loop` hints between polls, so the spin window covers a
    /// realistic handoff gap without hammering the queue mutex.
    const POP_SPIN_PAUSES: usize = 24;

    /// Dequeue the oldest item, blocking while the queue is empty. Returns
    /// `None` once the queue is closed **and** fully drained.
    ///
    /// An empty queue is first polled in a bounded spin (`POP_SPIN_ROUNDS`
    /// rounds) so a producer that enqueues within the spin window hands
    /// off without paying a condvar wakeup; only then does the consumer
    /// park.
    pub fn pop(&self) -> Option<T> {
        for _ in 0..Self::POP_SPIN_ROUNDS {
            {
                let mut state = self.state.lock();
                if let Some(item) = state.items.pop_front() {
                    return Some(item);
                }
                if state.closed {
                    return None;
                }
            }
            for _ in 0..Self::POP_SPIN_PAUSES {
                std::hint::spin_loop();
            }
        }
        let mut state = self.state.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            self.not_empty.wait(&mut state);
        }
    }

    /// Close the queue: producers are rejected from now on, and the
    /// consumer drains the remaining items before seeing `None`.
    /// Idempotent.
    pub fn close(&self) {
        let mut state = self.state.lock();
        state.closed = true;
        drop(state);
        self.not_empty.notify_all();
    }

    /// Number of items currently queued (racy snapshot, for stats/tests).
    pub fn len(&self) -> usize {
        self.state.lock().items.len()
    }

    /// `true` if no items are currently queued (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A Go-style wait group: the dispatching thread [`WaitGroup::add`]s one
/// count per enqueued sub-batch, each worker calls [`WaitGroup::done`]
/// when its sub-batch has written its replies, and the dispatcher blocks
/// in [`WaitGroup::wait`] until the count returns to zero.
///
/// All `add` calls must happen before `wait` (the KVS client adds while
/// enqueuing, then waits once) — `wait` on a never-incremented group
/// returns immediately.
///
/// ```
/// use dinomo_core::executor::WaitGroup;
/// use std::sync::Arc;
///
/// let wg = Arc::new(WaitGroup::new());
/// wg.add(2);
/// for _ in 0..2 {
///     let wg = Arc::clone(&wg);
///     std::thread::spawn(move || wg.done());
/// }
/// wg.wait(); // returns once both workers called done()
/// ```
#[derive(Debug, Default)]
pub struct WaitGroup {
    count: Mutex<usize>,
    zero: Condvar,
}

impl WaitGroup {
    /// Create a wait group with a zero count.
    pub fn new() -> Self {
        WaitGroup::default()
    }

    /// Add `n` to the outstanding count.
    pub fn add(&self, n: usize) {
        *self.count.lock() += n;
    }

    /// Mark one unit of work complete. The `Mutex`/`Condvar` pair gives
    /// `done` → `wait` the release/acquire edge that makes the worker's
    /// reply-slot writes visible to the woken dispatcher.
    pub fn done(&self) {
        let mut count = self.count.lock();
        debug_assert!(*count > 0, "WaitGroup::done without a matching add");
        *count = count.saturating_sub(1);
        if *count == 0 {
            drop(count);
            self.zero.notify_all();
        }
    }

    /// Block until the outstanding count is zero.
    pub fn wait(&self) {
        let mut count = self.count.lock();
        while *count > 0 {
            self.zero.wait(&mut count);
        }
    }
}

/// A guard that calls [`WaitGroup::done`] when dropped, so a sub-batch
/// counts down even if its execution panics (a stuck client would
/// otherwise deadlock on [`WaitGroup::wait`]).
pub(crate) struct DoneGuard<'a>(pub(crate) &'a WaitGroup);

impl Drop for DoneGuard<'_> {
    fn drop(&mut self) {
        self.0.done();
    }
}

/// Per-operation result of a batch, shared between the dispatching client
/// thread and the shard workers serving its sub-batches.
pub(crate) type OpResult = Result<Option<Vec<u8>>>;

/// One reply slot per operation of a batch, written concurrently by shard
/// workers and read by the dispatching client after its [`WaitGroup`]
/// wait.
///
/// # Safety discipline
///
/// The slots are `UnsafeCell`s with no per-slot lock; soundness rests on
/// the executor's position-disjointness invariant:
///
/// * within a dispatch round, every pending position is routed to exactly
///   one owner group, and within a group to exactly one shard sub-batch
///   (or the caller-run shared/rejected path) — so no two threads ever
///   touch the same slot;
/// * the client reads slots only after [`WaitGroup::wait`] returned for
///   the round, which orders every worker's writes before the reads;
/// * rounds are sequential: a retry round re-dispatches only positions
///   whose previous writers have already counted down.
#[derive(Debug)]
pub(crate) struct ReplySlots {
    slots: Box<[UnsafeCell<Option<OpResult>>]>,
}

// SAFETY: see the "Safety discipline" section above — all concurrent
// access is to disjoint slots, and reads are ordered after writes by the
// round's WaitGroup.
unsafe impl Sync for ReplySlots {}

impl ReplySlots {
    /// `n` empty slots.
    pub(crate) fn new(n: usize) -> Self {
        ReplySlots {
            slots: (0..n).map(|_| UnsafeCell::new(None)).collect(),
        }
    }

    /// Write the result for `pos`.
    ///
    /// # Safety
    ///
    /// The caller must be the only thread accessing `pos` (the round's
    /// routing assigned `pos` to it), per the type-level discipline.
    pub(crate) unsafe fn set(&self, pos: usize, result: OpResult) {
        *self.slots[pos].get() = Some(result);
    }

    /// Take the result for `pos`, leaving the slot empty for a retry
    /// round.
    ///
    /// # Safety
    ///
    /// No worker may be writing concurrently: call only after the round's
    /// [`WaitGroup::wait`] returned (or before any dispatch).
    pub(crate) unsafe fn take(&self, pos: usize) -> Option<OpResult> {
        (*self.slots[pos].get()).take()
    }
}

/// One node's partial answer to a fanned-out scan: the sorted pairs it
/// contributed, or the error that aborted its part.
pub(crate) type ScanPartial = Result<Vec<(Vec<u8>, Vec<u8>)>>;

/// Everything a batch's sub-batches share: the operations, their routing
/// hashes, and the reply slots. One per `KvsClient::execute` call,
/// `Arc`-shared with every enqueued sub-batch.
#[derive(Debug)]
pub(crate) struct BatchShared {
    /// The batch's operations, in client order.
    pub(crate) ops: Vec<crate::op::Op>,
    /// `key_hash(ops[i].key())`, computed once while routing and reused by
    /// the nodes for their ring lookups.
    pub(crate) hashes: Vec<u64>,
    /// One reply slot per op.
    pub(crate) slots: ReplySlots,
    /// One accumulator per **scan** position (`None` elsewhere). Scans
    /// fan out to every live node, so — unlike every other op — several
    /// nodes write results for the same position in the same round; they
    /// cannot share the single-writer [`ReplySlots`] discipline and push
    /// their partials here under a lock instead. The dispatching client
    /// merges the partials after the round's wait and writes the final
    /// [`crate::Reply::Scan`] itself.
    pub(crate) scan_parts: Vec<Option<Mutex<Vec<ScanPartial>>>>,
}

impl BatchShared {
    pub(crate) fn new(ops: Vec<crate::op::Op>) -> Self {
        let hashes = ops
            .iter()
            .map(|op| dinomo_partition::key_hash(op.key()))
            .collect();
        let slots = ReplySlots::new(ops.len());
        let scan_parts = ops
            .iter()
            .map(|op| op.is_scan().then(|| Mutex::new(Vec::new())))
            .collect();
        BatchShared {
            ops,
            hashes,
            slots,
            scan_parts,
        }
    }

    /// Append one node's partial result for the scan at `pos`.
    pub(crate) fn push_scan_partial(&self, pos: usize, partial: ScanPartial) {
        self.scan_parts[pos]
            .as_ref()
            .expect("push_scan_partial on a non-scan position")
            .lock()
            .push(partial);
    }

    /// Drain the partials accumulated for the scan at `pos` (between
    /// rounds: retried scans start from an empty accumulator).
    pub(crate) fn take_scan_partials(&self, pos: usize) -> Vec<ScanPartial> {
        std::mem::take(
            &mut *self.scan_parts[pos]
                .as_ref()
                .expect("take_scan_partials on a non-scan position")
                .lock(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn queue_fifo_capacity_and_close() {
        let q = BoundedQueue::new(2);
        assert!(q.is_empty());
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert!(matches!(q.try_push(3), Err(PushError::Full(3))));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        q.close();
        q.close(); // idempotent
        assert!(matches!(q.try_push(4), Err(PushError::Closed(4))));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_blocks_until_push_or_close() {
        let q = Arc::new(BoundedQueue::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            })
        };
        for i in 0..10 {
            loop {
                match q.try_push(i) {
                    Ok(()) => break,
                    Err(PushError::Full(_)) => std::thread::yield_now(),
                    Err(PushError::Closed(_)) => panic!("queue closed early"),
                }
            }
        }
        q.close();
        assert_eq!(consumer.join().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn wait_group_round_trips() {
        let wg = Arc::new(WaitGroup::new());
        wg.wait(); // zero count: returns immediately
        wg.add(3);
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let wg = Arc::clone(&wg);
                std::thread::spawn(move || {
                    let _guard = DoneGuard(&wg);
                })
            })
            .collect();
        wg.wait();
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn reply_slots_set_then_take() {
        let slots = ReplySlots::new(3);
        // SAFETY: single-threaded test — trivially disjoint.
        unsafe {
            assert!(slots.take(0).is_none());
            slots.set(1, Ok(Some(b"v".to_vec())));
            assert_eq!(slots.take(1), Some(Ok(Some(b"v".to_vec()))));
            assert!(slots.take(1).is_none(), "take empties the slot");
        }
    }

    /// Run the queue gauntlet for one generated case: `producers` threads
    /// each push their numbered items (spinning through `Full`, stopping
    /// at `Closed`), one consumer drains until `None`, and the queue is
    /// closed at an arbitrary point in the middle of it all. Returns
    /// (per-producer accepted items, consumed items in pop order).
    #[allow(clippy::type_complexity)]
    fn queue_gauntlet(
        capacity: usize,
        producers: usize,
        items: usize,
        close_after: usize,
    ) -> (Vec<Vec<(usize, usize)>>, Vec<(usize, usize)>) {
        let q = Arc::new(BoundedQueue::new(capacity));
        std::thread::scope(|s| {
            let consumer = {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            };
            let handles: Vec<_> = (0..producers)
                .map(|p| {
                    let q = Arc::clone(&q);
                    s.spawn(move || {
                        let mut accepted = Vec::new();
                        'items: for i in 0..items {
                            loop {
                                match q.try_push((p, i)) {
                                    Ok(()) => {
                                        accepted.push((p, i));
                                        break;
                                    }
                                    Err(PushError::Full(_)) => std::thread::yield_now(),
                                    Err(PushError::Closed(_)) => break 'items,
                                }
                            }
                        }
                        accepted
                    })
                })
                .collect();
            // Close at an arbitrary point relative to the pushes/pops.
            for _ in 0..close_after {
                std::thread::yield_now();
            }
            q.close();
            let accepted = handles.into_iter().map(|h| h.join().unwrap()).collect();
            (accepted, consumer.join().unwrap())
        })
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(64))]

        /// Close-then-drain: whatever the push/pop/close interleaving,
        /// every item the queue *accepted* is popped exactly once, in
        /// per-producer FIFO order, and nothing else ever comes out.
        #[test]
        fn queue_close_then_drain_loses_and_duplicates_nothing(
            capacity in 1usize..6,
            producers in 1usize..5,
            items in 0usize..48,
            close_after in 0usize..96,
        ) {
            let (accepted, consumed) = queue_gauntlet(capacity, producers, items, close_after);
            let total: usize = accepted.iter().map(Vec::len).sum();
            proptest::prop_assert_eq!(
                consumed.len(), total,
                "accepted {} items but drained {}", total, consumed.len()
            );
            for (p, accepted_by_p) in accepted.iter().enumerate() {
                let consumed_from_p: Vec<(usize, usize)> = consumed
                    .iter()
                    .filter(|(owner, _)| *owner == p)
                    .copied()
                    .collect();
                proptest::prop_assert_eq!(
                    &consumed_from_p, accepted_by_p,
                    "producer {}'s items were dropped, duplicated or reordered", p
                );
            }
        }

        /// Position disjointness: concurrent writers that each own a
        /// disjoint subset of the slots (the executor's per-round routing
        /// invariant, here randomized over arbitrary sub-batch splits)
        /// never corrupt each other's replies.
        #[test]
        fn reply_slots_tolerate_any_disjoint_split(
            assignment in proptest::collection::vec(0usize..5, 1..64),
        ) {
            const WRITERS: usize = 5;
            let n = assignment.len();
            let slots = ReplySlots::new(n);
            let latch = WaitGroup::new();
            latch.add(WRITERS);
            std::thread::scope(|s| {
                for writer in 0..WRITERS {
                    let slots = &slots;
                    let latch = &latch;
                    let assignment = &assignment;
                    s.spawn(move || {
                        let _done = DoneGuard(latch);
                        for (pos, owner) in assignment.iter().enumerate() {
                            if *owner == writer {
                                // SAFETY: `assignment` routes every position
                                // to exactly one writer, and the latch
                                // orders these writes before the reads
                                // below — the ReplySlots discipline.
                                unsafe {
                                    slots.set(pos, Ok(Some(pos.to_be_bytes().to_vec())));
                                }
                            }
                        }
                    });
                }
                latch.wait();
            });
            for pos in 0..n {
                // SAFETY: all writers counted the latch down above.
                let got = unsafe { slots.take(pos) };
                proptest::prop_assert_eq!(
                    got,
                    Some(Ok(Some(pos.to_be_bytes().to_vec()))),
                    "slot {} lost or corrupted its writer's reply", pos
                );
            }
        }
    }
}
