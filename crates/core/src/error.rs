//! KVS error type.

use dinomo_pmem::PmemError;
use std::fmt;

/// Errors surfaced by the KVS public API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvsError {
    /// The contacted KVS node does not own the key's range (the client must
    /// refresh its routing metadata and retry).
    NotOwner {
        /// Ownership-table version held by the rejecting node.
        current_version: u64,
    },
    /// The contacted KVS node has failed (requests time out).
    NodeFailed,
    /// The cluster currently has no KVS nodes.
    NoNodes,
    /// The target node is temporarily unavailable because it participates in
    /// an ongoing reconfiguration.
    Reconfiguring,
    /// The contacted KVS node's shard-worker queues are full (backpressure):
    /// the request was not enqueued and should be retried after a short
    /// pause. Surfaced by the batched path when a bounded sub-batch queue
    /// rejects an enqueue; the client's retry loop handles it
    /// transparently.
    Busy,
    /// The key does not exist (returned by `update` on a missing key).
    KeyNotFound,
    /// A persistent-memory allocation failed.
    Pmem(PmemError),
    /// The client retried routing too many times without converging.
    RoutingRetriesExhausted,
    /// The post-recovery invariant walk (`check_tree`/`check_ordered`)
    /// failed after a simulated crash: recovery left the indexes
    /// inconsistent. The payload describes the first violated invariant.
    RecoveryCheckFailed(String),
}

impl fmt::Display for KvsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvsError::NotOwner { current_version } => {
                write!(
                    f,
                    "node does not own this key range (ownership version {current_version})"
                )
            }
            KvsError::NodeFailed => write!(f, "KVS node has failed"),
            KvsError::NoNodes => write!(f, "cluster has no KVS nodes"),
            KvsError::Reconfiguring => write!(f, "node is reconfiguring"),
            KvsError::Busy => write!(f, "node worker queues are full"),
            KvsError::KeyNotFound => write!(f, "key not found"),
            KvsError::Pmem(e) => write!(f, "persistent memory error: {e}"),
            KvsError::RoutingRetriesExhausted => write!(f, "routing retries exhausted"),
            KvsError::RecoveryCheckFailed(msg) => {
                write!(f, "post-recovery invariant check failed: {msg}")
            }
        }
    }
}

impl std::error::Error for KvsError {}

impl From<PmemError> for KvsError {
    fn from(e: PmemError) -> Self {
        KvsError::Pmem(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_from() {
        let e: KvsError = PmemError::InjectedFailure.into();
        assert!(matches!(e, KvsError::Pmem(_)));
        assert!(KvsError::NotOwner { current_version: 3 }
            .to_string()
            .contains('3'));
        assert!(!KvsError::NodeFailed.to_string().is_empty());
    }
}
