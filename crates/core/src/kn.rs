//! The KVS node (KN): per-thread shards, DAC cache, log writer, unmerged-log
//! tracking, and the request paths of §3.6.

use crate::config::{KvsConfig, Variant};
use crate::error::KvsError;
use crate::executor::{BatchShared, BoundedQueue, DoneGuard, OpResult, PushError, WaitGroup};
use crate::op::Op;
use crate::stats::KnStats;
use crate::Result;
use dinomo_cache::{build_cache, CacheLookup, CacheStats, KnCache, ValueLoc};
use dinomo_dpm::{BloomFilter, DpmNode, Guard, LogOp, LogWriter};
use dinomo_partition::{key_hash, HashRing, KnId, OwnershipTable};
use dinomo_pmem::PmAddr;
use dinomo_simnet::Nic;
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// State of a write that is durable (or buffered) but may not yet be merged
/// into the DPM metadata index.
#[derive(Debug, Clone)]
enum Unmerged {
    /// Buffered in the log writer, not yet flushed. We keep the bytes so
    /// reads on this KN see the write immediately.
    Pending(Vec<u8>),
    /// Flushed (durable) at this location, waiting for the merge engine.
    Committed { addr: PmAddr, len: u32 },
    /// A buffered or flushed delete.
    Deleted,
}

/// One worker-thread shard of a KVS node: its cache partition, log writer and
/// unmerged-write tracking (§4: "un-merged log segments are cached in the KNs
/// that wrote them", with Bloom filters for membership checks).
struct Shard {
    cache: Box<dyn KnCache>,
    writer: LogWriter,
    unmerged: HashMap<Vec<u8>, Unmerged>,
    bloom: BloomFilter,
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("cache", &self.cache.name())
            .field("unmerged", &self.unmerged.len())
            .finish()
    }
}

/// Sentinel passed as `client_version` when the caller did not route
/// against a known ownership-table version: never equal to a real version,
/// so the full per-key ownership verification always runs.
pub(crate) const NO_VERSION: u64 = u64::MAX;

/// Cached scan-routing state (see [`KnNode::scan`]): the global-ring
/// snapshot the scan's merge phase filters tree keys with, pinned to the
/// ownership-table version it was cloned at. Caching it per version lets a
/// scan hold the ownership read-lock only long enough to validate the
/// client's version and capture the overlay snapshot — not across the
/// whole ordered-index walk.
#[derive(Debug)]
struct ScanRing {
    version: u64,
    ring: HashRing,
}

/// One sub-batch of a client batch, bound to one shard of one node: the
/// unit of work a shard worker dequeues. Executing it writes each
/// position's reply slot and counts the batch's latch down.
pub(crate) struct SubBatch {
    node: Arc<KnNode>,
    shard: u32,
    batch: Arc<BatchShared>,
    positions: Vec<usize>,
    latch: Arc<WaitGroup>,
    /// Ownership-table version the routes in `positions` were resolved
    /// against; execution rejects if the table has moved on since (see
    /// [`KnNode::run_queued_sub_batch`]).
    resolved_version: u64,
    /// When the dispatching client pushed this task (None with
    /// observability disabled); the worker bills the gap to
    /// `stage_queue_wait_ns` at dequeue.
    enqueued_at: Option<Instant>,
}

impl std::fmt::Debug for SubBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubBatch")
            .field("node", &self.node.id)
            .field("shard", &self.shard)
            .field("positions", &self.positions.len())
            .finish()
    }
}

impl SubBatch {
    fn run(self) {
        let SubBatch {
            node,
            shard,
            batch,
            positions,
            latch,
            resolved_version,
            enqueued_at,
        } = self;
        dinomo_obs::record_since(&node.metrics.queue_wait, enqueued_at);
        // Count down even if execution panics, so the dispatching client
        // never deadlocks on the latch.
        let _done = DoneGuard(&latch);
        node.run_queued_sub_batch(
            shard,
            &batch.ops,
            &positions,
            resolved_version,
            &mut |pos, r| {
                // SAFETY: this round's routing assigned `positions` exclusively
                // to this sub-batch (see ReplySlots' safety discipline).
                unsafe { batch.slots.set(pos, r) }
            },
        );
    }
}

/// The per-node worker pool: one thread per shard, each draining a bounded
/// queue of [`SubBatch`]es.
#[derive(Debug)]
struct NodeExecutor {
    queues: Vec<Arc<BoundedQueue<SubBatch>>>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// Decrements an in-flight counter when dropped (panic-safe).
struct DecrementOnDrop<'a>(&'a AtomicUsize);

impl Drop for DecrementOnDrop<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn worker_loop(queue: Arc<BoundedQueue<SubBatch>>) {
    while let Some(task) = queue.pop() {
        // A panicking sub-batch must not take the worker (and every queued
        // batch behind it) down with it; the task's DoneGuard has already
        // released its latch.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task.run()));
    }
}

/// Registry handles the node's hot paths record through (resolved once
/// at construction; see `docs/OBSERVABILITY.md`).
#[derive(Debug)]
struct KnMetrics {
    /// `kn_busy_rejections` — cluster-wide aggregate of bounded-queue
    /// rejections (the per-node count stays in [`KnNode::stats`]).
    busy_rejections: dinomo_obs::Counter,
    /// `stage_queue_wait_ns` — sub-batch time in an executor queue.
    queue_wait: dinomo_obs::Histogram,
    /// `stage_shard_execute_ns` — sub-batch execution on a shard.
    shard_execute: dinomo_obs::Histogram,
}

impl KnMetrics {
    fn new(registry: &dinomo_obs::Registry) -> Self {
        KnMetrics {
            busy_rejections: registry.counter("kn_busy_rejections"),
            queue_wait: registry.stage(dinomo_obs::Stage::QueueWait),
            shard_execute: registry.stage(dinomo_obs::Stage::ShardExecute),
        }
    }
}

/// A KVS node.
#[derive(Debug)]
pub struct KnNode {
    id: KnId,
    variant: Variant,
    nic: Nic,
    dpm: Arc<DpmNode>,
    ownership: Arc<RwLock<OwnershipTable>>,
    shards: Vec<Mutex<Shard>>,
    /// Per-version global-ring snapshot for the scan path's tree-key
    /// filtering; dropped by [`KnNode::clear_caches`] on ownership
    /// hand-off so a stale ring can never filter for ranges the node no
    /// longer owns.
    scan_ring: Mutex<Option<Arc<ScanRing>>>,
    write_batch_ops: usize,
    executor: Option<NodeExecutor>,
    /// Sub-batches below this size run inline on the dispatching thread
    /// (`KvsConfig::executor_min_sub_batch`).
    min_sub_batch: usize,
    /// Sub-batches currently executing on any thread (workers or inline
    /// callers); reconfiguration drains this to zero after turning the
    /// node unavailable, so no straggler can buffer a write behind the
    /// pre-handoff flush.
    in_flight: AtomicUsize,
    failed: AtomicBool,
    reconfiguring: AtomicBool,
    ops: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
    rejected: AtomicU64,
    sub_batches: AtomicU64,
    busy_rejections: AtomicU64,
    busy_ns: AtomicU64,
    metrics: KnMetrics,
}

impl KnNode {
    /// Build a KVS node and its shards, recording into `registry` (the
    /// cluster-wide metrics registry owned by the `Kvs`).
    pub fn new(
        id: KnId,
        config: &KvsConfig,
        dpm: Arc<DpmNode>,
        ownership: Arc<RwLock<OwnershipTable>>,
        registry: &dinomo_obs::Registry,
    ) -> Self {
        let nic = Nic::new(config.fabric);
        let shards = (0..config.threads_per_kn.max(1))
            .map(|_| {
                Mutex::new(Shard {
                    cache: build_cache(
                        config.effective_cache_kind(),
                        config.cache_bytes_per_shard(),
                    ),
                    writer: LogWriter::new(Arc::clone(&dpm), id, nic.clone()),
                    unmerged: HashMap::new(),
                    bloom: BloomFilter::new(4096),
                })
            })
            .collect::<Vec<_>>();
        let executor = (config.executor_queue_depth > 0).then(|| {
            let queues: Vec<Arc<BoundedQueue<SubBatch>>> = (0..shards.len())
                .map(|_| Arc::new(BoundedQueue::new(config.executor_queue_depth)))
                .collect();
            let handles = queues
                .iter()
                .enumerate()
                .map(|(shard, queue)| {
                    let queue = Arc::clone(queue);
                    std::thread::Builder::new()
                        .name(format!("dinomo-kn{id}-w{shard}"))
                        .spawn(move || worker_loop(queue))
                        .expect("spawning a shard worker failed")
                })
                .collect();
            NodeExecutor {
                queues,
                handles: Mutex::new(handles),
            }
        });
        KnNode {
            id,
            variant: config.variant,
            nic,
            dpm,
            ownership,
            shards,
            scan_ring: Mutex::new(None),
            write_batch_ops: config.write_batch_ops.max(1),
            executor,
            min_sub_batch: config.executor_min_sub_batch,
            in_flight: AtomicUsize::new(0),
            failed: AtomicBool::new(false),
            reconfiguring: AtomicBool::new(false),
            ops: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            sub_batches: AtomicU64::new(0),
            busy_rejections: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
            metrics: KnMetrics::new(registry),
        }
    }

    /// Node id.
    pub fn id(&self) -> KnId {
        self.id
    }

    /// The node's NIC (for round-trip accounting in tests and benches).
    pub fn nic(&self) -> &Nic {
        &self.nic
    }

    /// `true` once the node has been failed.
    pub fn is_failed(&self) -> bool {
        self.failed.load(Ordering::Acquire)
    }

    /// Simulate a fail-stop crash: the node stops serving and its DRAM
    /// contents (caches, unmerged-write tracking) are lost.
    ///
    /// In-flight sub-batches are drained first so no straggler repopulates
    /// the cleared caches; queued-but-unstarted sub-batches observe the
    /// failed flag when a worker picks them up and fail with
    /// [`KvsError::NodeFailed`] (which the client retries elsewhere).
    pub fn fail(&self) {
        self.failed.store(true, Ordering::SeqCst);
        self.drain_in_flight();
        *self.scan_ring.lock() = None;
        for shard in &self.shards {
            let mut s = shard.lock();
            s.cache.clear();
            s.unmerged.clear();
            s.bloom.clear();
        }
    }

    /// Mark the node unavailable while it participates in a reconfiguration
    /// (step 2 of §3.5) or available again (step 5).
    pub fn set_reconfiguring(&self, on: bool) {
        self.reconfiguring.store(on, Ordering::SeqCst);
    }

    fn check_available(&self) -> Result<()> {
        if self.failed.load(Ordering::SeqCst) {
            return Err(KvsError::NodeFailed);
        }
        if self.reconfiguring.load(Ordering::SeqCst) {
            return Err(KvsError::Reconfiguring);
        }
        Ok(())
    }

    /// Wait until no sub-batch is executing on this node.
    ///
    /// Callers first turn the node unavailable ([`KnNode::fail`] or
    /// [`KnNode::set_reconfiguring`]); every sub-batch increments
    /// `in_flight` *before* its availability check (both with `SeqCst`),
    /// so once this observes zero, any later sub-batch is guaranteed to
    /// see the unavailability flag and reject — no straggler can still
    /// buffer a write behind the reconfiguration's flush-and-merge.
    pub(crate) fn drain_in_flight(&self) {
        while self.in_flight.load(Ordering::SeqCst) > 0 {
            std::thread::yield_now();
        }
    }

    /// Sub-batches currently sitting in this node's worker queues (racy
    /// snapshot; 0 when the executor is disabled). Tests use this to
    /// assert the queues drained after churn.
    pub fn queued_sub_batches(&self) -> usize {
        self.executor
            .as_ref()
            .map(|e| e.queues.iter().map(|q| q.len()).sum())
            .unwrap_or(0)
    }

    /// Close the shard-worker queues, let the workers drain what was
    /// already accepted, and join them. Later enqueue attempts (from
    /// clients holding a stale handle to this node) fail over to
    /// [`KvsError::NodeFailed`] and are retried against the new owners.
    /// Idempotent; also run by `Drop`.
    pub fn shutdown_workers(&self) {
        let Some(executor) = &self.executor else {
            return;
        };
        for queue in &executor.queues {
            queue.close();
        }
        let handles = std::mem::take(&mut *executor.handles.lock());
        let current = std::thread::current().id();
        for handle in handles {
            // If the last Arc to this node is dropped by one of its own
            // workers (a task held the final reference), that worker must
            // not join itself; its queue is closed and it exits right
            // after this drop.
            if handle.thread().id() != current {
                let _ = handle.join();
            }
        }
    }

    fn check_ownership(&self, key: &[u8]) -> Result<u32> {
        let table = self.ownership.read();
        if !table.is_owner(self.id, key) {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(KvsError::NotOwner {
                current_version: table.version(),
            });
        }
        Ok(table.thread_of(self.id, key).unwrap_or(0))
    }

    fn shard_for(&self, thread: u32) -> &Mutex<Shard> {
        &self.shards[thread as usize % self.shards.len()]
    }

    /// Lock a shard for a per-op request, billing the wait to the
    /// queue-wait stage — on the per-op path the shard mutex *is* the
    /// queue: client threads that route to the same shard serialize
    /// here, exactly as the executor path's sub-batches wait in the
    /// shard worker's queue.
    fn lock_shard_for_op(&self, thread: u32) -> parking_lot::MutexGuard<'_, Shard> {
        self.metrics
            .queue_wait
            .time(|| self.shard_for(thread).lock())
    }

    fn is_replicated(&self, key: &[u8]) -> bool {
        self.variant.supports_selective_replication() && self.ownership.read().is_replicated(key)
    }

    // ------------------------------------------------------------- reads

    /// `lookup(key)`.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.check_available()?;
        let thread = self.check_ownership(key)?;
        let start = Instant::now();
        let result = if self.is_replicated(key) {
            self.get_shared(key)
        } else {
            self.get_owned(key, thread)
        };
        self.ops.fetch_add(1, Ordering::Relaxed);
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.busy_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        result
    }

    fn get_owned(&self, key: &[u8], thread: u32) -> Result<Option<Vec<u8>>> {
        let mut shard = self.lock_shard_for_op(thread);
        self.get_in_shard(&mut shard, key, &dinomo_dpm::pin())
    }

    /// The owned-key read path against an already-locked shard (shared by
    /// the per-op path and [`KnNode::run_batch`]). `guard` covers the
    /// index traversal of the miss path; the batch path pins it once for
    /// the whole batch.
    fn get_in_shard(
        &self,
        shard: &mut Shard,
        key: &[u8],
        guard: &Guard,
    ) -> Result<Option<Vec<u8>>> {
        match shard.cache.lookup(key) {
            CacheLookup::Value(v) => return Ok(Some(v)),
            CacheLookup::Shortcut(loc) => {
                // Validate the cached address before dereferencing it: the
                // DPM compactor may have relocated the entry and freed its
                // segment since this shortcut was cached (the relocation
                // observer invalidates, but a racing read can re-admit a
                // stale location afterwards). The check and the read both
                // run under the caller's epoch pin, and the compactor
                // defers the pool free past every pinned guard, so a
                // location that validates here cannot be reused mid-read.
                if self.dpm.value_addr_is_live_in(guard, PmAddr(loc.addr)) {
                    let value = self.dpm.read_value_at(&self.nic, PmAddr(loc.addr), loc.len);
                    shard.cache.admit_value(key, &value, loc);
                    return Ok(Some(value));
                }
                // Dangling shortcut: drop it and fall through to the miss
                // path, which re-resolves (and re-caches) the relocated
                // location through the index.
                shard.cache.invalidate(key);
            }
            CacheLookup::Miss => {}
        }
        // Check the KN's own unmerged writes before going to the index.
        if shard.bloom.may_contain(key) {
            match shard.unmerged.get(key).cloned() {
                Some(Unmerged::Pending(v)) => return Ok(Some(v)),
                Some(Unmerged::Committed { addr, len }) => {
                    // Same hazard as the shortcut hit: a committed-but-
                    // untracked-as-merged location may sit in a segment the
                    // compactor has since freed (its entry was merged, or
                    // it would not have been relocated — the index is
                    // authoritative for it).
                    if self.dpm.value_addr_is_live_in(guard, addr) {
                        let value = self.dpm.read_value_at(&self.nic, addr, len);
                        let loc = ValueLoc { addr: addr.0, len };
                        shard.cache.admit_value(key, &value, loc);
                        return Ok(Some(value));
                    }
                    shard.unmerged.remove(key);
                }
                Some(Unmerged::Deleted) => return Ok(None),
                None => {}
            }
        }
        // Full miss: traverse the metadata index remotely.
        let lookup = self.dpm.remote_read_in(guard, &self.nic, key);
        shard.cache.record_miss_cost(lookup.rts);
        match (&lookup.value, lookup.value_loc) {
            (Some(value), Some((addr, len))) => {
                if !lookup.indirect {
                    shard
                        .cache
                        .admit_value(key, value, ValueLoc { addr: addr.0, len });
                }
                Ok(Some(value.clone()))
            }
            _ => Ok(None),
        }
    }

    /// Read of a selectively-replicated key: indirection cell then value, as
    /// in §3.4 ("A KN reading a shared key has to first read the indirect
    /// pointer and then read the value").
    fn get_shared(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let Some(cell) = self.dpm.indirect_cell_of(key) else {
            // Replication was requested but the cell is not installed yet;
            // fall back to the ordinary path on shard 0.
            return self.get_owned(key, 0);
        };
        let Some(entry_loc) = self.dpm.remote_read_indirect(&self.nic, cell) else {
            return Ok(None);
        };
        self.nic.one_sided_read(entry_loc.len() as usize);
        let entry =
            dinomo_dpm::entry::decode_entry(self.dpm.pool(), entry_loc.addr(), entry_loc.len());
        Ok(entry
            .filter(|e| e.key == key)
            .map(|e| e.read_value(self.dpm.pool())))
    }

    // ------------------------------------------------------------- scans

    /// `scan(start, n)`, this node's share: up to `n` key/value pairs in
    /// key order, starting at the smallest key `>= start`, restricted to
    /// the keys **this node owns** on the global ring. The client fans a
    /// scan out to every member node and merges the sorted partials;
    /// exactly-one-owner-per-key makes the union complete and
    /// duplicate-free.
    ///
    /// `client_version` is the ownership-table version the client routed
    /// against. If this node's table disagrees, the scan rejects *as a
    /// whole* with [`KvsError::NotOwner`] rather than answer filtered by a
    /// different generation of the ring than its peers' — a half-migrated
    /// range must surface as a clean retry, never as a silently short
    /// result. `NO_VERSION` skips the check (the direct single-node call
    /// path, which filters by the node's current ring).
    ///
    /// Snapshot semantics: with every shard locked, the node captures (a)
    /// its unmerged overlay — acked writes and deletes the DPM index
    /// cannot serve yet — and (b) one immutable generation of the DPM's
    /// ordered index. That capture is the scan's single snapshot point;
    /// the shard locks are released before the tree walk, and the epoch
    /// pin keeps every location in the pinned generation dereferenceable
    /// even if the compactor relocates entries and frees their segments
    /// mid-scan.
    pub fn scan(
        &self,
        start: &[u8],
        n: usize,
        client_version: u64,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.check_available()?;
        let begin = Instant::now();
        let result = self.scan_owned(start, n, client_version);
        self.ops.fetch_add(1, Ordering::Relaxed);
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.busy_ns
            .fetch_add(begin.elapsed().as_nanos() as u64, Ordering::Relaxed);
        result
    }

    fn scan_owned(
        &self,
        start: &[u8],
        n: usize,
        client_version: u64,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        // Pin before snapshotting: every location captured below (overlay
        // committed locations and the whole ordered generation) stays
        // readable under this guard — the compactor defers segment frees
        // past every pinned epoch.
        let guard = dinomo_dpm::pin();
        let (ring, overlay, snapshot) = {
            let table = self.ownership.read();
            if client_version != NO_VERSION && table.version() != client_version {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(KvsError::NotOwner {
                    current_version: table.version(),
                });
            }
            let ring = self.scan_ring_at(&table);
            // Lock every shard, then capture overlay and tree generation
            // while all are held: no write can slip between one shard's
            // overlay and the tree, so the capture is one atomic snapshot
            // point for the whole node.
            let locked: Vec<_> = self.shards.iter().map(|s| s.lock()).collect();
            let mut overlay: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
            for shard in &locked {
                for (key, state) in &shard.unmerged {
                    if key.as_slice() < start
                        || ring.ring.owner(key_hash(key)) != Some(self.id)
                        // Selectively-replicated keys linearize through
                        // their indirection cell, not this node's unmerged
                        // tracking (another replica may have superseded the
                        // state here); the tree pass reads them via the
                        // cell.
                        || self.dpm.indirect_cell_of(key).is_some()
                    {
                        continue;
                    }
                    match state {
                        Unmerged::Pending(v) => {
                            overlay.insert(key.clone(), Some(v.clone()));
                        }
                        Unmerged::Committed { addr, len } => {
                            // As in the read path: a committed location in
                            // a since-freed segment is fully merged and
                            // relocated — the (fresher) tree location
                            // serves the key instead.
                            if self.dpm.value_addr_is_live_in(&guard, *addr) {
                                let value = self.dpm.read_value_at(&self.nic, *addr, *len);
                                overlay.insert(key.clone(), Some(value));
                            }
                        }
                        Unmerged::Deleted => {
                            overlay.insert(key.clone(), None);
                        }
                    }
                }
            }
            let snapshot = self.dpm.ordered().snapshot(&guard);
            (ring, overlay, snapshot)
        };
        // Merge the two sorted streams: the pinned tree generation
        // (filtered to this node's keys) and the overlay. On a shared key
        // the overlay wins — it is newer than anything merged.
        let mut out: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        let mut tree = snapshot
            .range_from(start)
            .filter(|(key, _)| ring.ring.owner(key_hash(key)) == Some(self.id))
            .peekable();
        let mut over = overlay.into_iter().peekable();
        while out.len() < n {
            let take_tree = match (tree.peek(), over.peek()) {
                (None, None) => break,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some((tree_key, _)), Some((over_key, _))) => {
                    if tree_key == over_key {
                        // Consume the tree's (superseded) entry alongside.
                        tree.next();
                        false
                    } else {
                        tree_key < over_key
                    }
                }
            };
            if take_tree {
                let (key, loc) = tree.next().expect("peeked above");
                if let Some(value) = self.scan_value(&guard, &key, loc) {
                    out.push((key, value));
                }
            } else {
                let (key, value) = over.next().expect("peeked above");
                if let Some(value) = value {
                    out.push((key, value));
                }
            }
        }
        Ok(out)
    }

    /// Resolve the value for a tree-sourced scan hit. A selectively-
    /// replicated key linearizes through its indirection cell (its ordered-
    /// index location deliberately goes stale while the cell is installed
    /// — see the merge engine), so it is read via the cell; everything
    /// else dereferences the entry location from the pinned generation
    /// directly. `None` drops the key from the scan (a cell carrying a
    /// delete tombstone).
    fn scan_value(&self, guard: &Guard, key: &[u8], loc: dinomo_dpm::PackedLoc) -> Option<Vec<u8>> {
        if let Some(cell) = self.dpm.indirect_cell_of(key) {
            let entry_loc = self.dpm.remote_read_indirect(&self.nic, cell)?;
            self.nic.one_sided_read(entry_loc.len() as usize);
            let entry =
                dinomo_dpm::entry::decode_entry(self.dpm.pool(), entry_loc.addr(), entry_loc.len());
            return entry
                .filter(|e| e.key == key)
                .map(|e| e.read_value(self.dpm.pool()));
        }
        self.dpm.read_entry_value_in(guard, &self.nic, loc)
    }

    /// The global-ring snapshot the scan's merge phase filters with,
    /// cloned from `table` at most once per ownership-table version.
    fn scan_ring_at(&self, table: &OwnershipTable) -> Arc<ScanRing> {
        let mut cached = self.scan_ring.lock();
        match cached.as_ref() {
            Some(cached) if cached.version == table.version() => Arc::clone(cached),
            _ => {
                let fresh = Arc::new(ScanRing {
                    version: table.version(),
                    ring: table.global_ring().clone(),
                });
                *cached = Some(Arc::clone(&fresh));
                fresh
            }
        }
    }

    // ------------------------------------------------------------ writes

    /// `insert(key, value)` / `update(key, value)`.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.check_available()?;
        let thread = self.check_ownership(key)?;
        let start = Instant::now();
        let result = if self.is_replicated(key) {
            self.put_shared(key, value, thread)
        } else {
            self.put_owned(key, value, thread)
        };
        self.ops.fetch_add(1, Ordering::Relaxed);
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.busy_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        result
    }

    fn put_owned(&self, key: &[u8], value: &[u8], thread: u32) -> Result<()> {
        let mut shard = self.lock_shard_for_op(thread);
        Self::put_in_shard(&mut shard, key, value);
        self.flush_if_due(&mut shard)
    }

    /// The owned-key write path against an already-locked shard: buffer the
    /// log record and track the pending write. The caller decides when to
    /// flush (per op for the singleton path, once per group for batches).
    fn put_in_shard(shard: &mut Shard, key: &[u8], value: &[u8]) {
        shard.writer.append_put(key, value);
        shard.cache.invalidate(key);
        shard
            .unmerged
            .insert(key.to_vec(), Unmerged::Pending(value.to_vec()));
        shard.bloom.insert(key);
    }

    /// The delete path against an already-locked shard. Returns the
    /// tombstone's global sequence number.
    fn delete_in_shard(shard: &mut Shard, key: &[u8]) -> u64 {
        let seq = shard.writer.append_delete(key);
        shard.cache.invalidate(key);
        shard.unmerged.insert(key.to_vec(), Unmerged::Deleted);
        shard.bloom.insert(key);
        seq
    }

    /// Flush the shard's buffered log records if the write batch is full.
    fn flush_if_due(&self, shard: &mut Shard) -> Result<()> {
        if shard.writer.buffered_entries() >= self.write_batch_ops {
            Self::flush_shard(&self.dpm, self.id, shard)?;
        }
        Ok(())
    }

    /// Update of a selectively-replicated key: log the value, then CAS the
    /// indirection cell to the new entry.
    fn put_shared(&self, key: &[u8], value: &[u8], thread: u32) -> Result<()> {
        let mut shard = self.lock_shard_for_op(thread);
        shard.cache.invalidate(key);
        let seq = shard.writer.append_put(key, value);
        let commits = shard.writer.flush()?;
        let new_loc = commits
            .iter()
            .rev()
            .find(|c| c.key == key)
            .expect("flushed batch must contain the appended key")
            .entry_loc;
        // Earlier entries in the same batch are handled by the merge engine;
        // this key is made visible by swinging the cell.
        drop(shard);
        let Some(cell) = self.dpm.indirect_cell_of(key) else {
            // Replication raced with de-replication; the merge engine will
            // make the logged entry visible through the index.
            return Ok(());
        };
        // Swings the cell whether it holds a live value or a delete
        // tombstone (the put re-installs visibility after a delete) —
        // unless the cell already publishes newer state.
        self.dpm.publish_shared_put(&self.nic, cell, new_loc, seq);
        Ok(())
    }

    /// Delete of a selectively-replicated key: log the tombstone, then mark
    /// the indirection cell with a delete tombstone so shared readers on
    /// **every** replica observe the delete immediately — an acknowledged
    /// delete must not keep serving the old value until its log tombstone is
    /// flushed and merged. The merge engine later removes the index entry
    /// and releases the cell.
    fn delete_shared(&self, key: &[u8], thread: u32) -> Result<()> {
        let mut shard = self.lock_shard_for_op(thread);
        let seq = Self::delete_in_shard(&mut shard, key);
        let flushed = self.flush_if_due(&mut shard);
        drop(shard);
        flushed?;
        if let Some(cell) = self.dpm.indirect_cell_of(key) {
            self.dpm.publish_shared_delete(&self.nic, cell, seq);
        }
        Ok(())
    }

    /// `delete(key)`.
    pub fn delete(&self, key: &[u8]) -> Result<()> {
        self.check_available()?;
        let thread = self.check_ownership(key)?;
        let start = Instant::now();
        let result = if self.is_replicated(key) {
            self.delete_shared(key, thread)
        } else {
            let mut shard = self.lock_shard_for_op(thread);
            Self::delete_in_shard(&mut shard, key);
            self.flush_if_due(&mut shard)
        };
        self.ops.fetch_add(1, Ordering::Relaxed);
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.busy_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        result
    }

    // ------------------------------------------------------------ batches

    /// Serve a group of operations that a client routed to this node in one
    /// request (§3.6's per-request overheads paid once per *group*):
    ///
    /// * availability is checked once for the group;
    /// * ownership is resolved for every key under a **single** read
    ///   acquisition of the ownership table, with one key hash shared by
    ///   the owner and thread ring lookups;
    /// * operations are applied per worker shard with **one** lock
    ///   acquisition per shard, and buffered log writes are flushed at most
    ///   **once** per shard instead of once per op.
    ///
    /// Results are positional (`result[i]` answers `ops[i]`). Operations on
    /// keys this node does not own fail with [`KvsError::NotOwner`]
    /// individually — the rest of the group still executes — so a client
    /// racing a reconfiguration retries only the rejected subset.
    ///
    /// Within the group, operations on the same key apply in group order
    /// (same key → same shard, and each shard applies its sub-group in
    /// order). No ordering is guaranteed across different keys, exactly as
    /// with concurrent per-op calls.
    pub fn run_batch(&self, ops: &[Op]) -> Vec<Result<Option<Vec<u8>>>> {
        let positions: Vec<usize> = (0..ops.len()).collect();
        let hashes: Vec<u64> = ops.iter().map(|op| key_hash(op.key())).collect();
        let mut out: Vec<Option<Result<Option<Vec<u8>>>>> = vec![None; ops.len()];
        // `NO_VERSION` forces the full per-key ownership verification.
        self.run_batch_into(ops, &positions, &hashes, NO_VERSION, &mut out);
        out.into_iter()
            .map(|r| r.expect("every op in the batch got a result"))
            .collect()
    }

    /// Allocation-lean core of [`KnNode::run_batch`], shaped for the
    /// client's owner-grouped dispatch: serve `ops[positions[..]]` and write
    /// each result to `out[position]` (left `None` only if this node is
    /// unavailable — the caller treats unanswered positions as retryable).
    ///
    /// `hashes[pos]` must be `key_hash(ops[pos].key())` — the client hashed
    /// each key to route it, so the node reuses the hash for its own ring
    /// lookups. `client_version` is the ownership-table version the caller
    /// routed against (§3.1's staleness detection, applied batch-wide): when
    /// it equals the node's current version the tables are identical, the
    /// client's routing is known-correct, and the per-key ownership
    /// re-verification is skipped for the whole group.
    pub(crate) fn run_batch_into(
        &self,
        ops: &[Op],
        positions: &[usize],
        hashes: &[u64],
        client_version: u64,
        out: &mut [Option<Result<Option<Vec<u8>>>>],
    ) {
        // The increment must precede the availability check (both SeqCst)
        // so `drain_in_flight` cannot observe zero while a group that
        // passed the check is still executing; see its doc comment.
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        let _in_flight = DecrementOnDrop(&self.in_flight);
        if let Err(e) = self.check_available() {
            for &pos in positions {
                out[pos] = Some(Err(e.clone()));
            }
            return;
        }
        let (routes, _) =
            self.resolve_routes(ops, positions, hashes, client_version, &mut |pos, e| {
                out[pos] = Some(Err(e))
            });
        let start = Instant::now();
        let mut reads = 0u64;
        let mut writes = 0u64;
        for shard_idx in 0..self.shards.len() as u32 {
            if !routes.contains(&shard_idx) {
                continue;
            }
            let (r, w) = self.run_shard_sub_batch_core(
                shard_idx,
                ops,
                Self::shard_positions(positions, &routes, shard_idx),
                &mut |pos, r| out[pos] = Some(r),
            );
            reads += r;
            writes += w;
        }
        let (r, w) =
            self.run_shared_core(ops, positions, &routes, &mut |pos, r| out[pos] = Some(r));
        // Scans on the direct path are served against this node alone and
        // reduced to their first pair's value to fit the positional result
        // shape; full fanned-out scans go through the client.
        for (&pos, &route) in positions.iter().zip(&routes) {
            if route != Self::ROUTE_SCAN {
                continue;
            }
            let Op::Scan { start, n } = &ops[pos] else {
                unreachable!("ROUTE_SCAN is only assigned to scans");
            };
            out[pos] = Some(
                self.scan_owned(start, *n, client_version)
                    .map(|pairs| pairs.into_iter().next().map(|(_, v)| v)),
            );
        }
        self.record_batch_work(reads + r, writes + w, start);
    }

    /// The executor's dispatch path, shaped like [`KnNode::run_batch_into`]
    /// but writing into the batch's shared reply slots: resolve ownership
    /// for the owner group once, split it by shard, and enqueue one
    /// [`SubBatch`] per involved shard onto that shard's worker queue.
    /// Replicated keys run in order on the calling thread (they linearize
    /// through their DPM indirection cell and never share a key with the
    /// owned sub-batches of the same round, so the two can overlap).
    ///
    /// Backpressure: a full shard queue fails that shard's positions with
    /// [`KvsError::Busy`] — the client retries them after a pause. With
    /// the executor disabled (`executor_queue_depth == 0`) every sub-batch
    /// runs inline on the caller, the pre-executor behaviour.
    ///
    /// Every enqueued sub-batch `add`s one count to `latch` before the
    /// push, and counts down when it has written its positions' slots (or
    /// immediately, if the push is rejected); the caller may only read the
    /// slots after `latch.wait()` returns.
    pub(crate) fn submit_batch(
        self: &Arc<Self>,
        batch: &Arc<BatchShared>,
        positions: &[usize],
        client_version: u64,
        latch: &Arc<WaitGroup>,
    ) {
        // SAFETY (for every `slots.set` below): `positions` is this
        // round's exclusive assignment to this node, and the per-shard /
        // shared / rejected splits below are disjoint by construction.
        let slots = &batch.slots;
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        let _in_flight = DecrementOnDrop(&self.in_flight);
        if let Err(e) = self.check_available() {
            for &pos in positions {
                unsafe { slots.set(pos, Err(e.clone())) };
            }
            return;
        }
        let ops = &batch.ops;
        let (routes, resolved_version) = self.resolve_routes(
            ops,
            positions,
            &batch.hashes,
            client_version,
            &mut |pos, e| unsafe { slots.set(pos, Err(e)) },
        );
        let start = Instant::now();
        let mut reads = 0u64;
        let mut writes = 0u64;
        for shard_idx in 0..self.shards.len() as u32 {
            let count = routes.iter().filter(|&&route| route == shard_idx).count();
            if count == 0 {
                continue;
            }
            // A worker handoff (queue push + wakeup) only amortizes over
            // enough per-shard work; small sub-batches execute in place,
            // exactly as before the executor existed.
            let enqueue = match &self.executor {
                Some(executor) if count >= self.min_sub_batch.max(1) => Some(executor),
                _ => None,
            };
            match enqueue {
                None => {
                    let (r, w) = self.run_shard_sub_batch_core(
                        shard_idx,
                        ops,
                        Self::shard_positions(positions, &routes, shard_idx),
                        &mut |pos, r| unsafe { slots.set(pos, r) },
                    );
                    reads += r;
                    writes += w;
                }
                Some(executor) => {
                    let list: Vec<usize> =
                        Self::shard_positions(positions, &routes, shard_idx).collect();
                    latch.add(1);
                    let task = SubBatch {
                        node: Arc::clone(self),
                        shard: shard_idx,
                        batch: Arc::clone(batch),
                        positions: list,
                        latch: Arc::clone(latch),
                        resolved_version,
                        enqueued_at: dinomo_obs::stage_clock(),
                    };
                    match executor.queues[shard_idx as usize].try_push(task) {
                        Ok(()) => {
                            self.sub_batches.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(PushError::Full(task)) => {
                            // Bounded-queue backpressure: hand the shard's
                            // positions back to the client as Busy.
                            self.busy_rejections.fetch_add(1, Ordering::Relaxed);
                            self.metrics.busy_rejections.inc();
                            for &pos in &task.positions {
                                unsafe { slots.set(pos, Err(KvsError::Busy)) };
                            }
                            latch.done();
                        }
                        Err(PushError::Closed(task)) => {
                            // The node shut down (removed/failed) after the
                            // client resolved its handle; retry elsewhere.
                            for &pos in &task.positions {
                                unsafe { slots.set(pos, Err(KvsError::NodeFailed)) };
                            }
                            latch.done();
                        }
                    }
                }
            }
        }
        let (r, w) = self.run_shared_core(ops, positions, &routes, &mut |pos, r| unsafe {
            slots.set(pos, r)
        });
        // Scan positions (if a caller routed any through this path) run
        // inline on the dispatching thread and report through the batch's
        // multi-writer partial accumulators — several nodes answer the
        // same scan position per round, so scans cannot use the single-
        // writer reply slots.
        for (&pos, &route) in positions.iter().zip(&routes) {
            if route != Self::ROUTE_SCAN {
                continue;
            }
            let Op::Scan { start, n } = &ops[pos] else {
                unreachable!("ROUTE_SCAN is only assigned to scans");
            };
            batch.push_scan_partial(pos, self.scan_owned(start, *n, client_version));
        }
        self.record_batch_work(reads + r, writes + w, start);
    }

    /// Resolve ownership for a whole owner group under one read lock. The
    /// global and local rings are hoisted out of the loop, the client's
    /// key hashes feed the ring lookups, and the replicated-key check
    /// short-circuits on an empty replica table.
    ///
    /// Returns one route per position (parallel to `positions`): the shard
    /// index for owned keys, [`Self::ROUTE_SHARED`]`| thread` for keys that
    /// take the in-order shared pass, or [`Self::ROUTE_REJECTED`] for keys
    /// this node does not own (reported through `reject`).
    ///
    /// `client_version` is the ownership-table version the caller routed
    /// against (§3.1's staleness detection, applied batch-wide): when it
    /// equals the node's current version the tables are identical, the
    /// client's routing is known-correct, and the per-key ownership
    /// re-verification is skipped for the whole group.
    ///
    /// Also returns the table version the routes were resolved against,
    /// so queued sub-batches can detect that the table moved on while
    /// they waited (see [`KnNode::run_queued_sub_batch`]).
    fn resolve_routes(
        &self,
        ops: &[Op],
        positions: &[usize],
        hashes: &[u64],
        client_version: u64,
        reject: &mut dyn FnMut(usize, KvsError),
    ) -> (Vec<u32>, u64) {
        let mut routes: Vec<u32> = Vec::with_capacity(positions.len());
        let table = self.ownership.read();
        let replication = self.variant.supports_selective_replication();
        let global = table.global_ring();
        let local = table.local_ring(self.id);
        let verified = table.version() == client_version;
        for &pos in positions {
            let op = &ops[pos];
            if op.is_scan() {
                // Scans never route to a shard: they read every shard's
                // overlay at once and are served by the dedicated scan
                // pass after the point-op dispatch.
                routes.push(Self::ROUTE_SCAN);
                continue;
            }
            let key = op.key();
            let hash = hashes[pos];
            let replicated = table.is_replicated(key);
            let owned = verified
                || if replicated {
                    table.owners(key).contains(&self.id)
                } else {
                    global.owner(hash) == Some(self.id)
                };
            if !owned {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                reject(
                    pos,
                    KvsError::NotOwner {
                        current_version: table.version(),
                    },
                );
                routes.push(Self::ROUTE_REJECTED);
                continue;
            }
            let thread = local.and_then(|ring| ring.owner(hash)).unwrap_or(0);
            // Every op on a replicated key is deferred to the in-order
            // shared pass — including deletes, which must keep their
            // batch order relative to the key's shared-path writes.
            if replication && replicated {
                routes.push(Self::ROUTE_SHARED | thread);
            } else {
                routes.push(thread % self.shards.len() as u32);
            }
        }
        (routes, table.version())
    }

    /// Route tag for positions rejected with `NotOwner`.
    const ROUTE_REJECTED: u32 = u32::MAX;
    /// Route-tag bit for positions deferred to the in-order shared pass.
    const ROUTE_SHARED: u32 = 1 << 31;
    /// Route tag for scan positions, served by the scan pass (all shards
    /// at once) instead of any single shard.
    const ROUTE_SCAN: u32 = 1 << 30;

    /// The positions routed to `shard_idx`, in group order, with no
    /// allocation (the inline paths iterate this directly; the enqueue
    /// path collects it into the task).
    fn shard_positions<'a>(
        positions: &'a [usize],
        routes: &'a [u32],
        shard_idx: u32,
    ) -> impl Iterator<Item = usize> + Clone + 'a {
        positions
            .iter()
            .zip(routes)
            .filter(move |&(_, &route)| route == shard_idx)
            .map(|(&pos, _)| pos)
    }

    /// Execute one shard's slice of an owner group, in group order: the
    /// work a shard worker (or the inline fallback) performs. Locks the
    /// shard **once**, pins **one** epoch guard covering every index
    /// lookup of the sub-batch, and flushes buffered log writes at most
    /// once at the end. Results are reported per position through `set`;
    /// returns the `(reads, writes)` served so the caller can account the
    /// node-level counters (workers per task, inline paths once per
    /// group).
    fn run_shard_sub_batch_core(
        &self,
        shard_idx: u32,
        ops: &[Op],
        positions: impl Iterator<Item = usize> + Clone,
        set: &mut impl FnMut(usize, OpResult),
    ) -> (u64, u64) {
        self.metrics
            .shard_execute
            .time(|| self.run_shard_sub_batch_untimed(shard_idx, ops, positions, set))
    }

    /// [`KnNode::run_shard_sub_batch_core`] without the
    /// `stage_shard_execute_ns` accounting.
    fn run_shard_sub_batch_untimed(
        &self,
        shard_idx: u32,
        ops: &[Op],
        positions: impl Iterator<Item = usize> + Clone,
        set: &mut impl FnMut(usize, OpResult),
    ) -> (u64, u64) {
        let mut reads = 0u64;
        let mut writes = 0u64;
        // One epoch pin covers every index lookup this sub-batch performs
        // (the lock-free read side of the P-CLHT; see dinomo_pclht::pin).
        let guard = dinomo_dpm::pin();
        let mut shard = self.shards[shard_idx as usize].lock();
        let mut buffered_writes = false;
        for pos in positions.clone() {
            let result = match &ops[pos] {
                Op::Lookup { key } => {
                    reads += 1;
                    self.get_in_shard(&mut shard, key, &guard)
                }
                Op::Insert { key, value } | Op::Update { key, value } => {
                    writes += 1;
                    buffered_writes = true;
                    Self::put_in_shard(&mut shard, key, value);
                    Ok(None)
                }
                Op::Delete { key } => {
                    writes += 1;
                    buffered_writes = true;
                    Self::delete_in_shard(&mut shard, key);
                    Ok(None)
                }
                Op::Scan { .. } => {
                    unreachable!("scans route to ROUTE_SCAN, never to a shard")
                }
            };
            set(pos, result);
        }
        // One flush for the whole sub-batch. A flush failure is a
        // durability failure of every write buffered by this sub-batch, so
        // it is reported on each of them.
        if buffered_writes {
            if let Err(e) = self.flush_if_due(&mut shard) {
                for pos in positions {
                    if ops[pos].is_write() {
                        set(pos, Err(e.clone()));
                    }
                }
            }
        }
        (reads, writes)
    }

    /// A queued sub-batch, as executed by a shard worker: re-check
    /// availability **and** the ownership-table version (the task may have
    /// sat in the queue across a failure or a *completed* reconfiguration
    /// — a stale task must reject, not buffer writes for keys the node
    /// just handed off behind the hand-off flush, nor repopulate caches
    /// the protocol cleared), then run the shard core and account its
    /// work.
    fn run_queued_sub_batch(
        &self,
        shard_idx: u32,
        ops: &[Op],
        positions: &[usize],
        resolved_version: u64,
        set: &mut impl FnMut(usize, OpResult),
    ) {
        // The increment must precede the availability check (both SeqCst)
        // so `drain_in_flight` cannot observe zero while a sub-batch that
        // passed the check is still running; see its doc comment.
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        let _in_flight = DecrementOnDrop(&self.in_flight);
        if let Err(e) = self.check_available() {
            for &pos in positions {
                set(pos, Err(e.clone()));
            }
            return;
        }
        // Routes were resolved against `resolved_version`. The drain in
        // the reconfiguration path only covers *executing* sub-batches;
        // one still queued when the table was swapped would execute with
        // stale routes (e.g. write a key whose range just moved away,
        // acked but buffered behind the pre-handoff flush-and-merge). If
        // the table moved on, reject the whole sub-batch as NotOwner —
        // the client refreshes its metadata and re-routes.
        let current_version = self.ownership.read().version();
        if current_version != resolved_version {
            self.rejected
                .fetch_add(positions.len() as u64, Ordering::Relaxed);
            for &pos in positions {
                set(pos, Err(KvsError::NotOwner { current_version }));
            }
            return;
        }
        let start = Instant::now();
        let (reads, writes) =
            self.run_shard_sub_batch_core(shard_idx, ops, positions.iter().copied(), set);
        self.record_batch_work(reads, writes, start);
    }

    /// Execute the shared (replicated-key) pass of an owner group, one op
    /// at a time in group order. Replicated keys linearize through their
    /// indirection cell and lock shards internally; within a routing round
    /// they never share a key with the owned sub-batches (a key's
    /// replicated-ness is decided once per round under one table read), so
    /// this pass may overlap with the shard workers. Returns the
    /// `(reads, writes)` served.
    fn run_shared_core(
        &self,
        ops: &[Op],
        positions: &[usize],
        routes: &[u32],
        set: &mut impl FnMut(usize, OpResult),
    ) -> (u64, u64) {
        let mut reads = 0u64;
        let mut writes = 0u64;
        for (&pos, &route) in positions.iter().zip(routes) {
            if route == Self::ROUTE_REJECTED || route & Self::ROUTE_SHARED == 0 {
                continue;
            }
            let thread = route & !Self::ROUTE_SHARED;
            let result = match &ops[pos] {
                Op::Lookup { key } => {
                    reads += 1;
                    self.get_shared(key)
                }
                Op::Insert { key, value } | Op::Update { key, value } => {
                    writes += 1;
                    self.put_shared(key, value, thread).map(|()| None)
                }
                Op::Delete { key } => {
                    // As in `delete`: log the tombstone, then empty the
                    // indirection cell so the delete is visible on every
                    // replica at once.
                    writes += 1;
                    self.delete_shared(key, thread).map(|()| None)
                }
                Op::Scan { .. } => {
                    unreachable!("scans route to ROUTE_SCAN, never to the shared pass")
                }
            };
            set(pos, result);
        }
        (reads, writes)
    }

    /// Fold one batch execution's served operations into the node-level
    /// counters (ops, reads, writes, busy time since `start`).
    fn record_batch_work(&self, reads: u64, writes: u64, start: Instant) {
        self.ops.fetch_add(reads + writes, Ordering::Relaxed);
        self.reads.fetch_add(reads, Ordering::Relaxed);
        self.writes.fetch_add(writes, Ordering::Relaxed);
        self.busy_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    fn flush_shard(dpm: &Arc<DpmNode>, kn: KnId, shard: &mut Shard) -> Result<()> {
        let commits = shard.writer.flush()?;
        // A key may appear several times in one batch; only its *last* put
        // location is current, so index the batch by key first.
        let mut last_put: HashMap<&[u8], &dinomo_dpm::CommittedWrite> = HashMap::new();
        for c in &commits {
            if c.op == LogOp::Put {
                last_put.insert(c.key.as_slice(), c);
            }
        }
        for (key, c) in last_put {
            // Only keys whose newest program-order state is still this put
            // (i.e. not deleted later in the same batch) are refreshed.
            if let Some(Unmerged::Pending(v)) = shard.unmerged.get(key) {
                let loc = ValueLoc {
                    addr: c.value_addr.0,
                    len: c.value_len,
                };
                shard.cache.on_local_write(key, v, loc);
                shard.unmerged.insert(
                    c.key.clone(),
                    Unmerged::Committed {
                        addr: c.value_addr,
                        len: c.value_len,
                    },
                );
            }
        }
        // Once everything this shard ever flushed has been merged, the index
        // is authoritative and the unmerged tracking can be dropped.
        if !commits.is_empty()
            && shard.writer.buffered_entries() == 0
            && dpm.unmerged_segments(kn) == 0
        {
            shard.unmerged.clear();
            shard.bloom.clear();
        }
        Ok(())
    }

    // ------------------------------------------------- maintenance hooks

    /// Flush every shard's buffered writes to DPM (bounding write latency;
    /// also used before reconfiguration so pending logs can be merged).
    pub fn flush_pending_writes(&self) -> Result<()> {
        for shard in &self.shards {
            let mut s = shard.lock();
            Self::flush_shard(&self.dpm, self.id, &mut s)?;
        }
        Ok(())
    }

    /// Drop the node's DRAM request-path state — caches, unmerged-write
    /// tracking and bloom filters (the "current owner empties its cache"
    /// step of the reconfiguration protocol).
    ///
    /// Callers must have flushed this node's pending logs and waited for
    /// them to merge first, so the DPM index is authoritative for every key
    /// the node tracked. Dropping only the value cache here is not enough:
    /// a stale `unmerged` entry would survive the ownership hand-off, and a
    /// range that later *returns* to this node (scale out then back in, or
    /// a failure re-homing keys) would read an outdated location from it
    /// instead of the index.
    pub fn clear_caches(&self) {
        // The cached scan-routing ring goes too: after a hand-off it
        // describes ranges this node may no longer own, and a scan
        // filtering with it could return a silently short result instead
        // of rejecting for a clean client retry.
        *self.scan_ring.lock() = None;
        for shard in &self.shards {
            let mut s = shard.lock();
            s.cache.clear();
            s.unmerged.clear();
            s.bloom.clear();
        }
    }

    /// Fail-stop crash semantics for this node's DRAM: everything
    /// [`KnNode::clear_caches`] drops, plus the log writers'
    /// buffered-but-unflushed entries — a crash loses the KN's volatile
    /// state wholesale, flushed or not. Unlike `clear_caches` this needs
    /// no prior flush/merge: the surviving truth is whatever already
    /// reached the DPM log. Under `write_batch_ops = 1` (the check
    /// driver's configuration) every write flushes before it is
    /// acknowledged, so the discarded entries are exactly the
    /// never-acknowledged ones. Returns how many buffered entries died.
    pub fn discard_volatile_state(&self) -> usize {
        *self.scan_ring.lock() = None;
        let mut discarded = 0;
        for shard in &self.shards {
            let mut s = shard.lock();
            discarded += s.writer.discard_buffered();
            s.cache.clear();
            s.unmerged.clear();
            s.bloom.clear();
        }
        discarded
    }

    /// Drop all local state for a specific key (used when a key becomes
    /// selectively replicated or de-replicated, at which point the DPM —
    /// whose pending logs have been merged — is authoritative for it).
    pub fn invalidate_key(&self, key: &[u8]) {
        for shard in &self.shards {
            let mut s = shard.lock();
            s.cache.invalidate(key);
            s.unmerged.remove(key);
        }
    }

    /// The DPM compactor relocated `key`'s log entry away from `old_loc`:
    /// drop every cached location that points into the victim before its
    /// segment is freed.
    ///
    /// Unlike [`KnNode::invalidate_key`], this must **not** drop
    /// `Unmerged::Pending` state (an acked-but-unflushed write is only
    /// visible through it — removing it would serve the older, relocated
    /// value) and removes a `Committed` entry only when its address lies
    /// inside the relocated entry: a committed location elsewhere belongs
    /// to a *newer* write whose merge may still be in flight, and the
    /// index is not yet authoritative for it.
    pub fn on_entry_relocated(&self, key: &[u8], old_loc: dinomo_dpm::PackedLoc) {
        let start = old_loc.addr().0;
        let end = start + old_loc.len();
        for shard in &self.shards {
            let mut s = shard.lock();
            s.cache.invalidate(key);
            if let Some(Unmerged::Committed { addr, .. }) = s.unmerged.get(key) {
                if addr.0 >= start && addr.0 < end {
                    // The relocated entry *is* this committed write (the
                    // compactor only moves the indexed, fully-merged
                    // entry), so the index now serves its value.
                    s.unmerged.remove(key);
                }
            }
        }
    }

    /// Aggregate statistics for this node.
    pub fn stats(&self) -> KnStats {
        let mut cache = CacheStats::default();
        for shard in &self.shards {
            let s = shard.lock();
            let cs = s.cache.stats();
            cache.value_hits += cs.value_hits;
            cache.shortcut_hits += cs.shortcut_hits;
            cache.misses += cs.misses;
            cache.promotions += cs.promotions;
            cache.demotions += cs.demotions;
            cache.evictions += cs.evictions;
            cache.bytes_used += cs.bytes_used;
            cache.capacity_bytes += cs.capacity_bytes;
            cache.value_entries += cs.value_entries;
            cache.shortcut_entries += cs.shortcut_entries;
        }
        KnStats {
            id: self.id,
            ops: self.ops.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            sub_batches: self.sub_batches.load(Ordering::Relaxed),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            cache,
            nic: self.nic.snapshot(),
            busy_ns: self.busy_ns.load(Ordering::Relaxed),
        }
    }
}

impl Drop for KnNode {
    fn drop(&mut self) {
        // Backstop for nodes that were never explicitly shut down (e.g. a
        // whole cluster being dropped): close the worker queues and join
        // the workers. Queued tasks hold an `Arc` to this node, so by the
        // time the last reference drops the queues are necessarily empty.
        self.shutdown_workers();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kvs::Kvs;
    use crate::op::Reply;

    /// A sub-batch that waited in a worker queue across a *completed*
    /// reconfiguration must reject (NotOwner) instead of executing with
    /// routes resolved against the old ownership table — the drain only
    /// covers sub-batches already executing, so the version guard is what
    /// protects queued ones. Crafted directly against the queue (the only
    /// deterministic way to get a stale task under a worker).
    #[test]
    fn queued_sub_batch_rejects_after_table_version_moves() {
        let kvs = Kvs::new(KvsConfig::small_for_tests()).unwrap();
        let client = kvs.client();
        client.insert(b"k0", b"v0").unwrap();

        let node = kvs.kn(kvs.kn_ids()[0]).unwrap();
        let current = node.ownership.read().version();
        let batch = Arc::new(BatchShared::new(vec![
            Op::lookup("k0"),
            Op::insert("k1", "v1"),
        ]));
        let latch = Arc::new(WaitGroup::new());
        latch.add(1);
        let task = SubBatch {
            node: Arc::clone(&node),
            shard: 0,
            batch: Arc::clone(&batch),
            positions: vec![0, 1],
            latch: Arc::clone(&latch),
            // The table moved on (e.g. an add_kn completed) while this
            // task sat in the queue.
            resolved_version: current.wrapping_sub(1),
            enqueued_at: None,
        };
        node.executor.as_ref().unwrap().queues[0]
            .try_push(task)
            .unwrap_or_else(|_| panic!("enqueue failed"));
        latch.wait();
        for pos in 0..2 {
            // SAFETY: the latch released, so no writer is concurrent.
            match unsafe { batch.slots.take(pos) } {
                Some(Err(KvsError::NotOwner { current_version })) => {
                    assert_eq!(current_version, current);
                }
                other => panic!("stale sub-batch executed: {other:?}"),
            }
        }
        // And an up-to-date task on the same queue still executes.
        let batch = Arc::new(BatchShared::new(vec![Op::lookup("k0")]));
        let latch = Arc::new(WaitGroup::new());
        latch.add(1);
        let task = SubBatch {
            node: Arc::clone(&node),
            shard: 0,
            batch: Arc::clone(&batch),
            positions: vec![0],
            latch: Arc::clone(&latch),
            resolved_version: current,
            enqueued_at: None,
        };
        node.executor.as_ref().unwrap().queues[0]
            .try_push(task)
            .unwrap_or_else(|_| panic!("enqueue failed"));
        latch.wait();
        let result = unsafe { batch.slots.take(0) };
        assert!(
            matches!(result, Some(Ok(_)) | Some(Err(KvsError::NotOwner { .. }))),
            "fresh sub-batch must execute (or reject only if shard 0 \
             does not own k0): {result:?}"
        );
    }

    /// Sustained backpressure must surface as `Busy`, not as a routing
    /// failure, once the client's retries are exhausted.
    #[test]
    fn exhausted_busy_retries_report_busy() {
        // One node, one shard, a depth-1 queue, and a worker wedged by a
        // task that blocks on the shard lock held by the test: every
        // enqueue attempt after the queue refills is rejected Busy until
        // retries run out.
        let kvs = crate::KvsBuilder::new()
            .small_for_tests()
            .initial_kns(1)
            .threads_per_kn(1)
            .executor_queue_depth(1)
            .build()
            .unwrap();
        let node = kvs.kn(kvs.kn_ids()[0]).unwrap();
        // Wedge the worker: hold shard 0's lock, then feed the worker a
        // task that needs it.
        let shard_guard = node.shards[0].lock();
        let wedge_batch = Arc::new(BatchShared::new(vec![Op::lookup("w")]));
        let wedge_latch = Arc::new(WaitGroup::new());
        wedge_latch.add(1);
        let version = node.ownership.read().version();
        node.executor.as_ref().unwrap().queues[0]
            .try_push(SubBatch {
                node: Arc::clone(&node),
                shard: 0,
                batch: Arc::clone(&wedge_batch),
                positions: vec![0],
                latch: Arc::clone(&wedge_latch),
                resolved_version: version,
                enqueued_at: None,
            })
            .unwrap_or_else(|_| panic!("wedge enqueue failed"));
        // Give the worker a beat to pop the task and block on the lock,
        // then fill the (now empty) depth-1 queue so client pushes see
        // Full.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let filler_batch = Arc::new(BatchShared::new(vec![Op::lookup("f")]));
        let filler_latch = Arc::new(WaitGroup::new());
        filler_latch.add(1);
        node.executor.as_ref().unwrap().queues[0]
            .try_push(SubBatch {
                node: Arc::clone(&node),
                shard: 0,
                batch: Arc::clone(&filler_batch),
                positions: vec![0],
                latch: Arc::clone(&filler_latch),
                resolved_version: version,
                enqueued_at: None,
            })
            .unwrap_or_else(|_| panic!("filler enqueue failed"));

        // A real client batch now gets Busy on every attempt (the worker
        // stays wedged for the whole retry budget).
        let client = kvs.client();
        let replies = client.execute(vec![Op::insert("x", "1"), Op::insert("y", "2")]);
        assert!(
            replies
                .iter()
                .all(|r| matches!(r, Reply::Error(KvsError::Busy))),
            "exhausted backpressure must report Busy: {replies:?}"
        );
        // Unwedge and let everything drain so teardown joins cleanly.
        drop(shard_guard);
        wedge_latch.wait();
        filler_latch.wait();
        node.drain_in_flight();
    }

    /// Retry accounting: a batch whose only sub-batch is rejected `Busy`
    /// is retried exactly once per routing round, so over an exhausted
    /// retry budget `KnStats::busy_rejections` advances by exactly the
    /// client's retry budget — one rejected sub-batch per round — and
    /// every op of the batch reports the observed `Busy`.
    #[test]
    fn busy_rejections_count_one_rejected_sub_batch_per_routing_round() {
        // Same wedge construction as `exhausted_busy_retries_report_busy`:
        // one node, one shard, a depth-1 queue, the worker blocked on the
        // shard lock and the queue refilled, so every enqueue attempt of
        // the client below is rejected with `Full`.
        let kvs = crate::KvsBuilder::new()
            .small_for_tests()
            .initial_kns(1)
            .threads_per_kn(1)
            .executor_queue_depth(1)
            .build()
            .unwrap();
        let node = kvs.kn(kvs.kn_ids()[0]).unwrap();
        let shard_guard = node.shards[0].lock();
        let version = node.ownership.read().version();
        let wedge_batch = Arc::new(BatchShared::new(vec![Op::lookup("w")]));
        let wedge_latch = Arc::new(WaitGroup::new());
        wedge_latch.add(1);
        node.executor.as_ref().unwrap().queues[0]
            .try_push(SubBatch {
                node: Arc::clone(&node),
                shard: 0,
                batch: Arc::clone(&wedge_batch),
                positions: vec![0],
                latch: Arc::clone(&wedge_latch),
                resolved_version: version,
                enqueued_at: None,
            })
            .unwrap_or_else(|_| panic!("wedge enqueue failed"));
        std::thread::sleep(std::time::Duration::from_millis(20));
        let filler_batch = Arc::new(BatchShared::new(vec![Op::lookup("f")]));
        let filler_latch = Arc::new(WaitGroup::new());
        filler_latch.add(1);
        node.executor.as_ref().unwrap().queues[0]
            .try_push(SubBatch {
                node: Arc::clone(&node),
                shard: 0,
                batch: Arc::clone(&filler_batch),
                positions: vec![0],
                latch: Arc::clone(&filler_latch),
                resolved_version: version,
                enqueued_at: None,
            })
            .unwrap_or_else(|_| panic!("filler enqueue failed"));

        // Read the counter directly: `stats()` locks every shard, and this
        // thread is holding shard 0's lock to keep the worker wedged.
        let busy_before = node.busy_rejections.load(Ordering::Relaxed);
        assert_eq!(busy_before, 0, "no client traffic has run yet");

        // A 2-op batch on the single node forms one owner group and one
        // shard sub-batch per routing round (threads_per_kn = 1,
        // min_sub_batch = 2 under `small_for_tests`).
        let client = kvs.client();
        let replies = client.execute(vec![Op::insert("x", "1"), Op::insert("y", "2")]);
        let busy_replies = replies
            .iter()
            .filter(|r| matches!(r, Reply::Error(KvsError::Busy)))
            .count();
        assert_eq!(
            busy_replies, 2,
            "both ops of the wedged batch must report Busy: {replies:?}"
        );

        let busy_after = node.busy_rejections.load(Ordering::Relaxed);
        assert_eq!(
            busy_after - busy_before,
            crate::client::MAX_RETRIES as u64,
            "one rejected sub-batch per routing round — the batch must be \
             retried exactly once per round until the budget is exhausted"
        );

        drop(shard_guard);
        wedge_latch.wait();
        filler_latch.wait();
        node.drain_in_flight();
    }

    /// The scan merge: merged entries come from the ordered index,
    /// unmerged writes override them, overlay-only keys appear, and an
    /// unmerged delete suppresses its merged tree entry.
    #[test]
    fn scan_merges_tree_overlay_and_suppresses_tombstones() {
        let kvs = crate::KvsBuilder::new()
            .small_for_tests()
            .initial_kns(1)
            .build()
            .unwrap();
        let client = kvs.client();
        for (k, v) in [(b"a", b"1"), (b"b", b"2"), (b"c", b"3")] {
            client.insert(k, v).unwrap();
        }
        // Everything above reaches the ordered index…
        kvs.flush_all().unwrap();
        // …and everything below stays in the unmerged overlay.
        client.update(b"b", b"2x").unwrap();
        client.insert(b"d", b"4").unwrap();
        client.delete(b"a").unwrap();
        let pairs = client.scan(b"a", 10).unwrap();
        let expect: Vec<(Vec<u8>, Vec<u8>)> = vec![
            (b"b".to_vec(), b"2x".to_vec()),
            (b"c".to_vec(), b"3".to_vec()),
            (b"d".to_vec(), b"4".to_vec()),
        ];
        assert_eq!(pairs, expect);
        // Results truncate to the budget.
        assert_eq!(client.scan(b"b", 2).unwrap().len(), 2);
        // A start past every key scans empty.
        assert!(client.scan(b"zz", 4).unwrap().is_empty());
    }

    /// A scan routed at a stale ownership version must reject whole
    /// (`NotOwner`) rather than filter with a ring that no longer
    /// describes the keys this node serves.
    #[test]
    fn stale_version_scan_rejects_not_owner() {
        let kvs = Kvs::new(KvsConfig::small_for_tests()).unwrap();
        let client = kvs.client();
        client.insert(b"k0", b"v0").unwrap();
        let node = kvs.kn(kvs.kn_ids()[0]).unwrap();
        let current = node.ownership.read().version();
        match node.scan(b"k", 8, current.wrapping_sub(1)) {
            Err(KvsError::NotOwner { current_version }) => {
                assert_eq!(current_version, current);
            }
            other => panic!("stale-routed scan must reject whole: {other:?}"),
        }
        // At the live version the same node answers.
        assert!(node.scan(b"k", 8, current).is_ok());
    }

    /// Regression: a scan straddling a just-migrated range must come back
    /// complete. The version guard turns every stale-routed member into a
    /// whole-scan `NotOwner` retry — never a silently short result from a
    /// ring that moved underneath the scan.
    #[test]
    fn scan_straddling_a_migration_retries_instead_of_short_results() {
        let kvs = Kvs::new(KvsConfig::small_for_tests()).unwrap();
        let client = kvs.client();
        let total = 64usize;
        for i in 0..total {
            client
                .insert(format!("key{i:03}").as_bytes(), b"v")
                .unwrap();
        }
        let old_version = kvs.ownership().read().version();
        // Warm the per-node scan rings at the current version.
        assert_eq!(client.scan(b"key", total).unwrap().len(), total);

        kvs.add_kn().unwrap();
        let new_version = kvs.ownership().read().version();
        assert_ne!(old_version, new_version);

        // A member still answering at the pre-migration version rejects.
        let node = kvs.kn(kvs.kn_ids()[0]).unwrap();
        match node.scan(b"key", total, old_version) {
            Err(KvsError::NotOwner { current_version }) => {
                assert_eq!(current_version, new_version);
            }
            other => panic!("stale-routed scan must reject whole: {other:?}"),
        }

        // The client path refreshes its routing and retries the whole
        // scan: the complete range, including every migrated key.
        let after = client.scan(b"key", total).unwrap();
        assert_eq!(after.len(), total, "scan dropped keys across the migration");
    }

    /// The cached scan ring is per-version state: populated by the first
    /// scan, dropped by `clear_caches` on hand-off.
    #[test]
    fn clear_caches_drops_the_scan_ring() {
        let kvs = Kvs::new(KvsConfig::small_for_tests()).unwrap();
        let client = kvs.client();
        client.insert(b"a", b"v").unwrap();
        let node = kvs.kn(kvs.kn_ids()[0]).unwrap();
        let version = node.ownership.read().version();
        node.scan(b"", 4, version).unwrap();
        assert!(
            node.scan_ring.lock().is_some(),
            "a scan must populate the ring cache"
        );
        node.clear_caches();
        assert!(
            node.scan_ring.lock().is_none(),
            "hand-off must drop the cached ring"
        );
    }
}
