//! The KVS node (KN): per-thread shards, DAC cache, log writer, unmerged-log
//! tracking, and the request paths of §3.6.

use crate::config::{KvsConfig, Variant};
use crate::error::KvsError;
use crate::op::Op;
use crate::stats::KnStats;
use crate::Result;
use dinomo_cache::{build_cache, CacheLookup, CacheStats, KnCache, ValueLoc};
use dinomo_dpm::{BloomFilter, DpmNode, Guard, LogOp, LogWriter};
use dinomo_partition::{key_hash, KnId, OwnershipTable};
use dinomo_pmem::PmAddr;
use dinomo_simnet::Nic;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// State of a write that is durable (or buffered) but may not yet be merged
/// into the DPM metadata index.
#[derive(Debug, Clone)]
enum Unmerged {
    /// Buffered in the log writer, not yet flushed. We keep the bytes so
    /// reads on this KN see the write immediately.
    Pending(Vec<u8>),
    /// Flushed (durable) at this location, waiting for the merge engine.
    Committed { addr: PmAddr, len: u32 },
    /// A buffered or flushed delete.
    Deleted,
}

/// One worker-thread shard of a KVS node: its cache partition, log writer and
/// unmerged-write tracking (§4: "un-merged log segments are cached in the KNs
/// that wrote them", with Bloom filters for membership checks).
struct Shard {
    cache: Box<dyn KnCache>,
    writer: LogWriter,
    unmerged: HashMap<Vec<u8>, Unmerged>,
    bloom: BloomFilter,
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("cache", &self.cache.name())
            .field("unmerged", &self.unmerged.len())
            .finish()
    }
}

/// Sentinel passed as `client_version` when the caller did not route
/// against a known ownership-table version: never equal to a real version,
/// so the full per-key ownership verification always runs.
pub(crate) const NO_VERSION: u64 = u64::MAX;

/// A KVS node.
#[derive(Debug)]
pub struct KnNode {
    id: KnId,
    variant: Variant,
    nic: Nic,
    dpm: Arc<DpmNode>,
    ownership: Arc<RwLock<OwnershipTable>>,
    shards: Vec<Mutex<Shard>>,
    write_batch_ops: usize,
    failed: AtomicBool,
    reconfiguring: AtomicBool,
    ops: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
    rejected: AtomicU64,
    busy_ns: AtomicU64,
}

impl KnNode {
    /// Build a KVS node and its shards.
    pub fn new(
        id: KnId,
        config: &KvsConfig,
        dpm: Arc<DpmNode>,
        ownership: Arc<RwLock<OwnershipTable>>,
    ) -> Self {
        let nic = Nic::new(config.fabric);
        let shards = (0..config.threads_per_kn.max(1))
            .map(|_| {
                Mutex::new(Shard {
                    cache: build_cache(
                        config.effective_cache_kind(),
                        config.cache_bytes_per_shard(),
                    ),
                    writer: LogWriter::new(Arc::clone(&dpm), id, nic.clone()),
                    unmerged: HashMap::new(),
                    bloom: BloomFilter::new(4096),
                })
            })
            .collect();
        KnNode {
            id,
            variant: config.variant,
            nic,
            dpm,
            ownership,
            shards,
            write_batch_ops: config.write_batch_ops.max(1),
            failed: AtomicBool::new(false),
            reconfiguring: AtomicBool::new(false),
            ops: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
        }
    }

    /// Node id.
    pub fn id(&self) -> KnId {
        self.id
    }

    /// The node's NIC (for round-trip accounting in tests and benches).
    pub fn nic(&self) -> &Nic {
        &self.nic
    }

    /// `true` once the node has been failed.
    pub fn is_failed(&self) -> bool {
        self.failed.load(Ordering::Acquire)
    }

    /// Simulate a fail-stop crash: the node stops serving and its DRAM
    /// contents (caches, unmerged-write tracking) are lost.
    pub fn fail(&self) {
        self.failed.store(true, Ordering::Release);
        for shard in &self.shards {
            let mut s = shard.lock();
            s.cache.clear();
            s.unmerged.clear();
            s.bloom.clear();
        }
    }

    /// Mark the node unavailable while it participates in a reconfiguration
    /// (step 2 of §3.5) or available again (step 5).
    pub fn set_reconfiguring(&self, on: bool) {
        self.reconfiguring.store(on, Ordering::Release);
    }

    fn check_available(&self) -> Result<()> {
        if self.failed.load(Ordering::Acquire) {
            return Err(KvsError::NodeFailed);
        }
        if self.reconfiguring.load(Ordering::Acquire) {
            return Err(KvsError::Reconfiguring);
        }
        Ok(())
    }

    fn check_ownership(&self, key: &[u8]) -> Result<u32> {
        let table = self.ownership.read();
        if !table.is_owner(self.id, key) {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(KvsError::NotOwner {
                current_version: table.version(),
            });
        }
        Ok(table.thread_of(self.id, key).unwrap_or(0))
    }

    fn shard_for(&self, thread: u32) -> &Mutex<Shard> {
        &self.shards[thread as usize % self.shards.len()]
    }

    fn is_replicated(&self, key: &[u8]) -> bool {
        self.variant.supports_selective_replication() && self.ownership.read().is_replicated(key)
    }

    // ------------------------------------------------------------- reads

    /// `lookup(key)`.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.check_available()?;
        let thread = self.check_ownership(key)?;
        let start = Instant::now();
        let result = if self.is_replicated(key) {
            self.get_shared(key)
        } else {
            self.get_owned(key, thread)
        };
        self.ops.fetch_add(1, Ordering::Relaxed);
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.busy_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        result
    }

    fn get_owned(&self, key: &[u8], thread: u32) -> Result<Option<Vec<u8>>> {
        let mut shard = self.shard_for(thread).lock();
        self.get_in_shard(&mut shard, key, &dinomo_dpm::pin())
    }

    /// The owned-key read path against an already-locked shard (shared by
    /// the per-op path and [`KnNode::run_batch`]). `guard` covers the
    /// index traversal of the miss path; the batch path pins it once for
    /// the whole batch.
    fn get_in_shard(
        &self,
        shard: &mut Shard,
        key: &[u8],
        guard: &Guard,
    ) -> Result<Option<Vec<u8>>> {
        match shard.cache.lookup(key) {
            CacheLookup::Value(v) => return Ok(Some(v)),
            CacheLookup::Shortcut(loc) => {
                let value = self.dpm.read_value_at(&self.nic, PmAddr(loc.addr), loc.len);
                shard.cache.admit_value(key, &value, loc);
                return Ok(Some(value));
            }
            CacheLookup::Miss => {}
        }
        // Check the KN's own unmerged writes before going to the index.
        if shard.bloom.may_contain(key) {
            match shard.unmerged.get(key).cloned() {
                Some(Unmerged::Pending(v)) => return Ok(Some(v)),
                Some(Unmerged::Committed { addr, len }) => {
                    let value = self.dpm.read_value_at(&self.nic, addr, len);
                    let loc = ValueLoc { addr: addr.0, len };
                    shard.cache.admit_value(key, &value, loc);
                    return Ok(Some(value));
                }
                Some(Unmerged::Deleted) => return Ok(None),
                None => {}
            }
        }
        // Full miss: traverse the metadata index remotely.
        let lookup = self.dpm.remote_read_in(guard, &self.nic, key);
        shard.cache.record_miss_cost(lookup.rts);
        match (&lookup.value, lookup.value_loc) {
            (Some(value), Some((addr, len))) => {
                if !lookup.indirect {
                    shard
                        .cache
                        .admit_value(key, value, ValueLoc { addr: addr.0, len });
                }
                Ok(Some(value.clone()))
            }
            _ => Ok(None),
        }
    }

    /// Read of a selectively-replicated key: indirection cell then value, as
    /// in §3.4 ("A KN reading a shared key has to first read the indirect
    /// pointer and then read the value").
    fn get_shared(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let Some(cell) = self.dpm.indirect_cell_of(key) else {
            // Replication was requested but the cell is not installed yet;
            // fall back to the ordinary path on shard 0.
            return self.get_owned(key, 0);
        };
        let Some(entry_loc) = self.dpm.remote_read_indirect(&self.nic, cell) else {
            return Ok(None);
        };
        self.nic.one_sided_read(entry_loc.len() as usize);
        let entry =
            dinomo_dpm::entry::decode_entry(self.dpm.pool(), entry_loc.addr(), entry_loc.len());
        Ok(entry
            .filter(|e| e.key == key)
            .map(|e| e.read_value(self.dpm.pool())))
    }

    // ------------------------------------------------------------ writes

    /// `insert(key, value)` / `update(key, value)`.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.check_available()?;
        let thread = self.check_ownership(key)?;
        let start = Instant::now();
        let result = if self.is_replicated(key) {
            self.put_shared(key, value, thread)
        } else {
            self.put_owned(key, value, thread)
        };
        self.ops.fetch_add(1, Ordering::Relaxed);
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.busy_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        result
    }

    fn put_owned(&self, key: &[u8], value: &[u8], thread: u32) -> Result<()> {
        let mut shard = self.shard_for(thread).lock();
        Self::put_in_shard(&mut shard, key, value);
        self.flush_if_due(&mut shard)
    }

    /// The owned-key write path against an already-locked shard: buffer the
    /// log record and track the pending write. The caller decides when to
    /// flush (per op for the singleton path, once per group for batches).
    fn put_in_shard(shard: &mut Shard, key: &[u8], value: &[u8]) {
        shard.writer.append_put(key, value);
        shard.cache.invalidate(key);
        shard
            .unmerged
            .insert(key.to_vec(), Unmerged::Pending(value.to_vec()));
        shard.bloom.insert(key);
    }

    /// The delete path against an already-locked shard. Returns the
    /// tombstone's global sequence number.
    fn delete_in_shard(shard: &mut Shard, key: &[u8]) -> u64 {
        let seq = shard.writer.append_delete(key);
        shard.cache.invalidate(key);
        shard.unmerged.insert(key.to_vec(), Unmerged::Deleted);
        shard.bloom.insert(key);
        seq
    }

    /// Flush the shard's buffered log records if the write batch is full.
    fn flush_if_due(&self, shard: &mut Shard) -> Result<()> {
        if shard.writer.buffered_entries() >= self.write_batch_ops {
            Self::flush_shard(&self.dpm, self.id, shard)?;
        }
        Ok(())
    }

    /// Update of a selectively-replicated key: log the value, then CAS the
    /// indirection cell to the new entry.
    fn put_shared(&self, key: &[u8], value: &[u8], thread: u32) -> Result<()> {
        let mut shard = self.shard_for(thread).lock();
        shard.cache.invalidate(key);
        let seq = shard.writer.append_put(key, value);
        let commits = shard.writer.flush()?;
        let new_loc = commits
            .iter()
            .rev()
            .find(|c| c.key == key)
            .expect("flushed batch must contain the appended key")
            .entry_loc;
        // Earlier entries in the same batch are handled by the merge engine;
        // this key is made visible by swinging the cell.
        drop(shard);
        let Some(cell) = self.dpm.indirect_cell_of(key) else {
            // Replication raced with de-replication; the merge engine will
            // make the logged entry visible through the index.
            return Ok(());
        };
        // Swings the cell whether it holds a live value or a delete
        // tombstone (the put re-installs visibility after a delete) —
        // unless the cell already publishes newer state.
        self.dpm.publish_shared_put(&self.nic, cell, new_loc, seq);
        Ok(())
    }

    /// Delete of a selectively-replicated key: log the tombstone, then mark
    /// the indirection cell with a delete tombstone so shared readers on
    /// **every** replica observe the delete immediately — an acknowledged
    /// delete must not keep serving the old value until its log tombstone is
    /// flushed and merged. The merge engine later removes the index entry
    /// and releases the cell.
    fn delete_shared(&self, key: &[u8], thread: u32) -> Result<()> {
        let mut shard = self.shard_for(thread).lock();
        let seq = Self::delete_in_shard(&mut shard, key);
        let flushed = self.flush_if_due(&mut shard);
        drop(shard);
        flushed?;
        if let Some(cell) = self.dpm.indirect_cell_of(key) {
            self.dpm.publish_shared_delete(&self.nic, cell, seq);
        }
        Ok(())
    }

    /// `delete(key)`.
    pub fn delete(&self, key: &[u8]) -> Result<()> {
        self.check_available()?;
        let thread = self.check_ownership(key)?;
        let start = Instant::now();
        let result = if self.is_replicated(key) {
            self.delete_shared(key, thread)
        } else {
            let mut shard = self.shard_for(thread).lock();
            Self::delete_in_shard(&mut shard, key);
            self.flush_if_due(&mut shard)
        };
        self.ops.fetch_add(1, Ordering::Relaxed);
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.busy_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        result
    }

    // ------------------------------------------------------------ batches

    /// Serve a group of operations that a client routed to this node in one
    /// request (§3.6's per-request overheads paid once per *group*):
    ///
    /// * availability is checked once for the group;
    /// * ownership is resolved for every key under a **single** read
    ///   acquisition of the ownership table, with one key hash shared by
    ///   the owner and thread ring lookups;
    /// * operations are applied per worker shard with **one** lock
    ///   acquisition per shard, and buffered log writes are flushed at most
    ///   **once** per shard instead of once per op.
    ///
    /// Results are positional (`result[i]` answers `ops[i]`). Operations on
    /// keys this node does not own fail with [`KvsError::NotOwner`]
    /// individually — the rest of the group still executes — so a client
    /// racing a reconfiguration retries only the rejected subset.
    ///
    /// Within the group, operations on the same key apply in group order
    /// (same key → same shard, and each shard applies its sub-group in
    /// order). No ordering is guaranteed across different keys, exactly as
    /// with concurrent per-op calls.
    pub fn run_batch(&self, ops: &[Op]) -> Vec<Result<Option<Vec<u8>>>> {
        let positions: Vec<usize> = (0..ops.len()).collect();
        let hashes: Vec<u64> = ops.iter().map(|op| key_hash(op.key())).collect();
        let mut out: Vec<Option<Result<Option<Vec<u8>>>>> = vec![None; ops.len()];
        // `NO_VERSION` forces the full per-key ownership verification.
        self.run_batch_into(ops, &positions, &hashes, NO_VERSION, &mut out);
        out.into_iter()
            .map(|r| r.expect("every op in the batch got a result"))
            .collect()
    }

    /// Allocation-lean core of [`KnNode::run_batch`], shaped for the
    /// client's owner-grouped dispatch: serve `ops[positions[..]]` and write
    /// each result to `out[position]` (left `None` only if this node is
    /// unavailable — the caller treats unanswered positions as retryable).
    ///
    /// `hashes[pos]` must be `key_hash(ops[pos].key())` — the client hashed
    /// each key to route it, so the node reuses the hash for its own ring
    /// lookups. `client_version` is the ownership-table version the caller
    /// routed against (§3.1's staleness detection, applied batch-wide): when
    /// it equals the node's current version the tables are identical, the
    /// client's routing is known-correct, and the per-key ownership
    /// re-verification is skipped for the whole group.
    pub(crate) fn run_batch_into(
        &self,
        ops: &[Op],
        positions: &[usize],
        hashes: &[u64],
        client_version: u64,
        out: &mut [Option<Result<Option<Vec<u8>>>>],
    ) {
        if let Err(e) = self.check_available() {
            for &pos in positions {
                out[pos] = Some(Err(e.clone()));
            }
            return;
        }
        let start = Instant::now();

        // Per-position route, parallel to `positions`: the shard index for
        // owned keys, or one of the tagged values below.
        const REJECTED: u32 = u32::MAX;
        const SHARED: u32 = 1 << 31;
        let mut routes: Vec<u32> = Vec::with_capacity(positions.len());

        // Resolve ownership for the whole group under one read lock. The
        // global and local rings are hoisted out of the loop, the client's
        // key hashes feed the ring lookups, and the replicated-key check
        // short-circuits on an empty replica table.
        {
            let table = self.ownership.read();
            let replication = self.variant.supports_selective_replication();
            let global = table.global_ring();
            let local = table.local_ring(self.id);
            let verified = table.version() == client_version;
            for &pos in positions {
                let op = &ops[pos];
                let key = op.key();
                let hash = hashes[pos];
                let replicated = table.is_replicated(key);
                let owned = verified
                    || if replicated {
                        table.owners(key).contains(&self.id)
                    } else {
                        global.owner(hash) == Some(self.id)
                    };
                if !owned {
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                    out[pos] = Some(Err(KvsError::NotOwner {
                        current_version: table.version(),
                    }));
                    routes.push(REJECTED);
                    continue;
                }
                let thread = local.and_then(|ring| ring.owner(hash)).unwrap_or(0);
                // Every op on a replicated key is deferred to the in-order
                // shared pass — including deletes, which must keep their
                // batch order relative to the key's shared-path writes.
                if replication && replicated {
                    routes.push(SHARED | thread);
                } else {
                    routes.push(thread % self.shards.len() as u32);
                }
            }
        }

        let mut reads = 0u64;
        let mut writes = 0u64;

        // One epoch pin covers every index lookup the whole batch performs
        // (the lock-free read side of the P-CLHT; see dinomo_pclht::pin).
        let guard = dinomo_dpm::pin();

        // One pass per shard over the route array (shard counts are small),
        // preserving group order within the shard. No per-shard allocation.
        for shard_idx in 0..self.shards.len() as u32 {
            if !routes.contains(&shard_idx) {
                continue;
            }
            let mut shard = self.shards[shard_idx as usize].lock();
            let mut buffered_writes = false;
            for (&pos, &route) in positions.iter().zip(&routes) {
                if route != shard_idx {
                    continue;
                }
                let result = match &ops[pos] {
                    Op::Lookup { key } => {
                        reads += 1;
                        self.get_in_shard(&mut shard, key, &guard)
                    }
                    Op::Insert { key, value } | Op::Update { key, value } => {
                        writes += 1;
                        buffered_writes = true;
                        Self::put_in_shard(&mut shard, key, value);
                        Ok(None)
                    }
                    Op::Delete { key } => {
                        writes += 1;
                        buffered_writes = true;
                        Self::delete_in_shard(&mut shard, key);
                        Ok(None)
                    }
                };
                out[pos] = Some(result);
            }
            // One flush for the whole shard group. A flush failure is a
            // durability failure of every write buffered by this group, so
            // it is reported on each of them.
            if buffered_writes {
                if let Err(e) = self.flush_if_due(&mut shard) {
                    for (&pos, &route) in positions.iter().zip(&routes) {
                        if route == shard_idx && ops[pos].is_write() {
                            out[pos] = Some(Err(e.clone()));
                        }
                    }
                }
            }
        }

        // Replicated keys linearize through their indirection cell; they
        // lock shards internally, so they run after the owned groups,
        // applied one by one in group order (which keeps same-key order
        // even between shared-path writes and owned-path deletes).
        for (&pos, &route) in positions.iter().zip(&routes) {
            if route == REJECTED || route & SHARED == 0 {
                continue;
            }
            let thread = route & !SHARED;
            let result = match &ops[pos] {
                Op::Lookup { key } => {
                    reads += 1;
                    self.get_shared(key)
                }
                Op::Insert { key, value } | Op::Update { key, value } => {
                    writes += 1;
                    self.put_shared(key, value, thread).map(|()| None)
                }
                Op::Delete { key } => {
                    // As in `delete`: log the tombstone, then empty the
                    // indirection cell so the delete is visible on every
                    // replica at once.
                    writes += 1;
                    self.delete_shared(key, thread).map(|()| None)
                }
            };
            out[pos] = Some(result);
        }

        self.ops.fetch_add(reads + writes, Ordering::Relaxed);
        self.reads.fetch_add(reads, Ordering::Relaxed);
        self.writes.fetch_add(writes, Ordering::Relaxed);
        self.busy_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    fn flush_shard(dpm: &Arc<DpmNode>, kn: KnId, shard: &mut Shard) -> Result<()> {
        let commits = shard.writer.flush()?;
        // A key may appear several times in one batch; only its *last* put
        // location is current, so index the batch by key first.
        let mut last_put: HashMap<&[u8], &dinomo_dpm::CommittedWrite> = HashMap::new();
        for c in &commits {
            if c.op == LogOp::Put {
                last_put.insert(c.key.as_slice(), c);
            }
        }
        for (key, c) in last_put {
            // Only keys whose newest program-order state is still this put
            // (i.e. not deleted later in the same batch) are refreshed.
            if let Some(Unmerged::Pending(v)) = shard.unmerged.get(key) {
                let loc = ValueLoc {
                    addr: c.value_addr.0,
                    len: c.value_len,
                };
                shard.cache.on_local_write(key, v, loc);
                shard.unmerged.insert(
                    c.key.clone(),
                    Unmerged::Committed {
                        addr: c.value_addr,
                        len: c.value_len,
                    },
                );
            }
        }
        // Once everything this shard ever flushed has been merged, the index
        // is authoritative and the unmerged tracking can be dropped.
        if !commits.is_empty()
            && shard.writer.buffered_entries() == 0
            && dpm.unmerged_segments(kn) == 0
        {
            shard.unmerged.clear();
            shard.bloom.clear();
        }
        Ok(())
    }

    // ------------------------------------------------- maintenance hooks

    /// Flush every shard's buffered writes to DPM (bounding write latency;
    /// also used before reconfiguration so pending logs can be merged).
    pub fn flush_pending_writes(&self) -> Result<()> {
        for shard in &self.shards {
            let mut s = shard.lock();
            Self::flush_shard(&self.dpm, self.id, &mut s)?;
        }
        Ok(())
    }

    /// Drop the node's DRAM request-path state — caches, unmerged-write
    /// tracking and bloom filters (the "current owner empties its cache"
    /// step of the reconfiguration protocol).
    ///
    /// Callers must have flushed this node's pending logs and waited for
    /// them to merge first, so the DPM index is authoritative for every key
    /// the node tracked. Dropping only the value cache here is not enough:
    /// a stale `unmerged` entry would survive the ownership hand-off, and a
    /// range that later *returns* to this node (scale out then back in, or
    /// a failure re-homing keys) would read an outdated location from it
    /// instead of the index.
    pub fn clear_caches(&self) {
        for shard in &self.shards {
            let mut s = shard.lock();
            s.cache.clear();
            s.unmerged.clear();
            s.bloom.clear();
        }
    }

    /// Drop all local state for a specific key (used when a key becomes
    /// selectively replicated or de-replicated, at which point the DPM —
    /// whose pending logs have been merged — is authoritative for it).
    pub fn invalidate_key(&self, key: &[u8]) {
        for shard in &self.shards {
            let mut s = shard.lock();
            s.cache.invalidate(key);
            s.unmerged.remove(key);
        }
    }

    /// Aggregate statistics for this node.
    pub fn stats(&self) -> KnStats {
        let mut cache = CacheStats::default();
        for shard in &self.shards {
            let s = shard.lock();
            let cs = s.cache.stats();
            cache.value_hits += cs.value_hits;
            cache.shortcut_hits += cs.shortcut_hits;
            cache.misses += cs.misses;
            cache.promotions += cs.promotions;
            cache.demotions += cs.demotions;
            cache.evictions += cs.evictions;
            cache.bytes_used += cs.bytes_used;
            cache.capacity_bytes += cs.capacity_bytes;
            cache.value_entries += cs.value_entries;
            cache.shortcut_entries += cs.shortcut_entries;
        }
        KnStats {
            id: self.id,
            ops: self.ops.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            cache,
            nic: self.nic.snapshot(),
            busy_ns: self.busy_ns.load(Ordering::Relaxed),
        }
    }
}
