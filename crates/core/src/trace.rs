//! Concurrent history recording for linearizability checking.
//!
//! A [`HistoryRecorder`] collects one [`OpRecord`] per completed client
//! operation — key, action, outcome, and an *invocation*/*response*
//! timestamp pair drawn from a global monotonic counter — so an external
//! checker (the `dinomo-check` crate) can verify the per-key
//! linearizability guarantee of §3.2 on real concurrent executions,
//! including batched `execute` calls (decomposed per op) and operations
//! that raced reconfigurations or backpressure retries.
//!
//! ## Design
//!
//! * **Logical clock.** Timestamps come from one `AtomicU64` incremented
//!   with `SeqCst`, so stamp order is consistent with real time: if
//!   operation A's response stamp was drawn before operation B's
//!   invocation stamp, then A really returned before B was invoked. That
//!   is exactly the real-time order a linearizability checker needs; wall
//!   clocks (non-monotonic, coarse) are not involved.
//! * **Per-thread logs.** Each [`RecorderHandle`] owns a private log that
//!   only its client appends to; the handle's appends never contend with
//!   other threads (the log's mutex exists solely so the final
//!   [`HistoryRecorder::drain`] can collect it). Clients are per-thread by
//!   convention, so this is the classic per-thread-log / merge-at-drain
//!   scheme.
//! * **Zero cost when off.** `KvsClient` holds an `Option<RecorderHandle>`
//!   that defaults to `None`; the request paths test the option and do
//!   nothing else, so un-instrumented clusters pay one branch per call
//!   and no allocation.
//!
//! ```
//! use dinomo_core::trace::{Action, HistoryRecorder};
//! use dinomo_core::{Kvs, Op};
//!
//! let kvs = Kvs::builder().small_for_tests().build().unwrap();
//! let recorder = HistoryRecorder::new();
//! let client = kvs.client().with_recorder(recorder.handle(0));
//! client.execute(vec![Op::insert("k", "v"), Op::lookup("k")]);
//! let history = recorder.drain();
//! assert_eq!(history.len(), 2);
//! assert!(matches!(history[0].action, Action::Write(_)));
//! assert!(history.iter().all(|r| r.invoked_at < r.returned_at));
//! ```

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What an operation did to its key, in the single-register model the
/// checker verifies: writes (insert and update are both upserts) set the
/// register, deletes clear it, reads observe it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// `insert`/`update`: set the register to the given value.
    Write(Vec<u8>),
    /// `delete`: clear the register.
    Delete,
    /// `lookup`: observed the given value (`None` = key absent).
    Read(Option<Vec<u8>>),
    /// `scan(start, n)`: observed the given key/value pairs, in key order,
    /// starting at the record's key (the scan's start key). The checker
    /// decomposes a scan into per-key reads over the range it covered.
    Scan {
        /// The requested maximum number of pairs (a scan returning fewer
        /// than `n` pairs claims the key space past its last pair was
        /// empty).
        n: usize,
        /// The observed pairs, in strictly increasing key order.
        pairs: Vec<(Vec<u8>, Vec<u8>)>,
    },
}

impl Action {
    /// `true` for writes and deletes.
    pub fn is_mutation(&self) -> bool {
        !matches!(self, Action::Read(_) | Action::Scan { .. })
    }
}

/// One completed client operation, as recorded for the checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord {
    /// The recording client's identifier (passed to
    /// [`HistoryRecorder::handle`]; diagnostic only — the checker treats
    /// every record the same).
    pub client: u64,
    /// The key the operation targeted.
    pub key: Vec<u8>,
    /// What the operation did (and, for reads, what it observed).
    pub action: Action,
    /// `true` if the operation completed without error. Failed writes may
    /// or may not have taken effect (e.g. a flush error after the write
    /// was buffered) — the checker treats them as optional; failed reads
    /// carry no information and are dropped.
    pub ok: bool,
    /// Logical-clock stamp drawn before the operation was submitted.
    pub invoked_at: u64,
    /// Logical-clock stamp drawn after the operation's reply was known.
    pub returned_at: u64,
}

/// A per-thread append-only log. Only its owning [`RecorderHandle`]
/// appends; the mutex is effectively uncontended until `drain`.
#[derive(Debug, Default)]
struct ThreadLog {
    records: Mutex<Vec<OpRecord>>,
}

/// The shared recorder: a global monotonic counter plus the registry of
/// per-thread logs. Create one per experiment, hand a
/// [`RecorderHandle`] to each client via [`crate::KvsClient::with_recorder`],
/// and [`HistoryRecorder::drain`] the merged history when the clients are
/// done.
#[derive(Debug, Default)]
pub struct HistoryRecorder {
    clock: AtomicU64,
    logs: Mutex<Vec<Arc<ThreadLog>>>,
}

impl HistoryRecorder {
    /// A fresh recorder with an empty history.
    pub fn new() -> Arc<Self> {
        Arc::new(HistoryRecorder::default())
    }

    /// Draw the next logical-clock stamp. `SeqCst` so the stamp total
    /// order is consistent with real-time order across threads.
    fn now(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::SeqCst)
    }

    /// Register a new per-thread log and return the handle that appends to
    /// it. `client` tags the handle's records for diagnostics.
    pub fn handle(self: &Arc<Self>, client: u64) -> RecorderHandle {
        let log = Arc::new(ThreadLog::default());
        self.logs.lock().push(Arc::clone(&log));
        RecorderHandle {
            recorder: Arc::clone(self),
            log,
            client,
        }
    }

    /// Total records across all logs (takes each log's lock briefly).
    pub fn len(&self) -> usize {
        self.logs
            .lock()
            .iter()
            .map(|l| l.records.lock().len())
            .sum()
    }

    /// `true` if nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Merge every per-thread log into one history, sorted by invocation
    /// stamp, and clear the logs. Call after the recording clients have
    /// finished their operations (records of in-flight operations are not
    /// yet in any log — they are appended at response time).
    pub fn drain(&self) -> Vec<OpRecord> {
        let logs = self.logs.lock();
        let mut merged: Vec<OpRecord> = Vec::new();
        for log in logs.iter() {
            merged.append(&mut log.records.lock());
        }
        merged.sort_by_key(|r| r.invoked_at);
        merged
    }
}

/// A client's private append handle into a [`HistoryRecorder`]. Obtained
/// from [`HistoryRecorder::handle`], installed with
/// [`crate::KvsClient::with_recorder`].
#[derive(Debug)]
pub struct RecorderHandle {
    recorder: Arc<HistoryRecorder>,
    log: Arc<ThreadLog>,
    client: u64,
}

impl RecorderHandle {
    /// Stamp an invocation: call before submitting the operation(s).
    pub fn invoke(&self) -> u64 {
        self.recorder.now()
    }

    /// Record one completed operation. The response stamp is drawn here,
    /// so call as soon as the outcome is known.
    pub fn record(&self, key: &[u8], action: Action, ok: bool, invoked_at: u64) {
        let returned_at = self.recorder.now();
        self.log.records.lock().push(OpRecord {
            client: self.client,
            key: key.to_vec(),
            action,
            ok,
            invoked_at,
            returned_at,
        });
    }

    /// The recorder this handle appends to.
    pub fn recorder(&self) -> &Arc<HistoryRecorder> {
        &self.recorder
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamps_are_monotonic_and_unique_across_threads() {
        let recorder = HistoryRecorder::new();
        let handles: Vec<_> = (0..4)
            .map(|c| {
                let handle = recorder.handle(c);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        let inv = handle.invoke();
                        handle.record(b"k", Action::Write(i.to_be_bytes().to_vec()), true, inv);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let history = recorder.drain();
        assert_eq!(history.len(), 2_000);
        let mut stamps: Vec<u64> = history
            .iter()
            .flat_map(|r| [r.invoked_at, r.returned_at])
            .collect();
        stamps.sort_unstable();
        stamps.dedup();
        assert_eq!(stamps.len(), 4_000, "stamps must be unique");
        for r in &history {
            assert!(r.invoked_at < r.returned_at);
        }
        // Drain cleared the logs.
        assert!(recorder.is_empty());
        assert!(recorder.drain().is_empty());
    }

    #[test]
    fn drain_merges_per_thread_logs_in_invocation_order() {
        let recorder = HistoryRecorder::new();
        let a = recorder.handle(1);
        let b = recorder.handle(2);
        let inv_a = a.invoke();
        let inv_b = b.invoke();
        b.record(b"x", Action::Delete, true, inv_b);
        a.record(b"y", Action::Read(None), false, inv_a);
        let history = recorder.drain();
        assert_eq!(history.len(), 2);
        assert_eq!(history[0].client, 1, "sorted by invocation stamp");
        assert_eq!(history[1].client, 2);
        assert!(history[0].action == Action::Read(None) && !history[0].ok);
    }
}
