//! Statistics exposed by the KVS (consumed by the M-node policy engine and
//! the benchmark harness).

use dinomo_cache::CacheStats;
use dinomo_dpm::DpmStats;
use dinomo_simnet::NicStats;
use serde::{Deserialize, Serialize};

/// Per-KVS-node statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct KnStats {
    /// Node id.
    pub id: u32,
    /// Operations completed.
    pub ops: u64,
    /// Read operations completed.
    pub reads: u64,
    /// Write operations completed.
    pub writes: u64,
    /// Operations rejected because the node does not own the key.
    pub rejected: u64,
    /// Sub-batches accepted onto the node's shard-worker queues (0 when
    /// the executor is disabled).
    pub sub_batches: u64,
    /// Sub-batches rejected with `Busy` because a shard-worker queue was
    /// full (bounded-queue backpressure; the client retried them).
    pub busy_rejections: u64,
    /// Aggregated cache statistics across the node's shards.
    pub cache: CacheStats,
    /// Network counters for the node's NIC.
    pub nic: NicStats,
    /// Nanoseconds the node's shards spent actively serving requests (used
    /// for the occupancy metric in the policy engine).
    pub busy_ns: u64,
}

impl KnStats {
    /// Round trips per operation for this node.
    pub fn rts_per_op(&self) -> f64 {
        self.nic.rts_per_op(self.ops)
    }

    /// Occupancy over a window of `window_ns`: fraction of one core's time
    /// spent serving requests.
    pub fn occupancy(&self, window_ns: u64) -> f64 {
        if window_ns == 0 {
            0.0
        } else {
            (self.busy_ns as f64 / window_ns as f64).min(1.0)
        }
    }

    /// Difference against an earlier snapshot of the same node.
    pub fn since(&self, earlier: &KnStats) -> KnStats {
        KnStats {
            id: self.id,
            ops: self.ops.saturating_sub(earlier.ops),
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
            rejected: self.rejected.saturating_sub(earlier.rejected),
            sub_batches: self.sub_batches.saturating_sub(earlier.sub_batches),
            busy_rejections: self.busy_rejections.saturating_sub(earlier.busy_rejections),
            cache: CacheStats {
                value_hits: self
                    .cache
                    .value_hits
                    .saturating_sub(earlier.cache.value_hits),
                shortcut_hits: self
                    .cache
                    .shortcut_hits
                    .saturating_sub(earlier.cache.shortcut_hits),
                misses: self.cache.misses.saturating_sub(earlier.cache.misses),
                promotions: self
                    .cache
                    .promotions
                    .saturating_sub(earlier.cache.promotions),
                demotions: self.cache.demotions.saturating_sub(earlier.cache.demotions),
                evictions: self.cache.evictions.saturating_sub(earlier.cache.evictions),
                bytes_used: self.cache.bytes_used,
                capacity_bytes: self.cache.capacity_bytes,
                value_entries: self.cache.value_entries,
                shortcut_entries: self.cache.shortcut_entries,
            },
            nic: self.nic.since(&earlier.nic),
            busy_ns: self.busy_ns.saturating_sub(earlier.busy_ns),
        }
    }
}

/// Cluster-wide statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KvsStats {
    /// Per-node statistics for every live node.
    pub kns: Vec<KnStats>,
    /// DPM-side statistics.
    pub dpm: DpmStats,
    /// Current ownership-table version.
    pub ownership_version: u64,
}

impl KvsStats {
    /// Total operations completed across all nodes.
    pub fn total_ops(&self) -> u64 {
        self.kns.iter().map(|k| k.ops).sum()
    }

    /// Aggregate cache hit ratio across all nodes.
    pub fn cache_hit_ratio(&self) -> f64 {
        let (hits, lookups) = self.kns.iter().fold((0u64, 0u64), |(h, l), k| {
            (
                h + k.cache.value_hits + k.cache.shortcut_hits,
                l + k.cache.lookups(),
            )
        });
        if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        }
    }

    /// Aggregate value-hit ratio (the parenthesised figure in Table 6).
    pub fn value_hit_ratio(&self) -> f64 {
        let (hits, lookups) = self.kns.iter().fold((0u64, 0u64), |(h, l), k| {
            (h + k.cache.value_hits, l + k.cache.lookups())
        });
        if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        }
    }

    /// Aggregate round trips per operation across all nodes.
    pub fn rts_per_op(&self) -> f64 {
        let rts: u64 = self.kns.iter().map(|k| k.nic.round_trips()).sum();
        let ops = self.total_ops();
        if ops == 0 {
            0.0
        } else {
            rts as f64 / ops as f64
        }
    }

    /// Average bytes moved over the network per operation.
    pub fn bytes_per_op(&self) -> f64 {
        let bytes: u64 = self.kns.iter().map(|k| k.nic.total_bytes()).sum();
        let ops = self.total_ops();
        if ops == 0 {
            0.0
        } else {
            bytes as f64 / ops as f64
        }
    }

    /// Normalised standard deviation of per-node load (operations), the
    /// paper's Figure 7 "Load Dist. (Norm. STD)" metric.
    pub fn load_imbalance(&self) -> f64 {
        if self.kns.is_empty() {
            return 0.0;
        }
        let loads: Vec<f64> = self.kns.iter().map(|k| k.ops as f64).collect();
        let mean = loads.iter().sum::<f64>() / loads.len() as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let var = loads.iter().map(|l| (l - mean).powi(2)).sum::<f64>() / loads.len() as f64;
        var.sqrt() / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kn(id: u32, ops: u64, value_hits: u64, misses: u64) -> KnStats {
        KnStats {
            id,
            ops,
            reads: ops,
            cache: CacheStats {
                value_hits,
                misses,
                ..CacheStats::default()
            },
            nic: NicStats {
                one_sided_reads: misses * 3,
                ..NicStats::default()
            },
            ..KnStats::default()
        }
    }

    #[test]
    fn aggregates() {
        let stats = KvsStats {
            kns: vec![kn(0, 100, 80, 20), kn(1, 100, 60, 40)],
            ..KvsStats::default()
        };
        assert_eq!(stats.total_ops(), 200);
        assert!((stats.cache_hit_ratio() - 0.7).abs() < 1e-9);
        assert!((stats.value_hit_ratio() - 0.7).abs() < 1e-9);
        assert!((stats.rts_per_op() - 0.9).abs() < 1e-9);
        assert_eq!(stats.load_imbalance(), 0.0);
    }

    #[test]
    fn imbalance_detects_skew() {
        let balanced = KvsStats {
            kns: vec![kn(0, 100, 0, 0), kn(1, 100, 0, 0)],
            ..Default::default()
        };
        let skewed = KvsStats {
            kns: vec![kn(0, 190, 0, 0), kn(1, 10, 0, 0)],
            ..Default::default()
        };
        assert!(skewed.load_imbalance() > balanced.load_imbalance());
        assert!(skewed.load_imbalance() > 0.5);
    }

    #[test]
    fn kn_stats_since_and_occupancy() {
        let early = KnStats {
            ops: 10,
            busy_ns: 1_000,
            ..kn(0, 10, 5, 1)
        };
        let late = KnStats {
            ops: 30,
            busy_ns: 5_000,
            ..kn(0, 30, 15, 3)
        };
        let delta = late.since(&early);
        assert_eq!(delta.ops, 20);
        assert_eq!(delta.busy_ns, 4_000);
        assert!((delta.occupancy(8_000) - 0.5).abs() < 1e-9);
        assert_eq!(delta.occupancy(0), 0.0);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = KvsStats::default();
        assert_eq!(s.total_ops(), 0);
        assert_eq!(s.cache_hit_ratio(), 0.0);
        assert_eq!(s.rts_per_op(), 0.0);
        assert_eq!(s.load_imbalance(), 0.0);
        assert_eq!(s.bytes_per_op(), 0.0);
    }
}
