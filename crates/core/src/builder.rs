//! Fluent cluster construction.
//!
//! [`KvsBuilder`] replaces field-by-field [`KvsConfig`] construction for the
//! common cases; `KvsConfig` remains public for exhaustive control and for
//! programmatic sweeps (the builder is a thin veneer over it).

use crate::config::{KvsConfig, Variant};
use crate::kvs::Kvs;
use crate::Result;
use dinomo_cache::CacheKind;
use dinomo_dpm::{DpmConfig, GcConfig};
use dinomo_simnet::FabricConfig;

/// Fluent builder for a [`Kvs`] cluster, obtained from [`Kvs::builder`].
///
/// ```
/// use dinomo_core::{Kvs, Variant};
///
/// let kvs = Kvs::builder()
///     .small_for_tests()
///     .initial_kns(4)
///     .variant(Variant::Dinomo)
///     .build()
///     .unwrap();
/// assert_eq!(kvs.num_kns(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct KvsBuilder {
    config: KvsConfig,
}

impl KvsBuilder {
    /// Start from the default configuration (one KVS node, full Dinomo).
    pub fn new() -> Self {
        KvsBuilder::default()
    }

    /// Start from [`KvsConfig::small_for_tests`]: two small KVS nodes and a
    /// small DPM pool that builds in milliseconds.
    ///
    /// This **replaces the whole configuration**, so call it first and let
    /// later builder calls override individual knobs; knobs set before it
    /// are discarded.
    pub fn small_for_tests(mut self) -> Self {
        self.config = KvsConfig::small_for_tests();
        self
    }

    /// Which of the paper's systems to instantiate (default
    /// [`Variant::Dinomo`]).
    pub fn variant(mut self, variant: Variant) -> Self {
        self.config.variant = variant;
        self
    }

    /// Number of KVS nodes at start-up.
    pub fn initial_kns(mut self, n: usize) -> Self {
        self.config.initial_kns = n;
        self
    }

    /// Worker threads (shards) per KVS node.
    pub fn threads_per_kn(mut self, n: usize) -> Self {
        self.config.threads_per_kn = n;
        self
    }

    /// DRAM cache budget per KVS node, in bytes.
    pub fn cache_bytes_per_kn(mut self, bytes: usize) -> Self {
        self.config.cache_bytes_per_kn = bytes;
        self
    }

    /// Cache policy override (the default follows the variant).
    pub fn cache_kind(mut self, kind: CacheKind) -> Self {
        self.config.cache_kind = Some(kind);
        self
    }

    /// Number of writes a KN shard batches into one one-sided log write.
    pub fn write_batch_ops(mut self, n: usize) -> Self {
        self.config.write_batch_ops = n;
        self
    }

    /// DPM configuration (pool size, segments, merge threads, index).
    pub fn dpm(mut self, dpm: DpmConfig) -> Self {
        self.config.dpm = dpm;
        self
    }

    /// Log-cleaning segment-compactor knobs (shorthand for setting
    /// `dpm.gc`): victim dead-fraction threshold, per-pass relocation
    /// byte budget, and whether the per-DPM background thread runs. See
    /// [`dinomo_dpm::GcConfig`].
    pub fn gc(mut self, gc: GcConfig) -> Self {
        self.config.dpm.gc = gc;
        self
    }

    /// Simulated fabric configuration.
    pub fn fabric(mut self, fabric: FabricConfig) -> Self {
        self.config.fabric = fabric;
        self
    }

    /// Virtual nodes per KN on the consistent-hashing ring.
    pub fn ring_vnodes(mut self, vnodes: u32) -> Self {
        self.config.ring_vnodes = vnodes;
        self
    }

    /// Capacity of each shard worker's bounded sub-batch queue. Positive
    /// values run one worker thread per shard and fan batches out across
    /// them (full queues surface [`crate::KvsError::Busy`] backpressure to
    /// the client's retry loop); `0` disables the executor so batches run
    /// inline on the calling thread.
    pub fn executor_queue_depth(mut self, depth: usize) -> Self {
        self.config.executor_queue_depth = depth;
        self
    }

    /// Minimum operations a shard sub-batch must contain before it is
    /// worth enqueueing onto a shard worker; smaller sub-batches run
    /// inline on the dispatching thread (a handoff only pays for itself
    /// over enough per-shard work).
    pub fn executor_min_sub_batch(mut self, min: usize) -> Self {
        self.config.executor_min_sub_batch = min;
        self
    }

    /// The configuration the builder currently describes.
    pub fn config(&self) -> &KvsConfig {
        &self.config
    }

    /// Build the cluster.
    pub fn build(self) -> Result<Kvs> {
        Kvs::new(self.config)
    }
}

impl Kvs {
    /// Start building a cluster fluently. See [`KvsBuilder`].
    pub fn builder() -> KvsBuilder {
        KvsBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinomo_cache::CacheKind;

    #[test]
    fn builder_defaults_match_config_defaults() {
        let built = *Kvs::builder().config();
        let direct = KvsConfig::default();
        assert_eq!(built.variant, direct.variant);
        assert_eq!(built.initial_kns, direct.initial_kns);
        assert_eq!(built.threads_per_kn, direct.threads_per_kn);
        assert_eq!(built.write_batch_ops, direct.write_batch_ops);
    }

    #[test]
    fn knobs_compose_and_later_calls_win() {
        let b = Kvs::builder()
            .small_for_tests()
            .variant(Variant::DinomoS)
            .initial_kns(3)
            .threads_per_kn(1)
            .cache_bytes_per_kn(128 << 10)
            .cache_kind(CacheKind::ValueOnly)
            .write_batch_ops(2)
            .ring_vnodes(16)
            .executor_queue_depth(32)
            .executor_min_sub_batch(4);
        let c = b.config();
        assert_eq!(c.variant, Variant::DinomoS);
        assert_eq!(c.initial_kns, 3);
        assert_eq!(c.threads_per_kn, 1);
        assert_eq!(c.cache_bytes_per_kn, 128 << 10);
        assert_eq!(c.cache_kind, Some(CacheKind::ValueOnly));
        assert_eq!(c.write_batch_ops, 2);
        assert_eq!(c.ring_vnodes, 16);
        assert_eq!(c.executor_queue_depth, 32);
        assert_eq!(c.executor_min_sub_batch, 4);
    }

    #[test]
    fn small_for_tests_resets_the_whole_configuration() {
        // Documented semantics: `small_for_tests` replaces the entire
        // config (call it first), with no field sneaking through.
        let reset = Kvs::builder()
            .variant(Variant::DinomoN)
            .initial_kns(8)
            .small_for_tests();
        assert_eq!(reset.config().variant, KvsConfig::small_for_tests().variant);
        assert_eq!(
            reset.config().initial_kns,
            KvsConfig::small_for_tests().initial_kns
        );
        // Knobs set after it stick.
        let after = Kvs::builder().small_for_tests().variant(Variant::DinomoN);
        assert_eq!(after.config().variant, Variant::DinomoN);
    }

    #[test]
    fn build_produces_a_working_cluster() {
        let kvs = Kvs::builder()
            .small_for_tests()
            .initial_kns(2)
            .build()
            .unwrap();
        let client = kvs.client();
        client.insert(b"k", b"v").unwrap();
        assert_eq!(client.lookup(b"k").unwrap(), Some(b"v".to_vec()));
    }
}
